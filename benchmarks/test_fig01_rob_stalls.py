"""Fig 1: head-of-ROB stall cycles for STLB-miss translations, replay
loads and non-replay loads.

Paper: replay loads stall the head of the ROB far longer (avg 191, max
226 cycles) than the walks themselves (avg 33, max 54); non-replay loads
average 47 cycles.  At reduced scale we check the ordering of the
aggregates, which is what the paper's mechanisms exploit."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import fig1_rob_stalls


def test_fig1_rob_stalls(benchmark):
    res = regenerate(benchmark, fig1_rob_stalls,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    replay_total = sum(res.data[b]["replay_total"]
                       for b in res.data if b != "mean")
    translation_total = sum(res.data[b]["translation_total"]
                            for b in res.data if b != "mean")
    # Replay-load stalls dominate translation stalls in aggregate.
    assert replay_total > 2 * translation_total
    # Replay stalls reach DRAM-scale latencies.
    assert res.data["mean"]["replay_avg"] > 50
