"""Fig 6: replay-load MPKI at the LLC across replacement policies.

Paper: the policies are indistinguishable -- replay blocks are dead, so
no insertion/promotion scheme can keep them."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import fig6_replay_mpki


def test_fig6_replay_mpki_policy_insensitive(benchmark):
    res = regenerate(benchmark, fig6_replay_mpki,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    mean = res.data["mean"]
    lo, hi = min(mean.values()), max(mean.values())
    # No replacement policy moves replay MPKI by more than ~10%.
    assert hi <= lo * 1.10
