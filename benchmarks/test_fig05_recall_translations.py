"""Fig 5: recall-distance CDF of leaf translations at the LLC and L2C.

Paper: around 30% of evicted translation blocks would be recalled within
50 unique accesses to their set -- keeping them ~10 accesses longer turns
those into hits (the motivation for RRPV=0 insertion)."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import fig5_recall_translations


def test_fig5_translation_recall(benchmark):
    res = regenerate(benchmark, fig5_recall_translations,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    fractions = []
    for bench_data in res.data.values():
        for tracker_data in bench_data.values():
            if tracker_data["samples"] >= 20:
                fractions.append(tracker_data["cdf"][-2])  # <= 50 bucket
    assert fractions, "no benchmark produced enough eviction samples"
    avg_within_50 = sum(fractions) / len(fractions)
    # A sizeable short-recall population exists (paper: ~30%).
    assert avg_within_50 > 0.10
