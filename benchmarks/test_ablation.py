"""Ablation benches (beyond the paper's figures; see DESIGN.md).

Isolates each mechanism: ATP depends on the T-policies for its trigger
opportunities (a translation must *hit* at L2C/LLC to fire), so
``atp_only`` should trail the full stack; T-DRRIP and T-LLC each carry
weight on their own."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.ablations import (atp_trigger_placement,
                                         single_mechanism_ablation)


def test_single_mechanism_ablation(benchmark):
    res = regenerate(benchmark, single_mechanism_ablation,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    g = res.data["gmean"]
    assert g["full"] > 1.0
    # The full stack beats every single mechanism on its own.
    singles = [v for k, v in g.items() if k != "full"]
    assert g["full"] >= max(singles) - 0.02
    # No single mechanism is harmful on average.
    assert min(singles) > 0.97


def test_atp_trigger_placement(benchmark):
    res = regenerate(benchmark, atp_trigger_placement,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    totals = {"l2c": 0, "llc": 0, "tempo": 0}
    for name, d in res.data.items():
        for k in totals:
            totals[k] += d[k]
    # With T-DRRIP keeping translations at the L2C, most triggers fire
    # there; TEMPO covers only the rare full-hierarchy misses.
    assert totals["l2c"] > totals["llc"]
    assert totals["tempo"] < totals["l2c"] + totals["llc"]
