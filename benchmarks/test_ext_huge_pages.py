"""Extension study: transparent huge pages vs the paper's mechanisms.

Backing the gather region with 2MB pages multiplies STLB reach by 512,
removing most walks -- the orthogonal, software-visible alternative to
translation-conscious caching.  The enhancements retain residual value
under THP (the remaining walks behave exactly as in the 4KB world)."""

from conftest import WARMUP, regenerate

from repro.experiments.extensions import huge_page_study

BENCHMARKS = ["canneal", "mcf", "cc", "pr"]


def test_huge_page_study(benchmark):
    res = regenerate(benchmark, huge_page_study, benchmarks=BENCHMARKS,
                     instructions=20_000, warmup=WARMUP)
    for name in BENCHMARKS:
        d = res.data[name]
        # THP collapses the STLB MPKI by an order of magnitude.
        assert d["stlb_2m"] < 0.25 * d["stlb_4k"], name
    g = res.data["gmean"]
    # THP wins on average (pr individually can lose at reduced scale:
    # removing walk serialization exposes the DRAM bandwidth wall).
    assert g["2M"] > 1.0
    # The enhancements help in the 4K world; under THP their headroom
    # shrinks but they must not hurt.
    assert g["4K+enh"] > 1.0
    assert g["2M+enh"] > g["2M"] - 0.03
