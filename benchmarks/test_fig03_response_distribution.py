"""Fig 3: which level of the hierarchy serves leaf translations and
replay loads after an STLB miss.

Paper: translations -- 23% L1D, 55.6% L2C, 15.1% LLC, 6.3% DRAM; replay
loads -- more than 80% miss the LLC."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import fig3_response_distribution


def test_fig3_response_distribution(benchmark):
    res = regenerate(benchmark, fig3_response_distribution,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    t = res.data["mean"]["translation"]
    r = res.data["mean"]["replay"]
    # Translations are mostly served on-chip, dominated by the L2C.
    assert t["L2C"] > 0.3
    assert t["DRAM"] < 0.25
    assert t["L2C"] > t["L1D"]
    # Replay loads overwhelmingly miss the LLC.
    assert r["DRAM"] > 0.8
