"""Fig 17: 2-way SMT harmonic speedup of the enhancements.

Paper: 6.3% average; mixes containing at least one Low/Medium benchmark
gain less (xalancbmk-xalancbmk: 0.5%) than High-High mixes (pr-cc:
12.6%)."""

from conftest import WARMUP, regenerate

from repro.experiments.mixes import fig17_smt

MIXES = (("xalancbmk", "xalancbmk"), ("canneal", "xalancbmk"),
         ("radii", "bf"), ("pr", "cc"), ("tc", "pr"))


def test_fig17_smt_mixes(benchmark):
    res = regenerate(benchmark, fig17_smt, mixes=MIXES,
                     instructions=15_000, warmup=4_000)
    assert res.data["gmean"] > 1.0
    # The Low-Low mix gains the least of all mixes.
    low_low = res.data["xalancbmk-xalancbmk"]["harmonic"]
    best = max(v["harmonic"] for k, v in res.data.items() if k != "gmean")
    assert low_low <= best
