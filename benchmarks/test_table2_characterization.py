"""Table II: per-benchmark STLB / L2C / LLC MPKI characterization.

The workload generators are calibrated so that each benchmark lands in
its paper STLB-MPKI band (Low <= 10 < Medium <= 25 < High) and so that
replay MPKI tracks STLB MPKI (almost every walk's data access misses the
on-chip hierarchy)."""

import pytest
from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import table2_characterization
from repro.workloads.registry import TABLE2_REFERENCE, categorize


def test_table2_characterization(benchmark):
    res = regenerate(benchmark, table2_characterization,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    for name, ref in TABLE2_REFERENCE.items():
        measured = res.data[name]
        # STLB MPKI lands in the paper's category band.
        assert categorize(measured["stlb_mpki"]) == \
            categorize(ref["stlb"]), name
        # ... and within 25% of the paper's absolute value.
        assert measured["stlb_mpki"] == pytest.approx(ref["stlb"],
                                                      rel=0.25), name
        # Replay MPKI tracks STLB MPKI at the L2C (Table II pattern).
        assert measured["l2c_replay_mpki"] == pytest.approx(
            measured["stlb_mpki"], rel=0.2), name
    # The STLB-MPKI ordering of the paper's table is preserved.
    order = [res.data[n]["stlb_mpki"] for n in TABLE2_REFERENCE]
    assert order == sorted(order)
