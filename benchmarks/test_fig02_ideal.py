"""Fig 2: normalized performance with ideal L2C/LLC for leaf translations
(T), replay loads (R) and both (TR).

Paper: ideal LLC(TR) gives 30.7% on average; adding an ideal L2C raises
it to 37.6%; translations alone at the L2C give only 4.7% while replays
alone give 30.2%.  We check the ordering: TR >= R >= T, and L2C+LLC >=
LLC."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import fig2_ideal

MODES = ["LLC(T)", "LLC(R)", "LLC(TR)", "L2C+LLC(TR)"]


def test_fig2_ideal_caches(benchmark):
    res = regenerate(benchmark, fig2_ideal, instructions=INSTRUCTIONS,
                     warmup=WARMUP, modes=MODES)
    g = res.data["gmean"]
    assert g["LLC(TR)"] > 1.0
    assert g["LLC(TR)"] >= g["LLC(T)"] - 0.02
    assert g["LLC(R)"] >= g["LLC(T)"] - 0.02  # replays are the bigger prize
    assert g["L2C+LLC(TR)"] >= g["LLC(TR)"] - 0.02
