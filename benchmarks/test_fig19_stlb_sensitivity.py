"""Fig 19: STLB-size sensitivity of the enhancements.

Paper: gains persist across STLB sizes because high-recall-distance
translations miss any reasonable STLB; the gain shrinks as the STLB
grows (fewer walks to accelerate)."""

from conftest import SWEEP_BENCHMARKS, WARMUP, regenerate

from repro.experiments.sweeps import fig19_stlb_sensitivity

POINTS = (1024, 2048, 4096)


def test_fig19_stlb_sensitivity(benchmark):
    res = regenerate(benchmark, fig19_stlb_sensitivity,
                     benchmarks=SWEEP_BENCHMARKS, points=POINTS,
                     instructions=20_000, warmup=WARMUP)
    gmeans = [res.data[p]["gmean"] for p in POINTS]
    # The enhancements win at every STLB size.
    assert all(g > 0.995 for g in gmeans), gmeans
    assert max(gmeans) > 1.01
