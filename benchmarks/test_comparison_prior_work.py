"""Section V-B: comparison with CbPred/DpPred (HPCA'21) and CSALT
(MICRO'17).

Paper: the proposed enhancements beat CbPred by 3.1% on average (dead
page/block bypassing frees capacity but cannot cover replay loads or
keep short-recall translations); CSALT's partitioning adds only ~1% on
a strong baseline."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.comparison import prior_work_comparison


def test_prior_work_comparison(benchmark):
    res = regenerate(benchmark, prior_work_comparison,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    g = res.data["gmean"]
    # The proposal clearly outperforms both prior works.
    assert g["proposed"] > g["cbpred"] + 0.01
    assert g["proposed"] > g["csalt"] + 0.01
    # Neither prior work is catastrophic (they were real proposals).
    assert g["cbpred"] > 0.97
    assert g["csalt"] > 0.97
