"""Fig 15: the enhancements on top of data-prefetcher baselines (IPCP,
Bingo, SPP, ISB).

Paper: the proposals remain effective -- in fact slightly more so --
with prefetchers present (11.2%, 7.5%, 6.4%, 7.2%), since the
prefetchers do not cover the irregular replay traffic."""

from conftest import SWEEP_BENCHMARKS, WARMUP, regenerate

from repro.experiments.figures import fig15_with_prefetchers


def test_fig15_enhancements_on_prefetcher_baselines(benchmark):
    res = regenerate(benchmark, fig15_with_prefetchers,
                     benchmarks=SWEEP_BENCHMARKS,
                     instructions=20_000, warmup=WARMUP)
    g = res.data["gmean"]
    # The enhancement stack still wins on top of every prefetcher.
    assert all(v > 1.0 for v in g.values()), g
