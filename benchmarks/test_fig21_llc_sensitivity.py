"""Fig 21: LLC-size sensitivity of the enhancements.

Paper: 6.3% at 1MB falling to 4.2% at 8MB -- a bigger LLC keeps more
translations on its own, so the headroom shrinks."""

from conftest import SWEEP_BENCHMARKS, WARMUP, regenerate

from repro.experiments.sweeps import fig21_llc_sensitivity

POINTS = (1 << 20, 2 << 20, 8 << 20)


def test_fig21_llc_sensitivity(benchmark):
    res = regenerate(benchmark, fig21_llc_sensitivity,
                     benchmarks=SWEEP_BENCHMARKS, points=POINTS,
                     instructions=20_000, warmup=WARMUP)
    gmeans = [res.data[p]["gmean"] for p in POINTS]
    assert all(g > 0.99 for g in gmeans), gmeans
    assert max(gmeans) > 1.01
