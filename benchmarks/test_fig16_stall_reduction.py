"""Fig 16: reduction in head-of-ROB stall cycles due to STLB misses and
replay requests with the full enhancement stack.

Paper: 28.76% fewer STLB-miss stalls and 18.5% fewer replay stalls,
46.7% combined."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import fig16_stall_reduction


def test_fig16_stall_reduction(benchmark):
    res = regenerate(benchmark, fig16_stall_reduction,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    mean = res.data["mean"]
    # The combined STLB-miss + replay stall population shrinks clearly.
    # (Per-benchmark translation reductions are noisy at reduced scale:
    # the baseline's translation stalls are already small in absolute
    # terms; the replay component carries the reduction.)
    assert mean["replay"] > 0.05
    assert mean["combined"] > 0.05
    high_pressure = [res.data[b]["translation"] for b in ("cc", "pr")
                     if b in res.data]
    if high_pressure:
        # Where translation stalls exist, the T-policies remove them.
        assert max(high_pressure) > 0.5
