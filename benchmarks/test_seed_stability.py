"""Robustness: the headline result holds across trace seeds.

Reduced-scale single runs carry sampling noise; this bench re-runs the
Fig 14 endpoint on three different trace seeds and checks that the
full-stack speedup's *direction* is seed-independent."""

from conftest import WARMUP, regenerate

from repro.experiments.runner import run_benchmark_multi
from repro.params import EnhancementConfig, default_config
from repro.stats.report import geometric_mean

BENCHMARKS = ["canneal", "mcf", "tc", "mis"]
SEEDS = [1, 2, 3]


def _study():
    speedups = {}
    cfg = default_config().with_(enhancements=EnhancementConfig.full())
    for name in BENCHMARKS:
        base = run_benchmark_multi(name, SEEDS, instructions=20_000,
                                   warmup=WARMUP)
        enh = run_benchmark_multi(name, SEEDS, config=cfg,
                                  instructions=20_000, warmup=WARMUP)
        per_seed = [b.cycles / e.cycles
                    for b, e in zip(base.runs, enh.runs)]
        speedups[name] = per_seed
    return speedups


def test_fig14_direction_is_seed_stable(benchmark):
    speedups = benchmark.pedantic(_study, rounds=1, iterations=1)
    print()
    for name, per_seed in speedups.items():
        print(f"{name:<10} " + "  ".join(f"{s:.3f}" for s in per_seed))
    # Per-benchmark: the stack never hurts badly under any seed.
    for name, per_seed in speedups.items():
        assert min(per_seed) > 0.95, (name, per_seed)
    # Aggregate: a clear win under every seed.
    for i in range(len(SEEDS)):
        gmean = geometric_mean([speedups[n][i] for n in BENCHMARKS])
        assert gmean > 1.0, f"seed index {i}"
