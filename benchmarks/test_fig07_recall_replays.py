"""Fig 7: recall-distance CDF of replay loads at the LLC and L2C.

Paper: more than 60% of replay blocks have recall distance > 50 unique
accesses -- they are dead on arrival, which is why replacement cannot
help and ATP prefetching is needed."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import fig7_recall_replays


def test_fig7_replay_recall_is_long(benchmark):
    res = regenerate(benchmark, fig7_recall_replays,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    beyond_50 = []
    for bench_data in res.data.values():
        for tracker_data in bench_data.values():
            if tracker_data["samples"] >= 20:
                beyond_50.append(1.0 - tracker_data["cdf"][-2])
    assert beyond_50
    assert sum(beyond_50) / len(beyond_50) > 0.6
