"""Shared configuration for the figure-regeneration benchmarks.

Every file in this directory regenerates one table or figure of the paper
through pytest-benchmark.  Runs use the reduced-scale configuration
(:func:`repro.params.default_config`) and moderate trace lengths so the
whole suite completes in minutes; pass ``--benchmark-only -s`` to see the
regenerated tables.
"""

import pytest

#: Default ROI / warmup used by most figure benches.
INSTRUCTIONS = 30_000
WARMUP = 8_000

#: Subset used by the most expensive sweeps (representative of the three
#: STLB-MPKI categories).
SWEEP_BENCHMARKS = ["xalancbmk", "canneal", "mcf", "cc", "pr"]


def regenerate(benchmark, fn, **kwargs):
    """Run a figure function exactly once under pytest-benchmark and print
    the regenerated table."""
    result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    print()
    print(result)
    return result
