"""Prefetch accuracy: "Our ATP prefetcher is 100% accurate as it is not
speculative" (Section V).

Conventional prefetchers predict; ATP computes the replay line exactly
from the leaf PTE and the PTW-carried page-offset bits."""

from conftest import WARMUP, regenerate

from repro.experiments.accuracy import prefetch_accuracy


def test_prefetch_accuracy(benchmark):
    res = regenerate(benchmark, prefetch_accuracy,
                     instructions=20_000, warmup=WARMUP)
    overall = res.data["overall"]
    # ATP is (near-)perfectly accurate; speculative prefetchers are not.
    assert overall["atp"] > 0.95
    for speculative in ("spp", "bingo", "isb"):
        assert overall[speculative] < 0.9, speculative
