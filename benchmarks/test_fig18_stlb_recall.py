"""Fig 18: recall distance of translations at the STLB.

Paper: more than 40% of STLB entries are dead (recall distance > 50), so
bypassing dead STLB entries (dpPred) cannot expedite the costly misses
-- the motivation for attacking the problem at the data caches instead."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import fig18_stlb_recall


def test_fig18_stlb_recall(benchmark):
    res = regenerate(benchmark, fig18_stlb_recall,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    beyond_50 = []
    for bench_data in res.data.values():
        tracker = bench_data["STLB"]
        if tracker["samples"] >= 50:
            beyond_50.append(1.0 - tracker["cdf"][-2])
    assert beyond_50
    # A large dead-entry population exists (paper: > 40%).
    assert sum(beyond_50) / len(beyond_50) > 0.4
