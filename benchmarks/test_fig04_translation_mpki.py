"""Fig 4: leaf-level translation MPKI at the LLC across replacement
policies (LRU, SRRIP, DRRIP, SHiP, Hawkeye).

Paper: SRRIP/DRRIP/SHiP cut translation MPKI vs LRU (by 14.7%, 27.5%,
33.3%) while Hawkeye *increases* it by 44.1% -- its reuse-distance
training misclassifies translations as cache-averse."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import fig4_translation_mpki


def test_fig4_translation_mpki_by_policy(benchmark):
    res = regenerate(benchmark, fig4_translation_mpki,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    mean = res.data["mean"]
    # SHiP covers translations at least as well as LRU on average.
    assert mean["ship"] <= mean["lru"] * 1.15
    # Hawkeye's noisy training keeps it from being the best at this.
    assert mean["hawkeye"] >= min(mean["ship"], mean["drrip"]) * 0.9
    # Every policy leaves translation misses on the table (> 0 MPKI).
    assert all(v > 0 for v in mean.values())
