"""Fig 20: L2C-size sensitivity of the enhancements.

Paper: gains hold from 256KB to 1MB; growing the L2C lets the baseline
retain more translations, shrinking T-DRRIP's contribution."""

from conftest import SWEEP_BENCHMARKS, WARMUP, regenerate

from repro.experiments.sweeps import fig20_l2c_sensitivity

POINTS = (256 * 1024, 512 * 1024, 1024 * 1024)


def test_fig20_l2c_sensitivity(benchmark):
    res = regenerate(benchmark, fig20_l2c_sensitivity,
                     benchmarks=SWEEP_BENCHMARKS, points=POINTS,
                     instructions=20_000, warmup=WARMUP)
    gmeans = [res.data[p]["gmean"] for p in POINTS]
    assert all(g > 0.99 for g in gmeans), gmeans
    assert max(gmeans) > 1.01
