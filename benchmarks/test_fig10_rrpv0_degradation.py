"""Fig 10: inserting replay loads at RRPV=0 (together with translations)
degrades performance -- dead replay blocks at the lowest eviction
priority age out the useful translations.

Paper: clear degradation vs the baseline for DRRIP at L2C + SHiP at LLC."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import (fig10_replay_rrpv0_degradation,
                                       fig14_performance)


def test_fig10_replay_rrpv0_underperforms(benchmark):
    res = regenerate(benchmark, fig10_replay_rrpv0_degradation,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    # The misconfiguration must not beat the proper T-DRRIP/T-SHiP stack
    # (paper shows outright degradation vs baseline).
    proper = fig14_performance(instructions=INSTRUCTIONS, warmup=WARMUP)
    assert res.data["gmean"] < proper.data["gmean"]["+T-SHiP"] + 0.005
