"""Fig 8: LLC replay-load MPKI with data prefetchers (IPCP, SPP, Bingo,
ISB) vs no prefetching.

Paper: state-of-the-art prefetchers barely move replay MPKI (average
improvement < 1% for the spatial ones) because replay loads land on new
pages that same-page prefetchers cannot reach and cross-page IPCP
prefetches arrive late."""

from conftest import WARMUP, regenerate

from repro.experiments.figures import fig8_prefetcher_replay_mpki


def test_fig8_prefetchers_cannot_cover_replays(benchmark):
    res = regenerate(benchmark, fig8_prefetcher_replay_mpki,
                     instructions=20_000, warmup=WARMUP)
    mean = res.data["mean"]
    base = mean["none"]
    for pf in ("ipcp", "spp", "bingo", "isb"):
        # No prefetcher removes more than ~15% of replay misses.
        assert mean[pf] > 0.85 * base, pf
