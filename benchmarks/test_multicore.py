"""Section V multi-core results: multiprogrammed mixes with a shared LLC
(2MB per slice) and shared DRAM.

Paper: 25 8-core mixes, average improvement above 4% -- heterogeneous
mixes let translation-heavy benchmarks keep their PTEs at the shared
LLC when co-runners do not thrash it."""

from conftest import regenerate

from repro.experiments.mixes import multicore_study


def test_multicore_mixes(benchmark):
    res = regenerate(benchmark, multicore_study,
                     instructions=32_000, warmup=8_000)
    speedups = [v["harmonic"] for k, v in res.data.items() if k != "gmean"]
    # Shared-hierarchy interleavings are noisy at reduced scale; the
    # robust claims are: clearly positive on the best mixes, positive or
    # neutral on average, and never catastrophic.
    assert res.data["gmean"] > 0.99
    assert max(speedups) > 1.04
    assert min(speedups) > 0.90
