"""Fig 12: leaf-translation MPKI at the LLC with the enhanced IP
signatures (NewSign) and the full T-SHiP policy.

Paper: the new signatures alone cut translation MPKI substantially and
T-SHiP (signatures + RRPV=0 insertion) cuts it further, to near zero."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import fig12_newsign_mpki


def test_fig12_enhancements_cut_translation_mpki(benchmark):
    # Longer ROI than the other benches: the steady-state (non-compulsory)
    # translation-miss population is what the enhancements act on.
    res = regenerate(benchmark, fig12_newsign_mpki,
                     instructions=100_000, warmup=20_000)
    mean = res.data["mean"]
    assert mean["newsign"] < mean["ship"]
    assert mean["t_ship"] <= mean["newsign"] * 1.02
    assert mean["t_ship"] < 0.75 * mean["ship"]
