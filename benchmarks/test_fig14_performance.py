"""Fig 14: the headline result -- normalized performance of the
cumulative enhancement stack T-DRRIP -> +T-SHiP -> +ATP -> +TEMPO.

Paper: average improvements of 0.5%, 2.9%, 4.8% and 5.1% respectively,
with a best case of 10.6%.  At reduced scale we assert the staircase
shape and the magnitude band."""

from conftest import INSTRUCTIONS, WARMUP, regenerate

from repro.experiments.figures import fig14_performance


def test_fig14_cumulative_enhancements(benchmark):
    res = regenerate(benchmark, fig14_performance,
                     instructions=INSTRUCTIONS, warmup=WARMUP)
    g = res.data["gmean"]
    # Each stage of the stack keeps or improves the geomean.
    assert g["T-DRRIP"] > 0.99
    assert g["+T-SHiP"] > 1.0
    assert g["+ATP"] > g["+T-SHiP"] - 0.01
    assert g["+TEMPO"] > 1.02  # the full stack is a clear win
    # Best case reaches the several-percent band the paper reports.
    best = max(res.data[b]["+TEMPO"] for b in res.data if b != "gmean")
    assert best > 1.04
