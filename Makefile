# Convenience targets for the reproduction repo.

.PHONY: install test bench bench-baseline accuracy figures figures-fast \
	figures-check figures-observed scenarios serve-smoke fuzz \
	calibrate all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/ -q

# Timed performance matrix (docs/performance.md); fails when aggregate
# throughput drops >15% below the machine-scaled committed baseline.
bench:
	PYTHONPATH=src python -m repro bench --out . --check-regression

# Re-record benchmarks/perf/baseline.json (run on a quiet machine,
# commit the result alongside the change that moved the numbers).
bench-baseline:
	PYTHONPATH=src python -m repro bench --out . --repeats 3 \
		--update-baseline

# Paper-accuracy suite (pytest-benchmark figure comparisons).
accuracy:
	pytest benchmarks/ --benchmark-only -q -s

figures:
	python examples/regenerate_experiments.py EXPERIMENTS.md

# Figs 1/4/14 through the parallel, memoised runner at test scale
# (smoke-tests the whole figure path in well under a minute).
figures-fast:
	PYTHONPATH=src python -m repro figure fig1 fig4 fig14 \
		--jobs 4 --instructions 20000 --warmup 4000 --verbose

# Same smoke suite with the runtime invariant checkers and differential
# oracle attached to every run (--check implies --no-cache).
figures-check:
	PYTHONPATH=src python -m repro figure fig1 fig4 fig14 \
		--jobs 4 --instructions 20000 --warmup 4000 --check

# One checked figure with the observability subsystem attached: a batch
# export + heartbeat stream from the figure run, a run export from a
# single observed simulation, both schema-validated by `repro stats`,
# plus a traced baseline/enhanced pair -- span traces schema-validated
# by `repro trace summary`, converted to Perfetto JSON, and diffed for
# cycle attribution.  Artifacts land in obs-artifacts/ (CI uploads them).
figures-observed:
	mkdir -p obs-artifacts
	PYTHONPATH=src python -m repro figure fig14 \
		--jobs 4 --instructions 20000 --warmup 4000 --check \
		--metrics obs-artifacts/fig14-batch.json \
		--heartbeat obs-artifacts/fig14-heartbeat.ndjson
	PYTHONPATH=src python -m repro run pr --enhancements full \
		--instructions 20000 --warmup 4000 \
		--metrics obs-artifacts/pr-full-run.json \
		--trace obs-artifacts/pr-full-trace.json
	PYTHONPATH=src python -m repro stats --validate \
		obs-artifacts/fig14-batch.json obs-artifacts/pr-full-run.json
	PYTHONPATH=src python -m repro stats obs-artifacts/pr-full-run.json \
		--csv obs-artifacts/pr-full-intervals.csv
	PYTHONPATH=src python -m repro run pr \
		--instructions 20000 --warmup 4000 \
		--trace obs-artifacts/pr-base-trace.json
	PYTHONPATH=src python -m repro trace summary \
		obs-artifacts/pr-full-trace.json
	PYTHONPATH=src python -m repro trace render \
		obs-artifacts/pr-full-trace.json --limit 5 \
		--perfetto obs-artifacts/pr-full-perfetto.json
	PYTHONPATH=src python -m repro trace diff \
		obs-artifacts/pr-base-trace.json \
		obs-artifacts/pr-full-trace.json

# Scenario regression matrix (docs/scenarios.md): lint every checked-in
# repro.scenario/v1 document, then run the SYN-* stress scenarios and
# the RL-* mixes at smoke scale, appending schema-stable JSONL results
# to scenario-artifacts/ (CI uploads them).
scenarios:
	mkdir -p scenario-artifacts
	PYTHONPATH=src python -m repro scenario validate --all
	PYTHONPATH=src python -m repro scenario run \
		SYN-01-STLB-THRASH SYN-02-PTE-REUSE-CLIFF \
		SYN-03-REPLAY-DEAD-STREAMS RL-01-GRAPH-SOUP \
		RL-02-PHASED-PIPELINE \
		--instructions 12000 --warmup 2000 --no-cache \
		--out scenario-artifacts/scenario-results.jsonl

# End-to-end sweep-service smoke (docs/service.md): boot the HTTP
# service on an ephemeral port, submit a tiny run + one scenario,
# wait on their event streams, assert the identical resubmission is a
# store hit, and write the store manifest to service-artifacts/
# (CI uploads it).
serve-smoke:
	PYTHONPATH=src python tools/serve_smoke.py

# 200 deterministic fuzz streams through the checked hierarchy
# (seed range 0..199; failures print ready-to-paste regression tests).
fuzz:
	PYTHONPATH=src python -m repro.validate.fuzz 0 200

calibrate:
	python tools/calibrate.py

all: test accuracy
