# Convenience targets for the reproduction repo.

.PHONY: install test bench figures calibrate all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q -s

figures:
	python examples/regenerate_experiments.py EXPERIMENTS.md

calibrate:
	python tools/calibrate.py

all: test bench
