# Convenience targets for the reproduction repo.

.PHONY: install test bench figures figures-fast calibrate all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q -s

figures:
	python examples/regenerate_experiments.py EXPERIMENTS.md

# Figs 1/4/14 through the parallel, memoised runner at test scale
# (smoke-tests the whole figure path in well under a minute).
figures-fast:
	PYTHONPATH=src python -m repro figure fig1 fig4 fig14 \
		--jobs 4 --instructions 20000 --warmup 4000 --verbose

calibrate:
	python tools/calibrate.py

all: test bench
