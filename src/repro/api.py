"""Stable public facade for the reproduction (v2).

Everything a caller needs lives here; the deep module paths
(``repro.experiments.runner``, ``repro.service.core``, ...) remain
importable but are implementation detail and may move between releases.
The v2 surface promotes *job submission* to the front door:

* :func:`submit` / :class:`JobHandle` / :class:`JobStatus` -- the async
  in-process client of the sweep service: runs, scenarios, sweeps,
  figures, benches and traces submitted as deduplicated, memoised jobs
  (``await api.submit("run", benchmark="pr")``; see ``docs/service.md``);
* :func:`serve` -- the HTTP sweep service (``python -m repro serve``:
  ``POST /jobs``, ``GET /jobs/<id>/events``, ``GET /store/<digest>``);
* :func:`run` -- simulate one benchmark synchronously, optionally
  observed (``metrics=...``) and/or traced (``trace=...``);
* :func:`trace` / :func:`trace_diff` -- request-level causal tracing:
  run-and-export, and cycle-delta attribution between two traced runs;
* :func:`figure` / :func:`list_figures` -- regenerate any registered
  figure/table by name (see :mod:`repro.experiments.registry`);
* :func:`bench` -- the pinned performance-benchmark matrix
  (``python -m repro bench``; see ``docs/performance.md``);
* :func:`run_scenario` / :func:`list_scenarios` / :func:`load_scenario`
  -- the ``repro.scenario/v1`` traffic-mix DSL (see ``docs/scenarios.md``);
* :func:`build_config` / :func:`enhancement_preset` -- config builders
  around the frozen :class:`SimConfig` (derive variants with
  ``cfg.with_(...)``);
* :class:`RunResult` / :class:`RunSummary` -- what runs return (live
  object vs. picklable snapshot);
* :func:`configure_parallel` -- fan figure batches out over worker
  processes with on-disk memoisation (the CLI ``--jobs`` path).

Quickstart::

    import asyncio
    from repro import api

    base = api.run("pr")
    enhanced = api.run("pr", enhancements="full")
    print(enhanced.speedup_over(base))

    async def sweep():
        handle = await api.submit("run", benchmark="pr",
                                  enhancements="full")
        await handle.wait()
        return handle.summary()
    print(asyncio.run(sweep()).ipc)

v1 -> v2: ``ParallelRunner`` / ``ResultCache`` / ``RunKey`` are demoted
to internals.  They remain importable from here for compatibility but
emit a one-time ``DeprecationWarning`` pointing at :func:`submit`; the
shims ``JourneyTracer`` and ``SimConfig.replace`` are removed outright
(see README "Migrating to api v2").

``tests/test_api_surface.py`` pins this module's exports; extend
``__all__`` deliberately, never remove from it within a major version.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.bench import (BenchCase, BenchResult, REGRESSION_THRESHOLD,
                         WORKLOAD_MATRIX)
from repro.bench import run_bench as _run_bench
from repro.core.fallback import BatchStats, FallbackReason
from repro.core.rob import StallCategory
from repro.experiments import registry
from repro.experiments.figures import FigureResult
from repro.experiments.parallel import RunSummary
from repro.experiments.parallel import configure as _configure_parallel
from repro.experiments.runner import (DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP,
                                      RunResult, run_benchmark)
from repro.obs import DEFAULT_SAMPLE_INTERVAL, Profiler
from repro.params import (BACKENDS, DEFAULT_SCALE,
                          ENHANCEMENT_PRESET_NAMES, CacheConfig,
                          EnhancementConfig, IdealConfig, SimConfig,
                          TLBConfig, _warn_once, canonical_policy,
                          default_config, enhancement_preset, paper_config)
from repro.scenarios import (ScenarioDoc, ScenarioError, ScenarioResult,
                             list_scenarios, load_scenario, run_scenario,
                             validate_scenario)
from repro.service import (JobHandle, JobStatus, configure_service, serve,
                           submit, telemetry_snapshot)
from repro.workloads.registry import benchmark_names

#: Version of this facade.  Bumped on compatible additions (minor) and
#: on breaking changes (major); ``tests/test_api_surface.py`` pins it.
#: 2.1: telemetry plane (telemetry_snapshot, JobHandle.watch, /metrics).
#: 2.2: backend-aware surface (``backend=`` on run/bench/submit,
#: ``BatchStats``/``FallbackReason`` exports, ``RunResult.batch``).
__api_version__ = "2.2"

__all__ = [
    # entry points
    "run", "figure", "figure_spec", "list_figures", "list_benchmarks",
    "configure_parallel", "trace", "trace_diff", "bench",
    # jobs (the v2 front door; see docs/service.md)
    "submit", "serve", "JobHandle", "JobStatus", "configure_service",
    "telemetry_snapshot",
    # scenarios (repro.scenario/v1; see docs/scenarios.md)
    "run_scenario", "list_scenarios", "load_scenario", "validate_scenario",
    "ScenarioDoc", "ScenarioError", "ScenarioResult",
    # results
    "RunResult", "RunSummary", "FigureResult",
    "StallCategory", "BenchResult", "BatchStats", "FallbackReason",
    # config builders
    "build_config", "enhancement_preset", "default_config", "paper_config",
    "canonical_policy", "SimConfig", "CacheConfig", "TLBConfig",
    "EnhancementConfig", "IdealConfig",
    # constants
    "DEFAULT_INSTRUCTIONS", "DEFAULT_WARMUP", "DEFAULT_SCALE",
    "DEFAULT_SAMPLE_INTERVAL", "ENHANCEMENT_PRESET_NAMES", "BACKENDS",
    "Profiler", "__api_version__",
    # v1 compatibility re-exports (deprecated; DeprecationWarning on
    # first access -- the job surface above replaces them)
    "RunKey", "ParallelRunner", "ResultCache",
]

#: Names demoted to internals in v2: still importable, but the first
#: access warns.  ``repro.params.reset_deprecation_warnings`` (and the
#: autouse fixture in ``tests/conftest.py``) resets the warn-once state.
_V1_INTERNALS = ("ParallelRunner", "ResultCache", "RunKey")


def __getattr__(name: str):
    if name in _V1_INTERNALS:
        import repro.experiments.parallel as _parallel
        _warn_once(f"api.{name}", "api.submit (repro.service)",
                   "api export")
        return getattr(_parallel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _resolve_enhancements(
        enhancements: Union[str, EnhancementConfig, None]
) -> Optional[EnhancementConfig]:
    if enhancements is None or isinstance(enhancements, EnhancementConfig):
        return enhancements
    return enhancement_preset(enhancements)


def _check_backend(backend: str) -> str:
    """Validate a ``backend=`` keyword against :data:`BACKENDS`."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: "
                         f"{' '.join(BACKENDS)}")
    return backend


def build_config(scale: int = DEFAULT_SCALE, *,
                 enhancements: Union[str, EnhancementConfig, None] = None,
                 **overrides) -> SimConfig:
    """The scale-reduced default config with named tweaks applied.

    ``enhancements`` accepts a preset name or an
    :class:`EnhancementConfig`; every other keyword is a
    :class:`SimConfig` field (``l2c_prefetcher="spp"``,
    ``llc_inclusion="inclusive"``, ...).  Unknown fields raise.
    """
    cfg = default_config(scale)
    enh = _resolve_enhancements(enhancements)
    if enh is not None:
        cfg = cfg.with_(enhancements=enh)
    if overrides:
        cfg = cfg.with_(**overrides)
    return cfg


def run(benchmark: str, *,
        config: Optional[SimConfig] = None,
        enhancements: Union[str, EnhancementConfig, None] = None,
        backend: Optional[str] = None,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup: int = DEFAULT_WARMUP,
        scale: int = DEFAULT_SCALE,
        seed: int = 1,
        metrics=None,
        sample_interval: Optional[int] = None,
        trace=None,
        trace_sample: Optional[int] = None) -> RunResult:
    """Simulate one benchmark; the facade over
    :func:`repro.experiments.runner.run_benchmark`.

    ``enhancements`` (a preset name or :class:`EnhancementConfig`) is a
    shortcut for building ``config``; passing both raises.

    ``backend`` selects the execution core (one of :data:`BACKENDS`):
    ``"python"`` is the scalar reference, ``"numpy"`` the vectorized
    batch core -- bit-identical results, different wall clock (see
    ``docs/performance.md``).  It layers onto ``config`` when both are
    given (``config.with_(backend=...)``), so a shared base config can
    be run under either backend.  On a ``"numpy"`` run,
    ``result.batch`` carries the engine's :class:`BatchStats`
    (vectorization engagement and fallback accounting).

    Observability: ``sample_interval=N`` attaches the interval sampler
    (``result.intervals``); ``metrics=PATH`` additionally profiles the
    run and writes the schema-validated JSON export there, defaulting the
    interval to :data:`DEFAULT_SAMPLE_INTERVAL`.  Tracing:
    ``trace_sample=N`` attaches the 1-in-N request span tracer
    (``result.tracer``); ``trace=PATH`` writes the schema-validated
    ``repro.obs/trace-v1`` export there, defaulting the sampling to
    every request.  All off (the default) costs nothing.
    """
    enh = _resolve_enhancements(enhancements)
    if enh is not None:
        if config is not None:
            raise ValueError("pass either config= or enhancements=, "
                             "not both")
        config = build_config(scale, enhancements=enh)
    if backend is not None:
        _check_backend(backend)
        config = (config or default_config(scale)).with_(backend=backend)
    if metrics is not None and sample_interval is None:
        sample_interval = DEFAULT_SAMPLE_INTERVAL
    if trace is not None and trace_sample is None:
        trace_sample = 1
    profiler = Profiler() if metrics is not None else None
    result = run_benchmark(benchmark, config=config,
                           instructions=instructions, warmup=warmup,
                           scale=scale, seed=seed,
                           sample_interval=sample_interval,
                           profiler=profiler, trace_sample=trace_sample)
    if metrics is not None:
        result.export_metrics(metrics)
    if trace is not None:
        result.export_trace(trace)
    return result


def trace(benchmark: str, *, path=None, sample: int = 1,
          **run_kwargs) -> Dict:
    """Trace one run and return its validated ``repro.obs/trace-v1``
    document (written to ``path`` too, when given).

    Remaining keywords pass through to :func:`run`
    (``enhancements=...``, ``instructions=...``, ``seed=...``, ...).
    """
    from repro.obs.trace import validate_trace_strict
    result = run(benchmark, trace_sample=sample, **run_kwargs)
    doc = validate_trace_strict(result.trace_document())
    if path is not None:
        from repro.obs.trace import export_trace
        export_trace(path, doc)
    return doc


def trace_diff(baseline, enhanced, top: int = 10) -> Dict:
    """Attribute the cycle delta between two traced runs of the same
    workload (see :mod:`repro.obs.trace.diff`).

    ``baseline``/``enhanced`` are trace documents (dicts, e.g. from
    :func:`trace`) or paths to ``repro.obs/trace-v1`` exports.
    """
    from repro.obs.trace import load_trace
    from repro.obs.trace import trace_diff as _trace_diff
    if not isinstance(baseline, dict):
        baseline = load_trace(baseline)
    if not isinstance(enhanced, dict):
        enhanced = load_trace(enhanced)
    return _trace_diff(baseline, enhanced, top=top)


def figure(name: str, **kwargs) -> FigureResult:
    """Regenerate one registered figure/table (see :func:`list_figures`).

    Keyword arguments pass through to the harness
    (``instructions=...``, ``warmup=...``, and -- where supported --
    ``benchmarks=[...]``).
    """
    return registry.get(name)(**kwargs)


def figure_spec(name: str):
    """The registered spec for one figure/table: a callable harness with
    metadata attributes (``name``, ``title``, ``paper``,
    ``takes_benchmarks``).  ``name=None`` returns every spec in display
    order -- what ``python -m repro list`` renders."""
    if name is None:
        return registry.specs()
    return registry.get(name)


def bench(matrix=WORKLOAD_MATRIX, repeats: int = 1,
          out_dir=None, backend: Optional[str] = None) -> BenchResult:
    """Run the pinned performance-benchmark matrix (see
    :mod:`repro.bench` and ``docs/performance.md``).

    ``backend`` (one of :data:`BACKENDS`) restricts the matrix to one
    execution backend: every distinct workload configuration runs once,
    pinned to that backend.  The default runs the full matrix -- each
    entry under both backends -- which is what the regression gate
    expects.

    Returns a :class:`BenchResult` whose ``document`` is the
    schema-stable ``repro.bench/v1`` dict (written as
    ``BENCH_<date>.json`` when ``out_dir`` is given);
    ``result.compare(baseline)`` yields the regression verdict the CI
    gate uses.
    """
    if backend is not None:
        from dataclasses import replace
        _check_backend(backend)
        seen = set()
        pinned = []
        for case in matrix:
            case = replace(case, backend=backend)
            if case.key not in seen:
                seen.add(case.key)
                pinned.append(case)
        matrix = tuple(pinned)
    return _run_bench(matrix=matrix, repeats=repeats, out_dir=out_dir)


def list_figures() -> Tuple[str, ...]:
    """Every registered figure/table name, in display order."""
    return registry.names()


def list_benchmarks() -> Tuple[str, ...]:
    """Every synthetic workload name (Table II of the paper)."""
    return tuple(benchmark_names())


def configure_parallel(jobs: int = 1, use_cache: bool = False,
                       cache_dir=None, progress=None,
                       timeout: float = 600.0) -> ParallelRunner:
    """Install the ambient parallel runner the figure harnesses route
    through (the CLI's ``--jobs`` / ``--no-cache`` land here)."""
    return _configure_parallel(jobs=jobs, use_cache=use_cache,
                               cache_dir=cache_dir, progress=progress,
                               timeout=timeout)
