"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro run pr --enhancements full        # one simulation
    python -m repro run pr --metrics out.json         # ... observed
    python -m repro run pr --trace t.json             # ... span-traced
    python -m repro figure fig14                      # regenerate a figure
    python -m repro figure fig1 fig4 fig14 --jobs 8   # parallel + memoised
    python -m repro stats out.json                    # render an export
    python -m repro stats a.json b.json               # diff two runs
    python -m repro trace summary t.json              # trace breakdowns
    python -m repro trace render t.json --perfetto p.json
    python -m repro trace diff base.json enh.json     # cycle attribution
    python -m repro bench                             # perf benchmark matrix
    python -m repro scenario list                     # traffic-mix library
    python -m repro scenario validate --all           # lint the library
    python -m repro scenario run SYN-01-STLB-THRASH   # simulate a scenario
    python -m repro serve                             # HTTP sweep service
    python -m repro submit run pr --enhancements full --wait
    python -m repro status <job-id>                   # job status
    python -m repro result <job-id>                   # job payload
    python -m repro cancel <job-id>                   # cancel pending job
    python -m repro top                               # live dashboard
    python -m repro list                              # what's available

Figures come from the decorator registry
(:mod:`repro.experiments.registry`); ``figure`` fans independent runs
out over ``--jobs`` worker processes and memoises results under
``~/.cache/repro-runs`` (``--no-cache`` to disable; the cache
auto-invalidates when the simulator code changes).  ``--metrics``
exports machine-readable ``repro.obs/v1`` documents (see
``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import sys

from repro import api

# ``repro.api`` is the only supported programmatic surface; the CLI is a
# thin shell over it and deliberately imports nothing deeper.


def _positive_int(value: str) -> int:
    """Argparse type: a strictly positive integer (``--jobs 0`` and
    ``--sample-interval -5`` must fail at the parser, not deep in a
    simulation)."""
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {value!r}") from None
    if number <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {number}")
    return number


def _enable_checking() -> None:
    # Via the environment so parallel worker processes inherit it.
    import os
    os.environ["REPRO_CHECK"] = "1"


def _cmd_run(args) -> int:
    if args.check:
        _enable_checking()
    cfg = api.build_config(args.scale, enhancements=args.enhancements)
    if args.l2c_prefetcher != "none":
        cfg = cfg.with_(l2c_prefetcher=args.l2c_prefetcher)
    if args.backend != "python":
        cfg = cfg.with_(backend=args.backend)
    result = api.run(args.benchmark, config=cfg,
                     instructions=args.instructions, warmup=args.warmup,
                     scale=args.scale, seed=args.seed,
                     metrics=args.metrics,
                     sample_interval=args.sample_interval,
                     trace=args.trace, trace_sample=args.trace_sample)
    print(f"benchmark      : {result.benchmark}")
    print(f"enhancements   : {args.enhancements}")
    print(f"instructions   : {result.instructions}")
    print(f"cycles         : {result.cycles}")
    print(f"IPC            : {result.ipc:.4f}")
    for key, value in result.summary().items():
        if key in ("ipc", "cycles"):
            continue
        print(f"{key:<15}: {value:.3f}")
    checker = result.hierarchy.checker
    if checker is not None:
        print(f"validation     : OK ({checker.events} events checked, "
              f"0 violations)")
    if args.metrics:
        print(f"metrics        : {args.metrics} "
              f"({len(result.intervals)} intervals, schema-validated)")
    if args.trace:
        t = result.tracer
        print(f"trace          : {args.trace} "
              f"({t.sampled_requests} requests / {t.span_count} spans, "
              f"1/{t.sample_every} sampling, schema-validated)")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.trace.cli import cmd_trace
    return cmd_trace(args)


def _progress(event) -> None:
    tag = "cache" if event.source == "cache" else f"{event.wall_time:.1f}s"
    print(f"  [{event.done}/{event.total}] {event.key.benchmark} "
          f"cfg={event.key.config_hash[:8]} ({tag})", file=sys.stderr)


def _cmd_figure(args) -> int:
    from repro.obs import (Heartbeat, batch_document, build_batch_manifest,
                           export_json, validate_strict)

    if args.check:
        # Memoised results would skip simulation (and thus validation),
        # so --check forces every run to execute.
        _enable_checking()
        args.no_cache = True
    heartbeat = Heartbeat(args.heartbeat) \
        if (args.metrics or args.heartbeat) else None

    def on_progress(event) -> None:
        if heartbeat is not None:
            heartbeat.emit(event)
        if args.verbose:
            _progress(event)

    runner = api.configure_parallel(
        jobs=args.jobs, use_cache=not args.no_cache,
        progress=on_progress if (args.verbose or heartbeat) else None)
    for name in args.names:
        spec = api.figure_spec(name)
        kwargs = {"instructions": args.instructions, "warmup": args.warmup}
        if args.benchmarks and spec.takes_benchmarks:
            kwargs["benchmarks"] = args.benchmarks
        print(spec(**kwargs))
    m = runner.metrics
    print(f"runs: {m.executed} executed, {m.cache_hits} from cache, "
          f"{m.retries} retried, {m.total_wall_time:.1f}s simulated",
          file=sys.stderr)
    if args.check:
        print("validation: all runs passed invariant + oracle checks",
              file=sys.stderr)
    if heartbeat is not None:
        heartbeat.close(runner_metrics=m)
        if args.metrics:
            doc = validate_strict(batch_document(
                build_batch_manifest(args.names, runner_metrics=m),
                heartbeat.events))
            export_json(args.metrics, doc)
            print(f"metrics: {args.metrics} ({len(heartbeat.events)} "
                  f"events, schema-validated)", file=sys.stderr)
    return 0


def _cmd_stats(args) -> int:
    from repro.obs.stats_cli import cmd_stats
    return cmd_stats(args)


def _cmd_bench(args) -> int:
    from repro.bench import cmd_bench
    return cmd_bench(args)


def _cmd_scenario(args) -> int:
    from repro.scenarios.cli import cmd_scenario
    return cmd_scenario(args)


def _cmd_service(args) -> int:
    # The job-service subcommands (serve/submit/status/result/cancel)
    # carry their body in repro.service.cli, imported lazily like the
    # scenario tree.
    return args.service_func(args)


def _cmd_list(_args) -> int:
    print("benchmarks :", " ".join(api.list_benchmarks()))
    specs = api.figure_spec(None)
    paper = [s.name for s in specs if s.paper]
    extra = [s.name for s in specs if not s.paper]
    print("figures    :", " ".join(paper))
    print("studies    :", " ".join(extra))
    print("enhancement presets:", " ".join(api.ENHANCEMENT_PRESET_NAMES))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ISPASS'22 translation-conscious caching reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one benchmark or scenario")
    p_run.add_argument("benchmark", metavar="benchmark",
                       choices=api.list_benchmarks() + api.list_scenarios())
    p_run.add_argument("--enhancements", default="none",
                       choices=sorted(api.ENHANCEMENT_PRESET_NAMES))
    p_run.add_argument("--l2c-prefetcher", default="none",
                       choices=["none", "spp", "bingo", "isb", "next_line"])
    p_run.add_argument("--instructions", type=int,
                       default=api.DEFAULT_INSTRUCTIONS)
    p_run.add_argument("--warmup", type=int, default=api.DEFAULT_WARMUP)
    p_run.add_argument("--scale", type=int, default=api.DEFAULT_SCALE)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--backend", default="python",
                       choices=list(api.BACKENDS),
                       help="execution backend: the scalar reference "
                            "core or the bit-identical vectorized batch "
                            "core (see docs/performance.md)")
    p_run.add_argument("--metrics", metavar="PATH", default=None,
                       help="export manifest + interval time-series as "
                            "repro.obs/v1 JSON (see docs/observability.md)")
    p_run.add_argument("--sample-interval", type=_positive_int,
                       default=None, metavar="N",
                       help="sample the hierarchy every N retired "
                            "instructions (default with --metrics: "
                            f"{api.DEFAULT_SAMPLE_INTERVAL})")
    p_run.add_argument("--trace", metavar="PATH", default=None,
                       help="export the request span trace as "
                            "repro.obs/trace-v1 JSON (see "
                            "docs/observability.md)")
    p_run.add_argument("--trace-sample", type=_positive_int, default=None,
                       metavar="N",
                       help="trace 1 in N requests (default with "
                            "--trace: 1, i.e. every request)")
    p_run.add_argument("--check", action="store_true",
                       help="run with runtime invariant checkers and the "
                            "differential oracle attached (see "
                            "docs/validation.md)")
    p_run.set_defaults(func=_cmd_run)

    p_fig = sub.add_parser("figure", help="regenerate paper figures")
    p_fig.add_argument("names", nargs="+", choices=api.list_figures(),
                       metavar="name")
    p_fig.add_argument("--benchmarks", nargs="*", default=None)
    p_fig.add_argument("--instructions", type=int,
                       default=api.DEFAULT_INSTRUCTIONS)
    p_fig.add_argument("--warmup", type=int, default=api.DEFAULT_WARMUP)
    p_fig.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker processes for independent runs")
    p_fig.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk result memo "
                            "(~/.cache/repro-runs)")
    p_fig.add_argument("--verbose", action="store_true",
                       help="per-run progress on stderr")
    p_fig.add_argument("--metrics", metavar="PATH", default=None,
                       help="export the batch manifest + per-run "
                            "heartbeat events as repro.obs/v1 JSON")
    p_fig.add_argument("--heartbeat", metavar="PATH", default=None,
                       help="stream one JSON line per completed run "
                            "(tail -f friendly)")
    p_fig.add_argument("--check", action="store_true",
                       help="validate every run (implies --no-cache: "
                            "memoised results would skip the checkers)")
    p_fig.set_defaults(func=_cmd_figure)

    p_stats = sub.add_parser(
        "stats", help="summarise / validate / diff metrics exports")
    p_stats.add_argument("paths", nargs="+",
                         help="one export renders it; two run exports "
                              "diff their summaries")
    p_stats.add_argument("--validate", action="store_true",
                         help="check documents against the repro.obs/v1 "
                              "schema and exit non-zero on problems")
    p_stats.add_argument("--csv", metavar="PATH", default=None,
                         help="also write a run export's interval "
                              "time-series as CSV")
    p_stats.set_defaults(func=_cmd_stats)

    p_trace = sub.add_parser(
        "trace", help="render / summarise / diff span-trace exports")
    trace_sub = p_trace.add_subparsers(dest="trace_cmd", required=True)
    t_render = trace_sub.add_parser(
        "render", help="print the span tree of a trace export")
    t_render.add_argument("path")
    t_render.add_argument("--limit", type=int, default=None, metavar="N",
                          help="only the first N requests")
    t_render.add_argument("--perfetto", metavar="PATH", default=None,
                          help="also convert to Chrome Trace Event "
                               "Format JSON (loadable in Perfetto)")
    t_render.set_defaults(func=_cmd_trace)
    t_summary = trace_sub.add_parser(
        "summary", help="latency breakdowns, hotspots, walk matrix")
    t_summary.add_argument("path")
    t_summary.set_defaults(func=_cmd_trace)
    t_diff = trace_sub.add_parser(
        "diff", help="attribute the cycle delta between two traced runs")
    t_diff.add_argument("baseline")
    t_diff.add_argument("enhanced")
    t_diff.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench", help="run the pinned performance-benchmark matrix")
    from repro.bench import add_arguments as _bench_arguments
    _bench_arguments(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    # The scenario subcommand's argument tree lives with its
    # implementation (repro.scenarios.cli); only the registration hook is
    # imported here, at parser-build time like the bench arguments above.
    from repro.scenarios.cli import add_scenario_parser
    add_scenario_parser(sub)
    sub.choices["scenario"].set_defaults(func=_cmd_scenario)

    # Job-service subcommands (docs/service.md), same lazy pattern.
    from repro.service.cli import add_service_parsers
    add_service_parsers(sub)
    for name in ("serve", "submit", "status", "result", "cancel", "top"):
        sub.choices[name].set_defaults(func=_cmd_service)

    p_list = sub.add_parser("list", help="list benchmarks and figures")
    p_list.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
