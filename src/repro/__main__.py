"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro run pr --enhancements full       # one simulation
    python -m repro figure fig14                     # regenerate a figure
    python -m repro figure fig1 fig4 fig14 --jobs 8  # parallel + memoised
    python -m repro list                             # what's available

``figure`` fans independent runs out over ``--jobs`` worker processes
and memoises results under ``~/.cache/repro-runs`` (``--no-cache`` to
disable; the cache auto-invalidates when the simulator code changes).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.rob import StallCategory
from repro.experiments import figures, mixes, sweeps
from repro.experiments.ablations import (atp_trigger_placement,
                                         single_mechanism_ablation)
from repro.experiments.accuracy import prefetch_accuracy
from repro.experiments.atp_scope import atp_scope as _atp_scope_lazy
from repro.experiments.comparison import prior_work_comparison
from repro.experiments.extensions import huge_page_study
from repro.experiments.runner import (DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP,
                                      run_benchmark)
from repro.params import DEFAULT_SCALE, EnhancementConfig, default_config
from repro.workloads.registry import benchmark_names

#: Figure registry for the ``figure`` subcommand.
FIGURES = {
    "fig1": figures.fig1_rob_stalls,
    "fig2": figures.fig2_ideal,
    "fig3": figures.fig3_response_distribution,
    "fig4": figures.fig4_translation_mpki,
    "fig5": figures.fig5_recall_translations,
    "fig6": figures.fig6_replay_mpki,
    "fig7": figures.fig7_recall_replays,
    "fig8": figures.fig8_prefetcher_replay_mpki,
    "fig10": figures.fig10_replay_rrpv0_degradation,
    "fig12": figures.fig12_newsign_mpki,
    "fig14": figures.fig14_performance,
    "fig15": figures.fig15_with_prefetchers,
    "fig16": figures.fig16_stall_reduction,
    "fig17": mixes.fig17_smt,
    "fig18": figures.fig18_stlb_recall,
    "fig19": sweeps.fig19_stlb_sensitivity,
    "fig20": sweeps.fig20_l2c_sensitivity,
    "fig21": sweeps.fig21_llc_sensitivity,
    "table2": figures.table2_characterization,
    "multicore": mixes.multicore_study,
    # Beyond the paper:
    "comparison": prior_work_comparison,
    "ablation": single_mechanism_ablation,
    "atp_placement": atp_trigger_placement,
    "accuracy": prefetch_accuracy,
    "hugepages": huge_page_study,
    "psc": sweeps.psc_sensitivity,
    "atp_scope": _atp_scope_lazy,
}

_ENHANCEMENT_PRESETS = {
    "none": EnhancementConfig.none(),
    "t_drrip": EnhancementConfig(t_drrip=True),
    "t_ship": EnhancementConfig(t_drrip=True, t_llc=True,
                                new_signatures=True),
    "atp": EnhancementConfig(t_drrip=True, t_llc=True, new_signatures=True,
                             atp=True),
    "full": EnhancementConfig.full(),
}


def _enable_checking() -> None:
    # Via the environment so parallel worker processes inherit it.
    import os
    os.environ["REPRO_CHECK"] = "1"


def _cmd_run(args) -> int:
    if args.check:
        _enable_checking()
    cfg = default_config(args.scale).replace(
        enhancements=_ENHANCEMENT_PRESETS[args.enhancements])
    if args.l2c_prefetcher != "none":
        cfg = cfg.replace(l2c_prefetcher=args.l2c_prefetcher)
    result = run_benchmark(args.benchmark, config=cfg,
                           instructions=args.instructions,
                           warmup=args.warmup, scale=args.scale)
    print(f"benchmark      : {result.benchmark}")
    print(f"enhancements   : {args.enhancements}")
    print(f"instructions   : {result.instructions}")
    print(f"cycles         : {result.cycles}")
    print(f"IPC            : {result.ipc:.4f}")
    for key, value in result.summary().items():
        if key in ("ipc", "cycles"):
            continue
        print(f"{key:<15}: {value:.3f}")
    checker = result.hierarchy.checker
    if checker is not None:
        print(f"validation     : OK ({checker.events} events checked, "
              f"0 violations)")
    return 0


def _progress(event) -> None:
    tag = "cache" if event.source == "cache" else f"{event.wall_time:.1f}s"
    print(f"  [{event.done}/{event.total}] {event.key.benchmark} "
          f"cfg={event.key.config_hash[:8]} ({tag})", file=sys.stderr)


def _cmd_figure(args) -> int:
    from repro.experiments import parallel

    if args.check:
        # Memoised results would skip simulation (and thus validation),
        # so --check forces every run to execute.
        _enable_checking()
        args.no_cache = True
    runner = parallel.configure(jobs=args.jobs,
                                use_cache=not args.no_cache,
                                progress=_progress if args.verbose else None)
    for name in args.names:
        fn = FIGURES[name]
        kwargs = {"instructions": args.instructions, "warmup": args.warmup}
        if args.benchmarks and name not in ("fig17", "multicore"):
            kwargs["benchmarks"] = args.benchmarks
        print(fn(**kwargs))
    m = runner.metrics
    print(f"runs: {m.executed} executed, {m.cache_hits} from cache, "
          f"{m.retries} retried, {m.total_wall_time:.1f}s simulated",
          file=sys.stderr)
    if args.check:
        print("validation: all runs passed invariant + oracle checks",
              file=sys.stderr)
    return 0


def _cmd_list(_args) -> int:
    print("benchmarks :", " ".join(benchmark_names()))
    print("figures    :", " ".join(FIGURES))
    print("enhancement presets:", " ".join(_ENHANCEMENT_PRESETS))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ISPASS'22 translation-conscious caching reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one benchmark")
    p_run.add_argument("benchmark", choices=benchmark_names())
    p_run.add_argument("--enhancements", default="none",
                       choices=sorted(_ENHANCEMENT_PRESETS))
    p_run.add_argument("--l2c-prefetcher", default="none",
                       choices=["none", "spp", "bingo", "isb", "next_line"])
    p_run.add_argument("--instructions", type=int,
                       default=DEFAULT_INSTRUCTIONS)
    p_run.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    p_run.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    p_run.add_argument("--check", action="store_true",
                       help="run with runtime invariant checkers and the "
                            "differential oracle attached (see "
                            "docs/validation.md)")
    p_run.set_defaults(func=_cmd_run)

    p_fig = sub.add_parser("figure", help="regenerate paper figures")
    p_fig.add_argument("names", nargs="+", choices=sorted(FIGURES),
                       metavar="name")
    p_fig.add_argument("--benchmarks", nargs="*", default=None)
    p_fig.add_argument("--instructions", type=int,
                       default=DEFAULT_INSTRUCTIONS)
    p_fig.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    p_fig.add_argument("--jobs", type=int, default=1,
                       help="worker processes for independent runs")
    p_fig.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk result memo "
                            "(~/.cache/repro-runs)")
    p_fig.add_argument("--verbose", action="store_true",
                       help="per-run progress on stderr")
    p_fig.add_argument("--check", action="store_true",
                       help="validate every run (implies --no-cache: "
                            "memoised results would skip the checkers)")
    p_fig.set_defaults(func=_cmd_figure)

    p_list = sub.add_parser("list", help="list benchmarks and figures")
    p_list.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
