"""The complete memory hierarchy of one core.

Builds (per Table I): DTLB/STLB + PSCs + PTW, L1D -> L2C -> LLC -> DRAM,
applies the configured replacement policies (swapping in T-DRRIP / T-SHiP /
T-Hawkeye when the paper's enhancements are enabled) and attaches the
configured prefetchers (IPCP at L1D; SPP/Bingo/ISB at L2C; ATP at L2C+LLC;
TEMPO at the DRAM controller).

``load``/``store`` perform the full two-phase access the paper studies:
address translation first, then the (replay or non-replay) data access.

For multi-core configurations the LLC and DRAM can be shared: pass them in
via ``shared_llc``/``shared_dram``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.cache import Cache
from repro.cache.replacement import make_policy
from repro.memsys.dram import DRAM
from repro.memsys import request as request_pool
from repro.memsys.request import AccessType, MemoryRequest
from repro.params import LINE_SHIFT, PAGE_SHIFT, SimConfig
from repro.prefetch import make_l2c_prefetcher
from repro.prefetch.atp import ATPPrefetcher
from repro.prefetch.ipcp import IPCPPrefetcher
from repro.prefetch.tempo import TEMPOPrefetcher
from repro.stats.counters import LevelDistribution
from repro.vm.mmu import MMU
from repro.vm.page_table import PageTable


@dataclass(slots=True)
class LoadResult:
    """Timing of one demand load through translation + data access."""

    vaddr: int
    paddr: int
    issue_cycle: int
    translation_done: int
    data_done: int
    is_replay: bool
    dtlb_hit: bool
    stlb_hit: bool
    data_served_by: str


class MemoryHierarchy:
    """Per-core memory system (optionally sharing LLC/DRAM with peers)."""

    def __init__(self, config: SimConfig,
                 page_table: Optional[PageTable] = None,
                 shared_llc: Optional[Cache] = None,
                 shared_dram: Optional[DRAM] = None):
        self.config = config
        enh = config.enhancements
        ideal = config.ideal

        self.dram = shared_dram or DRAM(config.dram)

        if shared_llc is not None:
            self.llc = shared_llc
        else:
            llc_policy_name = config.llc.replacement
            if enh.t_ship:
                llc_policy_name = {"ship": "t_ship",
                                   "hawkeye": "t_hawkeye"}.get(
                    llc_policy_name, llc_policy_name)
            elif enh.newsign and llc_policy_name == "ship":
                llc_policy_name = "newsign_ship"
            llc_kwargs = {}
            if llc_policy_name in ("t_ship",) and enh.replay_rrpv0:
                llc_kwargs["replay_rrpv0"] = True
            llc_policy = make_policy(llc_policy_name, config.llc.num_sets,
                                     config.llc.ways, **llc_kwargs)
            self.llc = Cache(config.llc, self.dram, policy=llc_policy,
                             track_recall=config.track_recall,
                             ideal_translations=ideal.llc_translations,
                             ideal_replays=ideal.llc_replays)

        l2c_policy_name = config.l2c.replacement
        l2c_kwargs = {}
        if enh.t_drrip and l2c_policy_name == "drrip":
            l2c_policy_name = "t_drrip"
            if enh.replay_rrpv0:
                l2c_kwargs["replay_rrpv0"] = True
        l2c_policy = make_policy(l2c_policy_name, config.l2c.num_sets,
                                 config.l2c.ways, **l2c_kwargs)
        self.l2c = Cache(config.l2c, self.llc, policy=l2c_policy,
                         track_recall=config.track_recall,
                         ideal_translations=ideal.l2c_translations,
                         ideal_replays=ideal.l2c_replays)
        self.l1d = Cache(config.l1d, self.l2c)
        if config.llc_inclusion == "inclusive":
            self.llc.back_invalidate_targets.extend([self.l2c, self.l1d])
        elif config.llc_inclusion != "non_inclusive":
            raise ValueError(
                f"unknown inclusion policy {config.llc_inclusion!r}")

        if page_table is not None:
            self.page_table = page_table
        else:
            predicate = None
            if config.huge_page_policy == "gather_region":
                from repro.workloads.synthetic import RANDOM_BASE
                predicate = lambda va: va >= RANDOM_BASE  # noqa: E731
            elif config.huge_page_policy != "none":
                raise ValueError(
                    f"unknown huge-page policy {config.huge_page_policy!r}")
            self.page_table = PageTable(huge_page_predicate=predicate)
        self.mmu = MMU(config, self.page_table, self.l1d)

        # Section V-B prior-work comparison modes.
        self.dead_page_predictor = None
        self.dead_block_bypass = None
        if config.comparison == "cbpred":
            from repro.compare.dead_page import (DeadBlockBypass,
                                                 DeadPagePredictor)
            self.dead_page_predictor = DeadPagePredictor()
            self.mmu.stlb.observer = self.dead_page_predictor
            self.mmu.dead_page_predictor = self.dead_page_predictor
            if shared_llc is None:
                self.dead_block_bypass = DeadBlockBypass(
                    self.dead_page_predictor)
                self.llc.bypass_predicate = self.dead_block_bypass
        elif config.comparison == "csalt":
            if shared_llc is None:
                from repro.compare.csalt import CSALTPolicy
                self.llc.policy = CSALTPolicy(config.llc.num_sets,
                                              config.llc.ways)
        elif config.comparison != "none":
            raise ValueError(
                f"unknown comparison mode {config.comparison!r}")

        # Prefetchers.
        self.l2c.prefetcher = make_l2c_prefetcher(config.l2c_prefetcher)
        self.ipcp: Optional[IPCPPrefetcher] = None
        if config.l1d_prefetcher == "ipcp":
            self.ipcp = IPCPPrefetcher()
        elif config.l1d_prefetcher not in ("none", "", None):
            # Physical-address prefetchers can also sit at the L1D.
            self.l1d.prefetcher = make_l2c_prefetcher(config.l1d_prefetcher)

        self.atp: Optional[ATPPrefetcher] = None
        if enh.atp:
            self.atp = ATPPrefetcher(self.l2c, self.llc)
            self.atp.attach()
        self.tempo: Optional[TEMPOPrefetcher] = None
        if enh.tempo:
            self.tempo = TEMPOPrefetcher(self.dram, self.llc)
            self.tempo.attach()

        #: Optional instruction-side path (Table I: ITLB + L1I).
        self.frontend = None
        if config.model_frontend:
            from repro.core.frontend import Frontend
            self.frontend = Frontend(config, self.mmu, self.l2c)

        self._replay_issue_latency = config.core.replay_issue_latency

        #: Fig 3: which level served leaf translations / replays.
        self.response_distribution = LevelDistribution()
        self.loads = 0
        self.stores = 0

        #: Runtime invariant checkers (None unless --check/REPRO_CHECK=1).
        from repro import validate
        self.checker = validate.maybe_attach(self)

        #: Interval metrics sampler (None unless the run is observed --
        #: same is-None-guard cost model as the checker above).  Attached
        #: by :func:`repro.experiments.runner.run_benchmark`.
        self.sampler = None

        #: Request-level span tracer (None unless the run is traced --
        #: attached via :func:`repro.obs.trace.attach`, same cost model).
        self.tracer = None

    # ------------------------------------------------------------------
    def load(self, va: int, cycle: int, ip: int = 0) -> LoadResult:
        """A demand load: translate, then fetch the data line."""
        self.loads += 1
        tracer = self.tracer
        root = None
        if tracer is not None:
            root = tracer.begin_request("load", cycle, vaddr=va, ip=ip)
        tr = self.mmu.translate(va, cycle, ip)
        is_replay = tr.is_replay
        issue_at = tr.done_cycle
        if is_replay:
            # The load is replayed from the load queue after the walk
            # fills the TLBs (pipeline re-issue latency).
            issue_at += self._replay_issue_latency
            if tr.walk is not None and tr.walk.leaf_served_by:
                # inlined response_distribution.record (hot path; the
                # category literal is always present in the table)
                self.response_distribution.counts["translation"][
                    tr.walk.leaf_served_by] += 1

        req = request_pool.acquire(tr.paddr, issue_at, ip=ip,
                                   access_type=AccessType.LOAD,
                                   is_replay=is_replay)
        category = "replay" if is_replay else "non_replay"
        dspan = None
        if tracer is not None:
            dspan = tracer.begin("data", issue_at, cat=category,
                                 line=req.line_addr)
        data_done = self.l1d.access(req)
        if tracer is not None:
            tracer.end(dspan, data_done, served_by=req.served_by)
        # inlined response_distribution.record + _level_key (hot path)
        self.response_distribution.counts[category][
            req.served_by or "DRAM"] += 1
        if self.ipcp is not None:
            self._run_ipcp(ip, va, cycle)
        if tracer is not None:
            tracer.end_request(root, data_done, cat=category,
                               paddr=tr.paddr)
        result = LoadResult(vaddr=va, paddr=tr.paddr, issue_cycle=cycle,
                            translation_done=tr.done_cycle,
                            data_done=data_done, is_replay=is_replay,
                            dtlb_hit=tr.dtlb_hit, stlb_hit=tr.stlb_hit,
                            data_served_by=req.served_by)
        request_pool.release(req)
        return result

    def store(self, va: int, cycle: int, ip: int = 0) -> LoadResult:
        """A demand store: translation matters, data is buffered."""
        self.stores += 1
        tracer = self.tracer
        root = None
        if tracer is not None:
            root = tracer.begin_request("store", cycle, vaddr=va, ip=ip)
        tr = self.mmu.translate(va, cycle, ip)
        req = request_pool.acquire(tr.paddr, tr.done_cycle, ip=ip,
                                   access_type=AccessType.STORE,
                                   is_replay=tr.is_replay)
        category = "replay" if tr.is_replay else "non_replay"
        dspan = None
        if tracer is not None:
            dspan = tracer.begin("data", tr.done_cycle, cat=category,
                                 line=req.line_addr)
        data_done = self.l1d.access(req)
        if tracer is not None:
            tracer.end(dspan, data_done, served_by=req.served_by)
            tracer.end_request(root, data_done, cat=category,
                               paddr=tr.paddr)
        result = LoadResult(vaddr=va, paddr=tr.paddr, issue_cycle=cycle,
                            translation_done=tr.done_cycle,
                            data_done=data_done, is_replay=tr.is_replay,
                            dtlb_hit=tr.dtlb_hit, stlb_hit=tr.stlb_hit,
                            data_served_by=req.served_by)
        request_pool.release(req)
        return result

    # ------------------------------------------------------------------
    def _run_ipcp(self, ip: int, va: int, cycle: int) -> None:
        """Issue IPCP's virtual-address prefetches through the MMU.

        Same-page candidates reuse the demand's translation; cross-page
        candidates must translate first and, on an STLB miss, wait for the
        full page-table walk -- the late-prefetch effect of Section III.
        """
        vline = va >> LINE_SHIFT
        for cand_vline in self.ipcp.operate_virtual(ip, vline, hit=True):
            cand_va = cand_vline << LINE_SHIFT
            if self.page_table.lookup(cand_va) is None:
                continue  # unmapped page: a real prefetch would fault
            # Same-page candidates hit the just-filled DTLB (1 cycle);
            # cross-page STLB misses pay a full walk -> late prefetch.
            tr = self.mmu.translate(cand_va, cycle, ip, count_stats=False)
            pline = tr.paddr >> LINE_SHIFT
            if self.l1d.contains(pline):
                continue
            pref = request_pool.acquire(tr.paddr, tr.done_cycle, ip=ip,
                                        access_type=AccessType.PREFETCH)
            self.l1d.access(pref)
            request_pool.release(pref)

    @staticmethod
    def _level_key(served_by: str) -> str:
        return served_by if served_by else "DRAM"

    def reset_stats(self) -> None:
        """Zero every statistics counter (warmup boundary).  Cache, TLB and
        predictor *contents* are preserved -- only the counting restarts."""
        self.l1d.reset_stats()
        self.l2c.reset_stats()
        self.llc.reset_stats()
        self.mmu.dtlb.reset_stats()
        self.mmu.stlb.reset_stats()
        self.mmu.translations = 0
        self.mmu.walk_cycles_total = 0
        self.mmu.walker.walks = 0
        self.mmu.walker.pte_reads = 0
        self.dram.accesses = 0
        self.dram.row_hits = 0
        self.dram.row_misses = 0
        self.response_distribution = LevelDistribution()
        self.loads = 0
        self.stores = 0
        if self.atp is not None:
            self.atp.triggered_l2c = 0
            self.atp.triggered_llc = 0
        if self.tempo is not None:
            self.tempo.triggered = 0
        if self.ipcp is not None:
            self.ipcp.issued = 0
            self.ipcp.cross_page_issued = 0
        if self.frontend is not None:
            self.frontend.itlb.reset_stats()
            self.frontend.l1i.reset_stats()
            self.frontend.fetches = 0
            self.frontend.itlb_walks = 0

    # ------------------------------------------------------------------
    def leaf_translation_hit_rate(self) -> float:
        """On-chip hit rate of leaf translations (paper: 99% with T-*)."""
        acc = (self.l1d.stats.leaf_accesses)
        if acc == 0:
            return 1.0
        dram = self.llc.stats.leaf_misses
        return 1.0 - dram / acc
