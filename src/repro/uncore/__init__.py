"""Uncore: wires TLBs, caches, DRAM, the walker and the prefetchers into a
complete per-core memory hierarchy."""

from repro.uncore.hierarchy import MemoryHierarchy, LoadResult

__all__ = ["MemoryHierarchy", "LoadResult"]
