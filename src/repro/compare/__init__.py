"""Reimplementations of the prior works the paper compares against in
Section V-B: CbPred/DpPred (dead-page and dead-block prediction, HPCA'21)
and CSALT (context-switch-aware TLB / translation-data cache
partitioning, MICRO'17)."""

from repro.compare.dead_page import DeadPagePredictor, DeadBlockBypass
from repro.compare.csalt import CSALTPolicy

__all__ = ["DeadPagePredictor", "DeadBlockBypass", "CSALTPolicy"]
