"""DpPred + CbPred (Mazumdar, Mitra & Basu, HPCA'21), compact model.

*DpPred* predicts **dead pages** at the STLB: pages whose translation
entry will not be re-referenced before eviction.  Predicted-dead entries
are inserted at the eviction end of their set, effectively bypassing the
STLB.  *CbPred* extends the prediction to the LLC: data blocks belonging
to predicted-dead pages bypass the LLC (they are filled upward without
being installed).

Training uses an eviction sampler: when an STLB entry is evicted, the
signature that filled it is rewarded if the entry was re-referenced and
punished otherwise.  The signature is the filling instruction pointer,
as in the original proposal's PC-based predictor.

The paper's point (Section V-B) is that this helps cache capacity but
does *not* attack the head-of-ROB stalls: dead pages/blocks are exactly
the ones with recall distance > 50 (Fig 18), so bypassing them cannot
accelerate the costly misses; replay loads stay uncovered.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.memsys.request import MemoryRequest
from repro.params import PAGE_SHIFT


class DeadPagePredictor:
    """PC-indexed dead-page predictor trained by STLB eviction outcomes."""

    TABLE_SIZE = 4096
    COUNTER_MAX = 7
    #: Counters at or below this predict "dead".
    DEAD_THRESHOLD = 1

    def __init__(self):
        self._counters = [self.COUNTER_MAX // 2] * self.TABLE_SIZE
        # vpn -> (fill signature, referenced since fill?)
        self._live: Dict[int, list] = {}
        self.predictions = 0
        self.dead_predictions = 0

    def _signature(self, ip: int) -> int:
        return (ip ^ (ip >> 12) ^ (ip >> 24)) % self.TABLE_SIZE

    # -- training hooks (wired to the STLB) ------------------------------
    def on_stlb_fill(self, vpn: int, ip: int) -> None:
        self._live[vpn] = [self._signature(ip), False]
        if len(self._live) > 65536:
            self._live.clear()  # sampler overflow: restart

    def on_stlb_reuse(self, vpn: int) -> None:
        entry = self._live.get(vpn)
        if entry is not None:
            entry[1] = True

    def on_stlb_evict(self, vpn: int) -> None:
        entry = self._live.pop(vpn, None)
        if entry is None:
            return
        sig, reused = entry
        counter = self._counters[sig]
        if reused:
            self._counters[sig] = min(self.COUNTER_MAX, counter + 1)
        elif counter > 0:
            self._counters[sig] = counter - 1

    # -- prediction --------------------------------------------------------
    def is_dead(self, ip: int) -> bool:
        """Would a page touched by ``ip`` be dead in the STLB?"""
        self.predictions += 1
        dead = self._counters[self._signature(ip)] <= self.DEAD_THRESHOLD
        if dead:
            self.dead_predictions += 1
        return dead


class DeadBlockBypass:
    """CbPred: bypass LLC fills of blocks in predicted-dead pages.

    Installed as a cache's ``bypass_predicate``: a demand data block
    whose filling IP predicts dead is served upward without being
    installed in the LLC, freeing capacity for live blocks.
    Translations are never bypassed (the original also keeps them).
    """

    def __init__(self, predictor: DeadPagePredictor):
        self.predictor = predictor
        self.bypassed = 0

    def __call__(self, req: MemoryRequest) -> bool:
        if not req.is_demand_data:
            return False
        if self.predictor.is_dead(req.ip):
            self.bypassed += 1
            return True
        return False
