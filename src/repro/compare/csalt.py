"""CSALT-style dynamic translation/data cache partitioning (Marathe et
al., MICRO'17), compact model.

CSALT partitions cache ways between page-table (translation) blocks and
data blocks, steering the split with hit-rate estimators.  Our model
wraps SHiP: every set allows translation blocks at most ``t_ways`` ways;
victim selection evicts within the over-quota class, and ``t_ways``
adapts every epoch toward whichever class shows the higher marginal hit
rate.

The paper corroborates CSALT's ~1% improvement over an enhanced
SHiP/DRRIP baseline (Section V-B): partitioning protects translations as
a *class*, but cannot distinguish the short-recall translations worth
keeping, and does nothing for replay loads.
"""

from __future__ import annotations

from repro.cache.replacement.ship import SHiPPolicy
from repro.memsys.request import MemoryRequest


class CSALTPolicy(SHiPPolicy):
    """SHiP with an adaptive translation-way quota per set."""

    name = "csalt"
    EPOCH_FILLS = 2048
    MIN_T_WAYS = 1

    def __init__(self, num_sets: int, num_ways: int,
                 initial_t_ways: int = 2):
        super().__init__(num_sets, num_ways)
        self.t_ways = max(self.MIN_T_WAYS,
                          min(initial_t_ways, num_ways - 1))
        self._fills = 0
        self._hits = {"translation": 0, "data": 0}
        self._accesses = {"translation": 0, "data": 0}

    # -- epoch adaptation -------------------------------------------------
    def _class_of(self, req: MemoryRequest) -> str:
        return "translation" if req.is_translation else "data"

    def _epoch_tick(self) -> None:
        self._fills += 1
        if self._fills % self.EPOCH_FILLS:
            return
        rates = {}
        for cls in ("translation", "data"):
            acc = self._accesses[cls]
            rates[cls] = self._hits[cls] / acc if acc else 0.0
            self._hits[cls] = 0
            self._accesses[cls] = 0
        # Grow the quota of the class with the lower hit rate (it is the
        # one starved of capacity), within bounds.
        if rates["translation"] < rates["data"]:
            self.t_ways = min(self.num_ways - 1, self.t_ways + 1)
        else:
            self.t_ways = max(self.MIN_T_WAYS, self.t_ways - 1)

    # -- policy hooks -------------------------------------------------------
    def on_hit(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        cls = self._class_of(req)
        self._accesses[cls] += 1
        self._hits[cls] += 1
        super().on_hit(set_idx, way, req)

    def on_fill(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        self._accesses[self._class_of(req)] += 1
        self._epoch_tick()
        super().on_fill(set_idx, way, req)

    def victim(self, set_idx: int, req: MemoryRequest) -> int:
        """Enforce the partition: evict within the over-quota class."""
        store = self.store
        base = set_idx * self.num_ways
        valid = store.valid
        is_translation = store.is_translation
        rrpv = store.rrpv
        slots = range(base, base + self.num_ways)
        t_count = sum(1 for s in slots if valid[s] and is_translation[s])
        if req.is_translation:
            restrict_to_translations = t_count >= self.t_ways
        else:
            restrict_to_translations = t_count > self.t_ways
        want = 1 if restrict_to_translations else 0
        candidates = [s for s in slots if is_translation[s] == want]
        if not candidates:
            return super().victim(set_idx, req)
        # SRRIP-style selection within the allowed class.
        while True:
            best = max(candidates, key=rrpv.__getitem__)
            if rrpv[best] >= self.max_rrpv:
                return best - base
            for s in candidates:
                rrpv[s] += 1
