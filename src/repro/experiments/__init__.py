"""Experiment harness: one function per figure/table of the paper."""

from repro.experiments.runner import (RunResult, run_benchmark,
                                      DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP)
from repro.experiments import figures, sweeps, mixes

__all__ = ["RunResult", "run_benchmark", "DEFAULT_INSTRUCTIONS",
           "DEFAULT_WARMUP", "figures", "sweeps", "mixes"]
