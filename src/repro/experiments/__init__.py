"""Experiment harness: one function per figure/table of the paper.

Figure regeneration routes through :mod:`repro.experiments.parallel`,
which memoises completed runs on disk and fans independent simulations
out over worker processes (see ``ParallelRunner`` / ``ResultCache``).
"""

from repro.experiments.parallel import (ParallelRunner, ResultCache,
                                        RunKey, RunSummary, configure,
                                        run_many, run_one)
from repro.experiments.runner import (RunResult, run_benchmark,
                                      DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP)
from repro.experiments import figures, sweeps, mixes

__all__ = ["RunResult", "run_benchmark", "DEFAULT_INSTRUCTIONS",
           "DEFAULT_WARMUP", "figures", "sweeps", "mixes",
           "ParallelRunner", "ResultCache", "RunKey", "RunSummary",
           "configure", "run_many", "run_one"]
