"""Sensitivity sweeps (Figs 19, 20, 21).

Each sweep varies one structure's capacity and reports the speedup of the
full enhancement stack over the baseline *at that size* -- the paper's
methodology ("normalized ... with respect to their corresponding
baselines").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.experiments.figures import FigureResult, _run_grid
from repro.experiments.parallel import RunKey
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.params import DEFAULT_SCALE, EnhancementConfig, default_config
from repro.stats.report import geometric_mean
from repro.workloads.registry import benchmark_names
from repro.experiments.registry import figure

#: Paper sweep points (at paper scale; divided by ``scale`` at run time).
STLB_SWEEP_ENTRIES = (512, 1024, 2048, 4096)
L2C_SWEEP_BYTES = (256 * 1024, 512 * 1024, 768 * 1024, 1024 * 1024)
LLC_SWEEP_BYTES = (1 << 20, 2 << 20, 4 << 20, 8 << 20)

#: L2C access latency grows with capacity (Table I note: 1MB is slower).
_L2C_LATENCY = {256 * 1024: 9, 512 * 1024: 10, 768 * 1024: 11,
                1024 * 1024: 12}
_LLC_LATENCY = {1 << 20: 18, 2 << 20: 20, 4 << 20: 22, 8 << 20: 24}


def _sweep(figure: str, title: str, structure: str, points: Sequence[int],
           benchmarks: Optional[Sequence[str]], instructions: int,
           warmup: int, scale: int) -> FigureResult:
    names = list(benchmarks) if benchmarks else benchmark_names()

    def point_config(point: int):
        cfg = default_config(scale)
        if structure == "stlb":
            stlb = dataclasses.replace(cfg.stlb,
                                       entries=max(cfg.stlb.ways,
                                                   point // scale))
            return cfg.with_(stlb=stlb)
        if structure == "l2c":
            l2c = dataclasses.replace(
                cfg.l2c, size_bytes=max(64 * cfg.l2c.ways, point // scale),
                latency=_L2C_LATENCY[point])
            return cfg.with_(l2c=l2c)
        llc = dataclasses.replace(
            cfg.llc, size_bytes=max(64 * cfg.llc.ways, point // scale),
            latency=_LLC_LATENCY[point])
        return cfg.with_(llc=llc)

    specs = {}
    for point in points:
        cfg = point_config(point)
        enh_cfg = cfg.with_(enhancements=EnhancementConfig.full())
        for name in names:
            specs[(point, name, "base")] = RunKey.make(
                name, cfg, instructions, warmup, scale)
            specs[(point, name, "enh")] = RunKey.make(
                name, enh_cfg, instructions, warmup, scale)
    runs = _run_grid(specs)
    rows: List[List] = []
    data: Dict = {}
    gmeans = []
    for point in points:
        speedups = []
        data[point] = {}
        for name in names:
            sp = runs[(point, name, "enh")].speedup_over(
                runs[(point, name, "base")])
            speedups.append(sp)
            data[point][name] = sp
        g = geometric_mean(speedups)
        data[point]["gmean"] = g
        gmeans.append(g)
        rows.append([str(point)] + speedups + [g])
    return FigureResult(figure, title, ["size"] + names + ["gmean"],
                        rows, data)


@figure("psc", paper=False)
def psc_sensitivity(benchmarks: Optional[Sequence[str]] = None,
                    instructions: int = DEFAULT_INSTRUCTIONS,
                    warmup: int = DEFAULT_WARMUP,
                    scale: int = DEFAULT_SCALE) -> FigureResult:
    """Beyond the paper: how much do the paging-structure caches matter?

    Sweeps PSC capacity from none to 4x Table I and reports baseline
    walk latency (cycles per walk) and IPC.  With healthy PSCs most
    walks are a single leaf read -- the regime ATP exploits.
    """
    import dataclasses as _dc
    from repro.params import PSCConfig

    names = list(benchmarks) if benchmarks else benchmark_names()
    variants = {
        "no_psc": PSCConfig(pscl5_entries=1, pscl4_entries=1,
                            pscl3_entries=1, pscl2_entries=1),
        "table1": PSCConfig(),
        "4x": PSCConfig(pscl5_entries=8, pscl4_entries=16,
                        pscl3_entries=32, pscl2_entries=128),
    }
    specs = {}
    for name in names:
        for label, psc in variants.items():
            cfg = default_config(scale).with_(psc=psc)
            specs[(name, label)] = RunKey.make(name, cfg, instructions,
                                               warmup, scale)
    runs = _run_grid(specs)
    rows, data = [], {}
    for name in names:
        row = [name]
        data[name] = {}
        for label in variants:
            run = runs[(name, label)]
            row.append(run.walk_latency)
            data[name][label] = {"walk_latency": run.walk_latency,
                                 "ipc": run.ipc}
        rows.append(row)
    return FigureResult("PSC sweep",
                        "Average page-walk latency by PSC capacity",
                        ["benchmark"] + list(variants), rows, data)


@figure("fig19")
def fig19_stlb_sensitivity(benchmarks: Optional[Sequence[str]] = None,
                           instructions: int = DEFAULT_INSTRUCTIONS,
                           warmup: int = DEFAULT_WARMUP,
                           scale: int = DEFAULT_SCALE,
                           points: Sequence[int] = STLB_SWEEP_ENTRIES
                           ) -> FigureResult:
    """Speedup of the enhancements vs baseline across STLB sizes."""
    return _sweep("Fig 19", "STLB sensitivity (entries at paper scale)",
                  "stlb", points, benchmarks, instructions, warmup, scale)


@figure("fig20")
def fig20_l2c_sensitivity(benchmarks: Optional[Sequence[str]] = None,
                          instructions: int = DEFAULT_INSTRUCTIONS,
                          warmup: int = DEFAULT_WARMUP,
                          scale: int = DEFAULT_SCALE,
                          points: Sequence[int] = L2C_SWEEP_BYTES
                          ) -> FigureResult:
    """Speedup of the enhancements vs baseline across L2C sizes."""
    return _sweep("Fig 20", "L2C sensitivity (bytes at paper scale)",
                  "l2c", points, benchmarks, instructions, warmup, scale)


@figure("fig21")
def fig21_llc_sensitivity(benchmarks: Optional[Sequence[str]] = None,
                          instructions: int = DEFAULT_INSTRUCTIONS,
                          warmup: int = DEFAULT_WARMUP,
                          scale: int = DEFAULT_SCALE,
                          points: Sequence[int] = LLC_SWEEP_BYTES
                          ) -> FigureResult:
    """Speedup of the enhancements vs baseline across LLC sizes."""
    return _sweep("Fig 21", "LLC sensitivity (bytes at paper scale)",
                  "llc", points, benchmarks, instructions, warmup, scale)
