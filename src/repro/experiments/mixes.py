"""SMT and multi-core mix experiments (Fig 17 and the Section V
multi-core study).

SMT mixes pair benchmarks across the paper's Low/Medium/High STLB-MPKI
categories; the reported metric is the *harmonic speedup* of the enhanced
configuration over the baseline, both run as 2-thread SMT.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.smt import SMTCore
from repro.core.multicore import MultiCore
from repro.experiments.figures import FigureResult
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.params import (DEFAULT_SCALE, EnhancementConfig, SimConfig,
                          default_config)
from repro.stats.report import geometric_mean, harmonic_mean
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.registry import make_trace
from repro.experiments.registry import figure

#: The paper's example SMT pairings, covering category combinations.
SMT_MIXES: Tuple[Tuple[str, str], ...] = (
    ("xalancbmk", "xalancbmk"),   # Low-Low
    ("canneal", "xalancbmk"),     # Medium-Low
    ("mcf", "tc"),                # Medium-Medium
    ("bf", "xalancbmk"),          # High-Low
    ("pr", "canneal"),            # High-Medium
    ("radii", "bf"),              # High-High
    ("pr", "cc"),                 # High-High
    ("tc", "pr"),                 # Medium-High
)


def _run_smt(mix: Tuple[str, str], config: SimConfig, instructions: int,
             warmup: int, scale: int) -> List:
    traces = [make_trace(name, instructions + warmup, scale=scale,
                         seed=7 + i)
              for i, name in enumerate(mix)]
    hierarchy = MemoryHierarchy(config)
    smt = SMTCore(config, hierarchy)
    return smt.run(traces, warmup=warmup)


@figure("fig17", takes_benchmarks=False)
def fig17_smt(mixes: Sequence[Tuple[str, str]] = SMT_MIXES,
              instructions: int = DEFAULT_INSTRUCTIONS,
              warmup: int = DEFAULT_WARMUP,
              scale: int = DEFAULT_SCALE) -> FigureResult:
    """Harmonic speedup of the full enhancements for 2-way SMT mixes."""
    rows, data = [], {}
    speedups = []
    for mix in mixes:
        base_cfg = default_config(scale)
        enh_cfg = base_cfg.with_(enhancements=EnhancementConfig.full())
        base = _run_smt(mix, base_cfg, instructions, warmup, scale)
        enh = _run_smt(mix, enh_cfg, instructions, warmup, scale)
        per_thread = [b.cycles / e.cycles for b, e in zip(base, enh)]
        hsp = harmonic_mean(per_thread)
        label = f"{mix[0]}-{mix[1]}"
        rows.append([label, per_thread[0], per_thread[1], hsp])
        data[label] = {"t0": per_thread[0], "t1": per_thread[1],
                       "harmonic": hsp}
        speedups.append(hsp)
    g = geometric_mean(speedups)
    rows.append(["gmean", "", "", g])
    data["gmean"] = g
    return FigureResult("Fig 17", "2-way SMT harmonic speedup",
                        ["mix (T0-T1)", "T0 speedup", "T1 speedup",
                         "harmonic"], rows, data)


#: Example multiprogrammed mixes (heterogeneous + homogeneous).  The
#: paper uses 25 8-core mixes; a representative subset keeps the bench
#: affordable while still averaging over interleaving noise.
MULTICORE_MIXES: Tuple[Tuple[str, ...], ...] = (
    ("pr", "cc", "bf", "radii", "mcf", "tc", "canneal", "xalancbmk"),
    ("pr",) * 8,
    ("mcf", "mcf", "canneal", "canneal", "tc", "tc", "bf", "bf"),
    ("cc", "canneal", "tc", "mcf"),
)


def multicore_speedup(mix: Sequence[str], num_cores: Optional[int] = None,
                      instructions: int = DEFAULT_INSTRUCTIONS,
                      warmup: int = DEFAULT_WARMUP,
                      scale: int = DEFAULT_SCALE) -> Dict:
    """Harmonic speedup of the enhancements for one multi-core mix."""
    n = num_cores or len(mix)
    traces = [make_trace(name, instructions + warmup, scale=scale,
                         seed=11 + i)
              for i, name in enumerate(mix)]

    def run(config: SimConfig):
        machine = MultiCore(config, n)
        return machine.run(traces, warmup=warmup)

    base = run(default_config(scale))
    enh = run(default_config(scale).with_(
        enhancements=EnhancementConfig.full()))
    per_core = [b.cycles / e.cycles for b, e in zip(base, enh)]
    return {"mix": tuple(mix), "per_core": per_core,
            "harmonic": harmonic_mean(per_core)}


@figure("multicore", takes_benchmarks=False)
def multicore_study(mixes: Sequence[Sequence[str]] = MULTICORE_MIXES,
                    instructions: int = DEFAULT_INSTRUCTIONS,
                    warmup: int = DEFAULT_WARMUP,
                    scale: int = DEFAULT_SCALE) -> FigureResult:
    """Section V multi-core results over a set of 8-core mixes."""
    rows, data = [], {}
    speedups = []
    for mix in mixes:
        res = multicore_speedup(mix, instructions=instructions,
                                warmup=warmup, scale=scale)
        label = "+".join(sorted(set(mix)))
        rows.append([label, res["harmonic"]])
        data[label] = res
        speedups.append(res["harmonic"])
    g = geometric_mean(speedups)
    rows.append(["gmean", g])
    data["gmean"] = g
    return FigureResult("Multi-core", "8-core mix harmonic speedup",
                        ["mix", "harmonic speedup"], rows, data)
