"""Decorator-based figure registry: one source of truth for "what can be
regenerated".

Figure/table harnesses register themselves at definition time::

    @registry.figure("fig14", title="Performance of the proposed stack")
    def fig14_performance(benchmarks=None, ...):
        ...

and every consumer -- the CLI's ``figure`` subcommand, ``repro.api``,
``make figures*``, the ``benchmarks/`` suite and the docs -- resolves
names through :func:`get` / :func:`names`, so the lists cannot drift
(``tests/test_figure_registry.py`` enforces the benchmark-suite side).

Registration is lazy: the defining modules are imported on the first
lookup, not at ``import repro`` time.
"""

from __future__ import annotations

import importlib
import re
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

#: Modules whose import registers figures.  Order is irrelevant (display
#: order is the natural sort of the names); membership matters.
_FIGURE_MODULES = (
    "repro.experiments.figures",
    "repro.experiments.mixes",
    "repro.experiments.sweeps",
    "repro.experiments.ablations",
    "repro.experiments.accuracy",
    "repro.experiments.comparison",
    "repro.experiments.extensions",
    "repro.experiments.atp_scope",
)


@dataclass(frozen=True)
class FigureSpec:
    """One registered figure/table harness."""

    name: str
    fn: Callable
    title: str
    #: Defining module (for ``repro list`` and the docs).
    source: str
    #: Reproduces a figure/table of the paper (False: a beyond-the-paper
    #: study).
    paper: bool = True
    #: Accepts the ``benchmarks=[...]`` narrowing kwarg (the SMT/multicore
    #: studies take workload *mixes* instead).
    takes_benchmarks: bool = True

    def __call__(self, **kwargs):
        return self.fn(**kwargs)


_REGISTRY: Dict[str, FigureSpec] = {}


def figure(name: str, *, title: str = "", paper: bool = True,
           takes_benchmarks: bool = True) -> Callable:
    """Decorator that registers a figure harness under ``name``.

    ``title`` defaults to the first line of the function's docstring.
    Duplicate names are a programming error and raise immediately.
    """
    def decorate(fn: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"figure {name!r} registered twice "
                             f"({_REGISTRY[name].source} and {fn.__module__})")
        doc_title = (fn.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = FigureSpec(
            name=name, fn=fn,
            title=title or (doc_title[0] if doc_title else name),
            source=fn.__module__, paper=paper,
            takes_benchmarks=takes_benchmarks)
        return fn
    return decorate


def ensure_loaded() -> None:
    """Import every figure-defining module (idempotent)."""
    for module in _FIGURE_MODULES:
        importlib.import_module(module)


def _sort_key(name: str) -> Tuple:
    """fig1 < fig2 < ... < fig21 < table2 < everything else, humanely."""
    match = re.fullmatch(r"fig(\d+)", name)
    if match:
        return (0, int(match.group(1)), name)
    if name.startswith("table"):
        return (1, 0, name)
    return (2, 0, name)


def names() -> Tuple[str, ...]:
    """Every registered figure name, naturally sorted."""
    ensure_loaded()
    return tuple(sorted(_REGISTRY, key=_sort_key))


def get(name: str) -> FigureSpec:
    """Resolve one registered figure; raises ``KeyError`` with the valid
    names on a miss."""
    ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown figure {name!r}; known: "
                       f"{' '.join(names())}") from None


def specs() -> Tuple[FigureSpec, ...]:
    """Every registered spec, in display order."""
    return tuple(_REGISTRY[name] for name in names())
