"""Prefetch accuracy study (Section V: "Our ATP prefetcher is 100%
accurate as it is not speculative").

Conventional prefetchers guess future addresses; wrong guesses burn DRAM
bandwidth and cache capacity.  ATP computes the replay line *exactly*
from the leaf PTE and the carried page-offset bits, so every prefetch is
consumed by its replay demand (unless it is evicted first).  This study
measures, per prefetcher, the fraction of prefetched blocks that a
demand touched before eviction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures import FigureResult, _run_grid
from repro.experiments.parallel import RunKey
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.params import DEFAULT_SCALE, EnhancementConfig, default_config
from repro.workloads.registry import benchmark_names
from repro.experiments.registry import figure


def _useful_and_filled(run, levels: Sequence[str]):
    useful = sum(run.prefetch_useful(lvl) for lvl in levels)
    filled = sum(run.prefetch_fills(lvl) for lvl in levels)
    return useful, filled


@figure("accuracy", paper=False)
def prefetch_accuracy(benchmarks: Optional[Sequence[str]] = None,
                      instructions: int = DEFAULT_INSTRUCTIONS,
                      warmup: int = DEFAULT_WARMUP,
                      scale: int = DEFAULT_SCALE) -> FigureResult:
    """Useful-prefetch fraction for IPCP/SPP/Bingo/ISB vs ATP."""
    names = list(benchmarks) if benchmarks else benchmark_names()
    # Per prefetcher: config overrides and the level it *targets* (a miss
    # also fills the levels below on the way up; those passthrough copies
    # are side effects, not predictions, so they are excluded).
    variants = {
        "ipcp": (dict(l1d_prefetcher="ipcp"), ("l1d",)),
        "spp": (dict(l2c_prefetcher="spp"), ("l2c",)),
        "bingo": (dict(l2c_prefetcher="bingo"), ("l2c",)),
        "isb": (dict(l2c_prefetcher="isb"), ("l2c",)),
        "atp": (dict(enhancements=EnhancementConfig(
            t_drrip=True, t_ship=True, newsign=True, atp=True)),
            ("l2c", "llc")),
    }
    specs = {}
    for name in names:
        for label, (overrides, levels) in variants.items():
            cfg = default_config(scale).with_(**overrides)
            specs[(name, label)] = RunKey.make(name, cfg, instructions,
                                               warmup, scale)
    runs = _run_grid(specs)
    rows: List[List] = []
    data: Dict = {}
    totals = {v: [0, 0] for v in variants}
    for name in names:
        row = [name]
        data[name] = {}
        for label, (overrides, levels) in variants.items():
            run = runs[(name, label)]
            useful, filled = _useful_and_filled(run, levels)
            if label == "atp":
                # Each trigger targets exactly one block at one level;
                # the passthrough LLC copy of an L2C-targeted prefetch is
                # not a prediction.  Consumed triggers / triggers.
                filled = run.atp_triggered
            accuracy = min(1.0, useful / filled) if filled else 0.0
            row.append(accuracy)
            data[name][label] = {"useful": useful, "filled": filled,
                                 "accuracy": accuracy}
            totals[label][0] += useful
            totals[label][1] += filled
        rows.append(row)
    mean_row = ["overall"]
    data["overall"] = {}
    for label, (useful, filled) in totals.items():
        acc = useful / filled if filled else 0.0
        mean_row.append(acc)
        data["overall"][label] = acc
    rows.append(mean_row)
    return FigureResult("Accuracy", "Useful fraction of prefetched blocks",
                        ["benchmark"] + list(variants), rows, data)
