"""Ablation studies beyond the paper's figures.

The paper presents its mechanisms cumulatively (Fig 14).  These
ablations isolate each design choice DESIGN.md calls out:

* each mechanism alone (is ATP useful without the T-policies that give
  translations their on-chip residency?);
* ATP trigger placement (L2C-only vs LLC-only vs both);
* the contribution of the new signatures vs RRPV=0 insertion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures import FigureResult, _run_grid
from repro.experiments.parallel import RunKey
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.params import DEFAULT_SCALE, EnhancementConfig, default_config
from repro.stats.report import geometric_mean
from repro.workloads.registry import benchmark_names
from repro.experiments.registry import figure

#: Single-mechanism variants (plus the full stack for reference).
ABLATION_VARIANTS: Dict[str, EnhancementConfig] = {
    "t_drrip_only": EnhancementConfig(t_drrip=True),
    "t_ship_only": EnhancementConfig(t_ship=True, newsign=True),
    "newsign_only": EnhancementConfig(newsign=True),
    "atp_only": EnhancementConfig(atp=True),
    "tempo_only": EnhancementConfig(tempo=True),
    "full": EnhancementConfig.full(),
}


@figure("ablation", paper=False)
def single_mechanism_ablation(benchmarks: Optional[Sequence[str]] = None,
                              instructions: int = DEFAULT_INSTRUCTIONS,
                              warmup: int = DEFAULT_WARMUP,
                              scale: int = DEFAULT_SCALE) -> FigureResult:
    """Speedup of each mechanism alone vs the shared baseline."""
    names = list(benchmarks) if benchmarks else benchmark_names()
    specs = {(name, "base"): RunKey.make(name, None, instructions, warmup,
                                         scale)
             for name in names}
    for name in names:
        for label, enh in ABLATION_VARIANTS.items():
            cfg = default_config(scale).with_(enhancements=enh)
            specs[(name, label)] = RunKey.make(name, cfg, instructions,
                                               warmup, scale)
    runs = _run_grid(specs)
    rows, data = [], {}
    speedups: Dict[str, List[float]] = {v: [] for v in ABLATION_VARIANTS}
    for name in names:
        row = [name]
        data[name] = {}
        for label in ABLATION_VARIANTS:
            sp = runs[(name, label)].speedup_over(runs[(name, "base")])
            row.append(sp)
            data[name][label] = sp
            speedups[label].append(sp)
        rows.append(row)
    gmean_row = ["gmean"] + [geometric_mean(speedups[v])
                             for v in ABLATION_VARIANTS]
    rows.append(gmean_row)
    data["gmean"] = dict(zip(ABLATION_VARIANTS, gmean_row[1:]))
    return FigureResult("Ablation", "Single-mechanism speedups",
                        ["benchmark"] + list(ABLATION_VARIANTS), rows, data)


@figure("atp_placement", paper=False)
def atp_trigger_placement(benchmarks: Optional[Sequence[str]] = None,
                          instructions: int = DEFAULT_INSTRUCTIONS,
                          warmup: int = DEFAULT_WARMUP,
                          scale: int = DEFAULT_SCALE) -> FigureResult:
    """Where do ATP triggers fire, and what does each level contribute?

    Reports, per benchmark, the L2C vs LLC trigger counts of the full
    configuration -- the paper notes the LLC contribution grows with LLC
    size (Fig 21 discussion).
    """
    names = list(benchmarks) if benchmarks else benchmark_names()
    cfg = default_config(scale).with_(
        enhancements=EnhancementConfig.full())
    runs = _run_grid({name: RunKey.make(name, cfg, instructions, warmup,
                                        scale)
                      for name in names})
    rows, data = [], {}
    for name in names:
        run = runs[name]
        total = max(1, run.atp_triggered + run.tempo_triggered)
        rows.append([name, run.atp_triggered_l2c, run.atp_triggered_llc,
                     run.tempo_triggered, run.atp_triggered_l2c / total])
        data[name] = {"l2c": run.atp_triggered_l2c,
                      "llc": run.atp_triggered_llc,
                      "tempo": run.tempo_triggered}
    return FigureResult(
        "Ablation", "Replay-prefetch trigger placement (full config)",
        ["benchmark", "ATP @ L2C", "ATP @ LLC", "TEMPO @ DRAM",
         "L2C share"], rows, data)
