"""One function per data figure/table of the paper.

Each function returns a :class:`FigureResult` whose ``rows``/``headers``
regenerate the figure's series, and whose ``data`` dict holds the raw
values for programmatic checks.  ``str(result)`` renders the ASCII table.

All functions accept ``instructions``/``warmup``/``scale`` so tests can use
tiny runs and full regenerations can use longer ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.rob import StallCategory
from repro.experiments.parallel import RunKey, RunSummary, run_many
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.params import (DEFAULT_SCALE, EnhancementConfig, IdealConfig,
                          SimConfig, default_config)
from repro.stats.recall import RECALL_BUCKETS
from repro.stats.report import format_table, geometric_mean
from repro.workloads.registry import TABLE2_REFERENCE, benchmark_names
from repro.experiments.registry import figure


@dataclass
class FigureResult:
    """A regenerated figure/table."""

    figure: str
    title: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)
    data: Dict = field(default_factory=dict)

    def __str__(self) -> str:
        return format_table(f"[{self.figure}] {self.title}",
                            self.headers, self.rows)

    def to_dict(self) -> Dict:
        """JSON-serializable form (for downstream plotting/archiving)."""
        return {"figure": self.figure, "title": self.title,
                "headers": list(self.headers),
                "rows": [list(r) for r in self.rows], "data": self.data}

    def save_json(self, path) -> None:
        """Write the result to ``path`` as JSON."""
        import json
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=2, default=str)

    def chart(self, column: int = 1, baseline: float = 0.0) -> str:
        """ASCII bar chart of one numeric column against the row labels."""
        from repro.stats.report import bar_chart
        labels, values = [], []
        for row in self.rows:
            value = row[column] if column < len(row) else None
            if isinstance(value, (int, float)):
                labels.append(str(row[0]))
                values.append(float(value))
        return bar_chart(f"[{self.figure}] {self.headers[column]}",
                         labels, values, baseline=baseline)


def _benchmarks(benchmarks: Optional[Sequence[str]]) -> List[str]:
    return list(benchmarks) if benchmarks else benchmark_names()


def _run_all(benchmarks: Sequence[str], config: Optional[SimConfig],
             instructions: int, warmup: int, scale: int,
             seed: int = 1) -> Dict[str, RunSummary]:
    """Simulate every benchmark under one config (parallel, memoised)."""
    keys = {name: RunKey.make(name, config, instructions, warmup, scale,
                              seed)
            for name in benchmarks}
    results = run_many(keys.values())
    return {name: results[key] for name, key in keys.items()}


def _run_grid(specs: Dict) -> Dict:
    """Simulate a labelled grid of runs in one parallel batch.

    ``specs`` maps an arbitrary hashable label to a :class:`RunKey`;
    returns ``{label: RunSummary}``.  Duplicate keys (e.g. a shared
    baseline) are simulated once.
    """
    results = run_many(specs.values())
    return {label: results[key] for label, key in specs.items()}


# ----------------------------------------------------------------------
# Fig 1: head-of-ROB stall cycles per category.
# ----------------------------------------------------------------------
@figure("fig1")
def fig1_rob_stalls(benchmarks: Optional[Sequence[str]] = None,
                    instructions: int = DEFAULT_INSTRUCTIONS,
                    warmup: int = DEFAULT_WARMUP,
                    scale: int = DEFAULT_SCALE) -> FigureResult:
    """Average/max head-of-ROB stall cycles for STLB-miss translations,
    replay loads and non-replay loads (baseline DRRIP+SHiP)."""
    names = _benchmarks(benchmarks)
    runs = _run_all(names, None, instructions, warmup, scale)
    rows, data = [], {}
    for name in names:
        r = runs[name]
        row = [name,
               r.stall_avg(StallCategory.TRANSLATION),
               r.stall_max(StallCategory.TRANSLATION),
               r.stall_avg(StallCategory.REPLAY),
               r.stall_max(StallCategory.REPLAY),
               r.stall_avg(StallCategory.NON_REPLAY),
               r.stall_max(StallCategory.NON_REPLAY)]
        rows.append(row)
        data[name] = {"translation_avg": row[1], "translation_max": row[2],
                      "replay_avg": row[3], "replay_max": row[4],
                      "non_replay_avg": row[5], "non_replay_max": row[6],
                      "translation_total": r.stall_cycles(
                          StallCategory.TRANSLATION),
                      "replay_total": r.stall_cycles(StallCategory.REPLAY),
                      "non_replay_total": r.stall_cycles(
                          StallCategory.NON_REPLAY)}
    avg = ["mean"] + [sum(r[i] for r in rows) / len(rows)
                      for i in range(1, 7)]
    rows.append(avg)
    data["mean"] = {"translation_avg": avg[1], "replay_avg": avg[3],
                    "non_replay_avg": avg[5]}
    return FigureResult(
        "Fig 1", "Head-of-ROB stall cycles by request class",
        ["benchmark", "T avg", "T max", "R avg", "R max",
         "NR avg", "NR max"], rows, data)


# ----------------------------------------------------------------------
# Fig 2: ideal L2C/LLC opportunity study.
# ----------------------------------------------------------------------
_IDEAL_MODES = {
    "LLC(T)": IdealConfig(llc_translations=True),
    "LLC(R)": IdealConfig(llc_replays=True),
    "LLC(TR)": IdealConfig(llc_translations=True, llc_replays=True),
    "L2C+LLC(T)": IdealConfig(llc_translations=True, l2c_translations=True),
    "L2C+LLC(R)": IdealConfig(llc_replays=True, l2c_replays=True),
    "L2C+LLC(TR)": IdealConfig(llc_translations=True, llc_replays=True,
                               l2c_translations=True, l2c_replays=True),
}


@figure("fig2")
def fig2_ideal(benchmarks: Optional[Sequence[str]] = None,
               instructions: int = DEFAULT_INSTRUCTIONS,
               warmup: int = DEFAULT_WARMUP,
               scale: int = DEFAULT_SCALE,
               modes: Optional[Sequence[str]] = None) -> FigureResult:
    """Normalized performance with ideal caches for leaf translations (T),
    replay loads (R) and both (TR)."""
    names = _benchmarks(benchmarks)
    mode_names = list(modes) if modes else list(_IDEAL_MODES)
    specs = {(name, "base"): RunKey.make(name, None, instructions, warmup,
                                         scale)
             for name in names}
    for name in names:
        for mode in mode_names:
            cfg = default_config(scale).with_(ideal=_IDEAL_MODES[mode])
            specs[(name, mode)] = RunKey.make(name, cfg, instructions,
                                              warmup, scale)
    runs = _run_grid(specs)
    rows, data = [], {}
    speedups_by_mode: Dict[str, List[float]] = {m: [] for m in mode_names}
    for name in names:
        row = [name]
        data[name] = {}
        for mode in mode_names:
            sp = runs[(name, mode)].speedup_over(runs[(name, "base")])
            row.append(sp)
            data[name][mode] = sp
            speedups_by_mode[mode].append(sp)
        rows.append(row)
    gmean_row = ["gmean"] + [geometric_mean(speedups_by_mode[m])
                             for m in mode_names]
    rows.append(gmean_row)
    data["gmean"] = dict(zip(mode_names, gmean_row[1:]))
    return FigureResult("Fig 2", "Normalized performance with ideal caches",
                        ["benchmark"] + mode_names, rows, data)


# ----------------------------------------------------------------------
# Fig 3: which level serves leaf translations and replays.
# ----------------------------------------------------------------------
@figure("fig3")
def fig3_response_distribution(benchmarks: Optional[Sequence[str]] = None,
                               instructions: int = DEFAULT_INSTRUCTIONS,
                               warmup: int = DEFAULT_WARMUP,
                               scale: int = DEFAULT_SCALE) -> FigureResult:
    """Distribution of memory-hierarchy responses to leaf translations (T)
    and replay loads (R) after STLB misses."""
    names = _benchmarks(benchmarks)
    runs = _run_all(names, None, instructions, warmup, scale)
    rows, data = [], {}
    sums = {"T": {lvl: 0.0 for lvl in ("L1D", "L2C", "LLC", "DRAM")},
            "R": {lvl: 0.0 for lvl in ("L1D", "L2C", "LLC", "DRAM")}}
    for name in names:
        t = runs[name].response_fractions("translation")
        r = runs[name].response_fractions("replay")
        rows.append([name, t["L1D"], t["L2C"], t["LLC"], t["DRAM"],
                     r["L1D"], r["L2C"], r["LLC"], r["DRAM"]])
        data[name] = {"translation": t, "replay": r}
        for lvl in sums["T"]:
            sums["T"][lvl] += t[lvl]
            sums["R"][lvl] += r[lvl]
    n = len(names)
    mean = ["mean"] + [sums["T"][l] / n for l in ("L1D", "L2C", "LLC", "DRAM")] \
        + [sums["R"][l] / n for l in ("L1D", "L2C", "LLC", "DRAM")]
    rows.append(mean)
    data["mean"] = {"translation": dict(zip(("L1D", "L2C", "LLC", "DRAM"),
                                            mean[1:5])),
                    "replay": dict(zip(("L1D", "L2C", "LLC", "DRAM"),
                                       mean[5:9]))}
    return FigureResult(
        "Fig 3", "Response level for leaf translations (T) and replays (R)",
        ["benchmark", "T:L1D", "T:L2C", "T:LLC", "T:DRAM",
         "R:L1D", "R:L2C", "R:LLC", "R:DRAM"], rows, data)


# ----------------------------------------------------------------------
# Figs 4 / 6: per-policy MPKI at the LLC.
# ----------------------------------------------------------------------
_POLICY_SWEEP = ("lru", "srrip", "drrip", "ship", "hawkeye")


def _policy_mpki_figure(figure: str, title: str, metric: str,
                        benchmarks: Optional[Sequence[str]],
                        instructions: int, warmup: int, scale: int,
                        policies: Sequence[str]) -> FigureResult:
    names = _benchmarks(benchmarks)
    specs = {}
    for name in names:
        for policy in policies:
            cfg = default_config(scale)
            cfg = cfg.with_(llc=cfg.llc.scaled(1))
            cfg.llc.replacement = policy
            specs[(name, policy)] = RunKey.make(name, cfg, instructions,
                                                warmup, scale)
    runs = _run_grid(specs)
    rows, data = [], {}
    totals = {p: 0.0 for p in policies}
    for name in names:
        row = [name]
        data[name] = {}
        for policy in policies:
            run = runs[(name, policy)]
            mpki = (run.leaf_mpki("llc") if metric == "ptl1"
                    else run.cache_mpki("llc", metric))
            row.append(mpki)
            data[name][policy] = mpki
            totals[policy] += mpki
        rows.append(row)
    rows.append(["mean"] + [totals[p] / len(names) for p in policies])
    data["mean"] = {p: totals[p] / len(names) for p in policies}
    return FigureResult(figure, title, ["benchmark"] + list(policies),
                        rows, data)


@figure("fig4")
def fig4_translation_mpki(benchmarks: Optional[Sequence[str]] = None,
                          instructions: int = DEFAULT_INSTRUCTIONS,
                          warmup: int = DEFAULT_WARMUP,
                          scale: int = DEFAULT_SCALE,
                          policies: Sequence[str] = _POLICY_SWEEP
                          ) -> FigureResult:
    """Leaf-level translation MPKI at the LLC per replacement policy."""
    return _policy_mpki_figure(
        "Fig 4", "Leaf-translation MPKI at LLC by replacement policy",
        "ptl1", benchmarks, instructions, warmup, scale, policies)


@figure("fig6")
def fig6_replay_mpki(benchmarks: Optional[Sequence[str]] = None,
                     instructions: int = DEFAULT_INSTRUCTIONS,
                     warmup: int = DEFAULT_WARMUP,
                     scale: int = DEFAULT_SCALE,
                     policies: Sequence[str] = _POLICY_SWEEP
                     ) -> FigureResult:
    """Replay-load MPKI at the LLC per replacement policy (all ~equal:
    replay blocks are dead and no policy can keep them)."""
    return _policy_mpki_figure(
        "Fig 6", "Replay-load MPKI at LLC by replacement policy",
        "replay", benchmarks, instructions, warmup, scale, policies)


# ----------------------------------------------------------------------
# Figs 5 / 7 / 18: recall-distance histograms.
# ----------------------------------------------------------------------
def _recall_figure(figure: str, title: str, kind: str,
                   benchmarks: Optional[Sequence[str]],
                   instructions: int, warmup: int,
                   scale: int) -> FigureResult:
    names = _benchmarks(benchmarks)
    runs = _run_all(names, None, instructions, warmup, scale)
    bucket_labels = [f"<={b}" for b in RECALL_BUCKETS] + [">50"]
    rows, data = [], {}
    for name in names:
        if kind == "stlb":
            trackers = {"STLB": runs[name].recall_data("stlb")}
        else:
            trackers = {"LLC": runs[name].recall_data("llc", kind),
                        "L2C": runs[name].recall_data("l2c", kind)}
        data[name] = {}
        for where, tracked in trackers.items():
            cdf = tracked["cdf"]
            rows.append([name, where] + cdf)
            data[name][where] = {"cdf": cdf, "samples": tracked["samples"]}
    return FigureResult(figure, title, ["benchmark", "at"] + bucket_labels,
                        rows, data)


@figure("fig5")
def fig5_recall_translations(benchmarks: Optional[Sequence[str]] = None,
                             instructions: int = DEFAULT_INSTRUCTIONS,
                             warmup: int = DEFAULT_WARMUP,
                             scale: int = DEFAULT_SCALE) -> FigureResult:
    """Recall-distance CDF of leaf translations at LLC and L2C."""
    return _recall_figure("Fig 5",
                          "Recall distance of leaf translations (CDF)",
                          "translation", benchmarks, instructions, warmup,
                          scale)


@figure("fig7")
def fig7_recall_replays(benchmarks: Optional[Sequence[str]] = None,
                        instructions: int = DEFAULT_INSTRUCTIONS,
                        warmup: int = DEFAULT_WARMUP,
                        scale: int = DEFAULT_SCALE) -> FigureResult:
    """Recall-distance CDF of replay loads at LLC and L2C (mostly >50:
    replay blocks are dead)."""
    return _recall_figure("Fig 7", "Recall distance of replay loads (CDF)",
                          "replay", benchmarks, instructions, warmup, scale)


@figure("fig18")
def fig18_stlb_recall(benchmarks: Optional[Sequence[str]] = None,
                      instructions: int = DEFAULT_INSTRUCTIONS,
                      warmup: int = DEFAULT_WARMUP,
                      scale: int = DEFAULT_SCALE) -> FigureResult:
    """Recall distance of translations at the STLB (Section V-B)."""
    return _recall_figure("Fig 18", "Recall distance at the STLB (CDF)",
                          "stlb", benchmarks, instructions, warmup, scale)


# ----------------------------------------------------------------------
# Fig 8: prefetchers cannot cover replay loads.
# ----------------------------------------------------------------------
@figure("fig8")
def fig8_prefetcher_replay_mpki(benchmarks: Optional[Sequence[str]] = None,
                                instructions: int = DEFAULT_INSTRUCTIONS,
                                warmup: int = DEFAULT_WARMUP,
                                scale: int = DEFAULT_SCALE,
                                prefetchers: Sequence[str] = (
                                    "none", "ipcp", "spp", "bingo", "isb")
                                ) -> FigureResult:
    """LLC replay-load MPKI with and without data prefetchers."""
    names = _benchmarks(benchmarks)
    specs = {}
    for name in names:
        for pf in prefetchers:
            cfg = default_config(scale)
            if pf == "ipcp":
                cfg = cfg.with_(l1d_prefetcher="ipcp")
            elif pf != "none":
                cfg = cfg.with_(l2c_prefetcher=pf)
            specs[(name, pf)] = RunKey.make(name, cfg, instructions,
                                            warmup, scale)
    runs = _run_grid(specs)
    rows, data = [], {}
    totals = {p: 0.0 for p in prefetchers}
    for name in names:
        row = [name]
        data[name] = {}
        for pf in prefetchers:
            mpki = runs[(name, pf)].cache_mpki("llc", "replay")
            row.append(mpki)
            data[name][pf] = mpki
            totals[pf] += mpki
        rows.append(row)
    rows.append(["mean"] + [totals[p] / len(names) for p in prefetchers])
    data["mean"] = {p: totals[p] / len(names) for p in prefetchers}
    return FigureResult("Fig 8", "LLC replay MPKI with prefetchers",
                        ["benchmark"] + list(prefetchers), rows, data)


# ----------------------------------------------------------------------
# Fig 10: the replay-at-RRPV0 misconfiguration degrades performance.
# ----------------------------------------------------------------------
@figure("fig10")
def fig10_replay_rrpv0_degradation(benchmarks: Optional[Sequence[str]] = None,
                                   instructions: int = DEFAULT_INSTRUCTIONS,
                                   warmup: int = DEFAULT_WARMUP,
                                   scale: int = DEFAULT_SCALE
                                   ) -> FigureResult:
    """Performance when both translations AND replays insert at RRPV=0
    (normalized to baseline; the paper shows degradation)."""
    names = _benchmarks(benchmarks)
    cfg = default_config(scale).with_(
        enhancements=EnhancementConfig(t_drrip=True, t_ship=True,
                                       newsign=True,
                                       replay_rrpv0=True))
    specs = {}
    for name in names:
        specs[(name, "base")] = RunKey.make(name, None, instructions,
                                            warmup, scale)
        specs[(name, "rrpv0")] = RunKey.make(name, cfg, instructions,
                                             warmup, scale)
    runs = _run_grid(specs)
    rows, data = [], {}
    speedups = []
    for name in names:
        sp = runs[(name, "rrpv0")].speedup_over(runs[(name, "base")])
        rows.append([name, sp])
        data[name] = sp
        speedups.append(sp)
    g = geometric_mean(speedups)
    rows.append(["gmean", g])
    data["gmean"] = g
    return FigureResult(
        "Fig 10", "Normalized perf with replays inserted at RRPV=0",
        ["benchmark", "norm perf"], rows, data)


# ----------------------------------------------------------------------
# Fig 12: LLC translation MPKI with the enhancements.
# ----------------------------------------------------------------------
@figure("fig12")
def fig12_newsign_mpki(benchmarks: Optional[Sequence[str]] = None,
                       instructions: int = DEFAULT_INSTRUCTIONS,
                       warmup: int = DEFAULT_WARMUP,
                       scale: int = DEFAULT_SCALE) -> FigureResult:
    """Leaf-translation MPKI at LLC: baseline SHiP vs new signatures only
    vs full T-SHiP."""
    names = _benchmarks(benchmarks)
    variants = {
        "ship": EnhancementConfig.none(),
        "newsign": EnhancementConfig(newsign=True),
        "t_ship": EnhancementConfig(t_drrip=True, t_ship=True,
                                    newsign=True),
    }
    specs = {}
    for name in names:
        for label, enh in variants.items():
            cfg = default_config(scale).with_(enhancements=enh)
            specs[(name, label)] = RunKey.make(name, cfg, instructions,
                                               warmup, scale)
    runs = _run_grid(specs)
    rows, data = [], {}
    totals = {v: 0.0 for v in variants}
    for name in names:
        row = [name]
        data[name] = {}
        for label in variants:
            mpki = runs[(name, label)].leaf_mpki("llc")
            row.append(mpki)
            data[name][label] = mpki
            totals[label] += mpki
        rows.append(row)
    rows.append(["mean"] + [totals[v] / len(names) for v in variants])
    data["mean"] = {v: totals[v] / len(names) for v in variants}
    return FigureResult(
        "Fig 12", "Leaf-translation MPKI at LLC with enhancements",
        ["benchmark"] + list(variants), rows, data)


# ----------------------------------------------------------------------
# Fig 14: cumulative performance of the proposals.
# ----------------------------------------------------------------------
FIG14_VARIANTS = {
    "T-DRRIP": EnhancementConfig(t_drrip=True),
    "+T-SHiP": EnhancementConfig(t_drrip=True, t_ship=True,
                                 newsign=True),
    "+ATP": EnhancementConfig(t_drrip=True, t_ship=True, newsign=True,
                              atp=True),
    "+TEMPO": EnhancementConfig.full(),
}


@figure("fig14")
def fig14_performance(benchmarks: Optional[Sequence[str]] = None,
                      instructions: int = DEFAULT_INSTRUCTIONS,
                      warmup: int = DEFAULT_WARMUP,
                      scale: int = DEFAULT_SCALE,
                      base_config: Optional[SimConfig] = None
                      ) -> FigureResult:
    """Normalized performance of T-DRRIP -> +T-SHiP -> +ATP -> +TEMPO."""
    names = _benchmarks(benchmarks)
    base_cfg = base_config or default_config(scale)
    specs = {(name, "base"): RunKey.make(name, base_cfg, instructions,
                                         warmup, scale)
             for name in names}
    for name in names:
        for label, enh in FIG14_VARIANTS.items():
            cfg = base_cfg.with_(enhancements=enh)
            specs[(name, label)] = RunKey.make(name, cfg, instructions,
                                               warmup, scale)
    runs = _run_grid(specs)
    rows, data = [], {}
    speedups = {v: [] for v in FIG14_VARIANTS}
    for name in names:
        row = [name]
        data[name] = {}
        for label in FIG14_VARIANTS:
            sp = runs[(name, label)].speedup_over(runs[(name, "base")])
            row.append(sp)
            data[name][label] = sp
            speedups[label].append(sp)
        rows.append(row)
    gmean_row = ["gmean"] + [geometric_mean(speedups[v])
                             for v in FIG14_VARIANTS]
    rows.append(gmean_row)
    data["gmean"] = dict(zip(FIG14_VARIANTS, gmean_row[1:]))
    return FigureResult("Fig 14", "Normalized performance of enhancements",
                        ["benchmark"] + list(FIG14_VARIANTS), rows, data)


# ----------------------------------------------------------------------
# Fig 15: enhancements on top of data prefetchers.
# ----------------------------------------------------------------------
@figure("fig15")
def fig15_with_prefetchers(benchmarks: Optional[Sequence[str]] = None,
                           instructions: int = DEFAULT_INSTRUCTIONS,
                           warmup: int = DEFAULT_WARMUP,
                           scale: int = DEFAULT_SCALE,
                           prefetchers: Sequence[str] = (
                               "ipcp", "bingo", "spp", "isb")
                           ) -> FigureResult:
    """Normalized performance of the full enhancement stack on top of each
    prefetcher baseline."""
    names = _benchmarks(benchmarks)
    specs = {}
    for name in names:
        for pf in prefetchers:
            cfg = default_config(scale)
            if pf == "ipcp":
                cfg = cfg.with_(l1d_prefetcher="ipcp")
            else:
                cfg = cfg.with_(l2c_prefetcher=pf)
            enh_cfg = cfg.with_(enhancements=EnhancementConfig.full())
            specs[(name, pf, "base")] = RunKey.make(name, cfg, instructions,
                                                    warmup, scale)
            specs[(name, pf, "enh")] = RunKey.make(name, enh_cfg,
                                                   instructions, warmup,
                                                   scale)
    runs = _run_grid(specs)
    rows, data = [], {}
    speedups = {p: [] for p in prefetchers}
    for name in names:
        row = [name]
        data[name] = {}
        for pf in prefetchers:
            sp = runs[(name, pf, "enh")].speedup_over(
                runs[(name, pf, "base")])
            row.append(sp)
            data[name][pf] = sp
            speedups[pf].append(sp)
        rows.append(row)
    gmean_row = ["gmean"] + [geometric_mean(speedups[p])
                             for p in prefetchers]
    rows.append(gmean_row)
    data["gmean"] = dict(zip(prefetchers, gmean_row[1:]))
    return FigureResult(
        "Fig 15", "Normalized perf of enhancements over prefetcher baselines",
        ["benchmark"] + list(prefetchers), rows, data)


# ----------------------------------------------------------------------
# Fig 16: reduction in ROB stall cycles.
# ----------------------------------------------------------------------
@figure("fig16")
def fig16_stall_reduction(benchmarks: Optional[Sequence[str]] = None,
                          instructions: int = DEFAULT_INSTRUCTIONS,
                          warmup: int = DEFAULT_WARMUP,
                          scale: int = DEFAULT_SCALE) -> FigureResult:
    """Reduction in head-of-ROB stall cycles due to STLB misses and replay
    requests with the full enhancement stack."""
    names = _benchmarks(benchmarks)
    cfg = default_config(scale).with_(
        enhancements=EnhancementConfig.full())
    specs = {}
    for name in names:
        specs[(name, "base")] = RunKey.make(name, None, instructions,
                                            warmup, scale)
        specs[(name, "enh")] = RunKey.make(name, cfg, instructions,
                                           warmup, scale)
    runs = _run_grid(specs)
    base = {name: runs[(name, "base")] for name in names}
    enh = {name: runs[(name, "enh")] for name in names}
    rows, data = [], {}
    t_reductions, r_reductions, tr_reductions = [], [], []

    def reduction(b: int, e: int) -> float:
        return (b - e) / b if b > 0 else 0.0

    for name in names:
        bt = base[name].stall_cycles(StallCategory.TRANSLATION)
        br = base[name].stall_cycles(StallCategory.REPLAY)
        et = enh[name].stall_cycles(StallCategory.TRANSLATION)
        er = enh[name].stall_cycles(StallCategory.REPLAY)
        t_red, r_red = reduction(bt, et), reduction(br, er)
        tr_red = reduction(bt + br, et + er)
        rows.append([name, t_red, r_red, tr_red])
        data[name] = {"translation": t_red, "replay": r_red,
                      "combined": tr_red}
        t_reductions.append(t_red)
        r_reductions.append(r_red)
        tr_reductions.append(tr_red)
    n = len(names)
    rows.append(["mean", sum(t_reductions) / n, sum(r_reductions) / n,
                 sum(tr_reductions) / n])
    data["mean"] = {"translation": sum(t_reductions) / n,
                    "replay": sum(r_reductions) / n,
                    "combined": sum(tr_reductions) / n}
    return FigureResult(
        "Fig 16", "Reduction in ROB stall cycles (fractions)",
        ["benchmark", "STLB-miss stalls", "replay stalls", "combined"],
        rows, data)


# ----------------------------------------------------------------------
# Table II: benchmark characterization.
# ----------------------------------------------------------------------
@figure("table2")
def table2_characterization(benchmarks: Optional[Sequence[str]] = None,
                            instructions: int = DEFAULT_INSTRUCTIONS,
                            warmup: int = DEFAULT_WARMUP,
                            scale: int = DEFAULT_SCALE) -> FigureResult:
    """Per-benchmark STLB / L2C / LLC MPKIs (measured vs paper)."""
    names = _benchmarks(benchmarks)
    runs = _run_all(names, None, instructions, warmup, scale)
    rows, data = [], {}
    for name in names:
        s = runs[name].summary()
        ref = TABLE2_REFERENCE.get(name, {})
        rows.append([name, s["stlb_mpki"], ref.get("stlb", 0.0),
                     s["l2c_replay_mpki"], s["l2c_non_replay_mpki"],
                     s["l2c_ptl1_mpki"], s["llc_replay_mpki"],
                     s["llc_non_replay_mpki"], s["llc_ptl1_mpki"]])
        data[name] = s
    return FigureResult(
        "Table II", "Benchmark characterization (measured; paper STLB ref)",
        ["benchmark", "STLB", "STLB(paper)", "L2C R", "L2C NR", "L2C PTL1",
         "LLC R", "LLC NR", "LLC PTL1"], rows, data)
