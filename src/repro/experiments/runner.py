"""Single-benchmark simulation driver.

``run_benchmark`` is the one entry point every figure/table harness uses:
generate the trace, build the hierarchy, run the core, return a
:class:`RunResult` exposing the metrics the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.engine import make_core
from repro.core.ooo_core import CoreResult
from repro.core.rob import StallCategory
from repro.params import DEFAULT_SCALE, SimConfig, default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.registry import make_trace

#: Default ROI / warmup lengths for the reduced-scale runs.  The paper uses
#: 10B-instruction ROIs after 100M warmup; these are scaled to keep Python
#: runs in seconds while still exercising steady-state cache behaviour.
DEFAULT_INSTRUCTIONS = 120_000
DEFAULT_WARMUP = 20_000


@dataclass
class RunResult:
    """Everything the figures need from one simulation."""

    benchmark: str
    config: SimConfig = field(repr=False)
    core: CoreResult = field(repr=False)
    #: Run geometry (recorded for the observability manifest).
    seed: int = 1
    warmup: int = DEFAULT_WARMUP
    scale: int = DEFAULT_SCALE
    #: Attached only on observed runs (``sample_interval=...``).
    sampler: Optional[object] = field(repr=False, default=None)
    profiler: Optional[object] = field(repr=False, default=None)
    #: Attached only on traced runs (``trace_sample=...``).
    tracer: Optional[object] = field(repr=False, default=None)
    #: Vectorization engagement/fallback accounting
    #: (:class:`repro.core.fallback.BatchStats`); ``None`` on scalar
    #: (``backend="python"``) runs.
    batch: Optional[object] = field(repr=False, default=None)

    # -- headline metrics ------------------------------------------------
    @property
    def cycles(self) -> int:
        return self.core.cycles

    @property
    def ipc(self) -> float:
        return self.core.ipc

    @property
    def instructions(self) -> int:
        return self.core.instructions

    def speedup_over(self, baseline: "RunResult") -> float:
        return baseline.cycles / self.cycles

    # -- memory-system metrics -------------------------------------------
    @property
    def hierarchy(self) -> MemoryHierarchy:
        return self.core.hierarchy

    @property
    def stlb_mpki(self) -> float:
        return self.hierarchy.mmu.stlb.mpki(self.instructions)

    def cache_mpki(self, level: str, category: str) -> float:
        cache = getattr(self.hierarchy, level)
        return cache.stats.mpki(category, self.instructions)

    def leaf_mpki(self, level: str) -> float:
        cache = getattr(self.hierarchy, level)
        return cache.stats.leaf_mpki(self.instructions)

    # -- stall metrics -----------------------------------------------------
    def stall_cycles(self, category: StallCategory) -> int:
        return self.core.stalls.total(category)

    def stall_avg(self, category: StallCategory) -> float:
        return self.core.stalls.avg(category)

    def stall_max(self, category: StallCategory) -> int:
        return self.core.stalls.max(category)

    def translation_replay_stalls(self) -> int:
        return self.core.stalls.translation_plus_replay()

    def summary(self) -> Dict[str, float]:
        return {
            "ipc": self.ipc,
            "cycles": self.cycles,
            "stlb_mpki": self.stlb_mpki,
            "l2c_replay_mpki": self.cache_mpki("l2c", "replay"),
            "l2c_non_replay_mpki": self.cache_mpki("l2c", "non_replay"),
            "l2c_ptl1_mpki": self.leaf_mpki("l2c"),
            "llc_replay_mpki": self.cache_mpki("llc", "replay"),
            "llc_non_replay_mpki": self.cache_mpki("llc", "non_replay"),
            "llc_ptl1_mpki": self.leaf_mpki("llc"),
            "stall_translation": self.stall_cycles(StallCategory.TRANSLATION),
            "stall_replay": self.stall_cycles(StallCategory.REPLAY),
            "stall_non_replay": self.stall_cycles(StallCategory.NON_REPLAY),
        }

    # -- observability ---------------------------------------------------
    @property
    def intervals(self) -> list:
        """Interval time-series (empty unless the run was observed)."""
        return self.sampler.intervals if self.sampler is not None else []

    def metrics_document(self) -> Dict:
        """The run's ``repro.obs/v1`` export (manifest + intervals +
        summary).  Valid for unobserved runs too -- the time-series is
        just empty."""
        from repro.obs import build_manifest, run_document
        manifest = build_manifest(
            self.benchmark, self.config, instructions=self.instructions,
            warmup=self.warmup, scale=self.scale, seed=self.seed,
            sample_interval=self.sampler.interval if self.sampler else None,
            hierarchy=self.hierarchy, result=self.core,
            profiler=self.profiler)
        return run_document(manifest, self.intervals, self.summary())

    def export_metrics(self, path) -> Dict:
        """Write the run's metrics export as JSON; returns the document."""
        from repro.obs import export_json, validate_strict
        doc = validate_strict(self.metrics_document())
        export_json(path, doc)
        return doc

    def trace_document(self) -> Dict:
        """The run's ``repro.obs/trace-v1`` export (manifest + spans).

        Only valid for traced runs (``trace_sample=...``)."""
        if self.tracer is None:
            raise ValueError(
                "run was not traced; pass trace_sample= to run_benchmark")
        from repro.obs import build_manifest
        from repro.obs.trace import trace_document
        manifest = build_manifest(
            self.benchmark, self.config, instructions=self.instructions,
            warmup=self.warmup, scale=self.scale, seed=self.seed,
            sample_interval=self.sampler.interval if self.sampler else None,
            hierarchy=self.hierarchy, result=self.core,
            profiler=self.profiler)
        return trace_document(manifest, self.tracer)

    def export_trace(self, path) -> Dict:
        """Write the run's span trace as JSON; returns the document."""
        from repro.obs.trace import export_trace
        return export_trace(path, self.trace_document())


@dataclass
class MultiSeedResult:
    """Aggregate of one benchmark simulated under several trace seeds."""

    benchmark: str
    runs: list = field(repr=False, default_factory=list)

    @property
    def cycles_mean(self) -> float:
        return sum(r.cycles for r in self.runs) / len(self.runs)

    @property
    def cycles_spread(self) -> float:
        """Relative spread (max-min)/mean -- a noise estimate."""
        cycles = [r.cycles for r in self.runs]
        return (max(cycles) - min(cycles)) / self.cycles_mean

    @property
    def stlb_mpki_mean(self) -> float:
        return sum(r.stlb_mpki for r in self.runs) / len(self.runs)

    def speedup_over(self, baseline: "MultiSeedResult") -> float:
        """Mean-cycles speedup (seeds are paired by construction)."""
        return baseline.cycles_mean / self.cycles_mean


def run_benchmark_multi(name: str, seeds,
                        config: Optional[SimConfig] = None,
                        instructions: int = DEFAULT_INSTRUCTIONS,
                        warmup: int = DEFAULT_WARMUP,
                        scale: int = DEFAULT_SCALE) -> MultiSeedResult:
    """Simulate one benchmark under several trace seeds.

    Reduced-scale single runs carry sampling noise; aggregating over
    seeds separates mechanism effects from trace luck."""
    runs = [run_benchmark(name, config=config, instructions=instructions,
                          warmup=warmup, scale=scale, seed=seed)
            for seed in seeds]
    if not runs:
        raise ValueError("need at least one seed")
    return MultiSeedResult(benchmark=name, runs=runs)


def _phase(profiler, name: str):
    """``profiler.phase(name)`` or a no-op scope when unobserved."""
    if profiler is None:
        from contextlib import nullcontext
        return nullcontext()
    return profiler.phase(name)


def run_benchmark(name: str, config: Optional[SimConfig] = None,
                  instructions: int = DEFAULT_INSTRUCTIONS,
                  warmup: int = DEFAULT_WARMUP,
                  scale: int = DEFAULT_SCALE, seed: int = 1,
                  sample_interval: Optional[int] = None,
                  profiler=None,
                  trace_sample: Optional[int] = None,
                  progress=None) -> RunResult:
    """Simulate one benchmark under one configuration.

    ``sample_interval`` attaches an interval metrics sampler (see
    :mod:`repro.obs`): every N retired ROI instructions the hierarchy is
    snapshotted into ``result.intervals``.  ``profiler`` (a
    :class:`repro.obs.Profiler`) attributes wall-clock time to the
    trace/build/simulate phases.  ``trace_sample`` attaches a 1-in-N
    request span tracer (see :mod:`repro.obs.trace`); the trace covers
    the post-warmup ROI only.  ``progress`` (a
    :class:`repro.obs.ProgressForwarder`) forwards a condensed row per
    interval to the sweep service -- purely observational; the sampler
    it implies runs at ``sample_interval`` when both are given, else at
    the forwarder's own interval.  All default to off and then cost
    nothing -- the same is-None-guard pattern :mod:`repro.validate` uses.
    """
    cfg = config or default_config(scale)
    with _phase(profiler, "trace"):
        trace = make_trace(name, instructions + warmup, scale=scale,
                           seed=seed)
    with _phase(profiler, "build"):
        hierarchy = MemoryHierarchy(cfg)
        core = make_core(cfg, hierarchy)
    sampler = None
    if progress is not None:
        from repro.obs import ForwardingSampler
        sampler = ForwardingSampler(
            hierarchy, sample_interval or progress.interval,
            forwarder=progress)
        hierarchy.sampler = sampler
    elif sample_interval is not None:
        from repro.obs import IntervalSampler
        sampler = IntervalSampler(hierarchy, sample_interval)
        hierarchy.sampler = sampler
    tracer = None
    if trace_sample is not None:
        from repro.obs.trace import SpanTracer, attach
        # Disabled through warmup; the core enables it at the ROI
        # boundary (mirroring sampler.begin).
        tracer = SpanTracer(sample_every=trace_sample, enabled=False)
        attach(hierarchy, tracer)
    with _phase(profiler, "simulate"):
        result = core.run(trace, warmup=warmup)
    if hierarchy.checker is not None:
        # End-of-run exhaustive sweep (strict mode raises on violation).
        hierarchy.checker.final_check()
    return RunResult(benchmark=name, config=cfg, core=result, seed=seed,
                     warmup=warmup, scale=scale, sampler=sampler,
                     profiler=profiler, tracer=tracer,
                     batch=getattr(core, "batch_stats", None))
