"""ATP scope analysis (quantifying Fig 13's timeline).

ATP's benefit per replay load equals the head start its prefetch gets
over the replay demand: the translation-response climb back to the
core, the TLB fills, the load-queue re-issue, and the demand's descent
back to the trigger level.  This analysis measures, per benchmark:

* the distribution of walk-hit levels (the trigger opportunities);
* the mean replay data latency with and without ATP -- whose difference
  is the realized head start;
* the fraction of replay loads that found their line in flight or
  resident at the trigger level.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.ooo_core import OOOCore
from repro.experiments.figures import FigureResult
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.params import DEFAULT_SCALE, EnhancementConfig, default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.registry import benchmark_names, make_trace
from repro.experiments.registry import figure


class _ReplayLatencyProbe:
    """Wraps MemoryHierarchy.load to accumulate replay data latencies."""

    def __init__(self, hierarchy: MemoryHierarchy):
        self.hierarchy = hierarchy
        self.total_latency = 0
        self.count = 0
        self.served: Dict[str, int] = {}
        self._original = hierarchy.load

    def __enter__(self) -> "_ReplayLatencyProbe":
        probe = self

        def probed_load(va, cycle, ip=0):
            res = probe._original(va, cycle, ip)
            if res.is_replay:
                probe.total_latency += res.data_done - res.translation_done
                probe.count += 1
                probe.served[res.data_served_by] = \
                    probe.served.get(res.data_served_by, 0) + 1
            return res

        self.hierarchy.load = probed_load
        return self

    def __exit__(self, *exc) -> None:
        self.hierarchy.load = self._original

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.count if self.count else 0.0


def _measure(name: str, enh: EnhancementConfig, instructions: int,
             warmup: int, scale: int):
    cfg = default_config(scale).with_(enhancements=enh)
    hierarchy = MemoryHierarchy(cfg)
    trace = make_trace(name, instructions + warmup, scale=scale)
    with _ReplayLatencyProbe(hierarchy) as probe:
        OOOCore(cfg, hierarchy).run(trace, warmup=warmup)
        return probe.mean_latency, dict(probe.served), hierarchy


@figure("atp_scope", paper=False)
def atp_scope(benchmarks: Optional[Sequence[str]] = None,
              instructions: int = DEFAULT_INSTRUCTIONS,
              warmup: int = DEFAULT_WARMUP,
              scale: int = DEFAULT_SCALE) -> FigureResult:
    """Realized ATP head start per benchmark (cycles per replay load)."""
    names = list(benchmarks) if benchmarks else benchmark_names()
    t_stack = EnhancementConfig(t_drrip=True, t_ship=True,
                                newsign=True)
    with_atp = EnhancementConfig(t_drrip=True, t_ship=True,
                                 newsign=True, atp=True)
    rows: List[List] = []
    data: Dict = {}
    for name in names:
        base_lat, _, _ = _measure(name, t_stack, instructions, warmup,
                                  scale)
        atp_lat, served, hierarchy = _measure(name, with_atp, instructions,
                                              warmup, scale)
        covered = served.get("L2C", 0) + served.get("LLC", 0)
        total_replays = sum(served.values())
        coverage = covered / total_replays if total_replays else 0.0
        head_start = base_lat - atp_lat
        rows.append([name, base_lat, atp_lat, head_start, coverage,
                     hierarchy.atp.triggered])
        data[name] = {"base_latency": base_lat, "atp_latency": atp_lat,
                      "head_start": head_start, "coverage": coverage,
                      "triggers": hierarchy.atp.triggered}
    return FigureResult(
        "ATP scope", "Replay data latency with/without ATP (Fig 13)",
        ["benchmark", "latency (T-stack)", "latency (+ATP)",
         "head start", "on-chip coverage", "triggers"], rows, data)
