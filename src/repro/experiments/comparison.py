"""Section V-B: comparison with recent prior works.

* **CbPred/DpPred** (HPCA'21): bypassing dead pages at the STLB and dead
  blocks at the LLC.  Paper: the proposed enhancements beat CbPred by
  3.1% on average -- bypassing dead entries frees capacity but neither
  keeps the short-recall translations nor covers replay loads.
* **CSALT** (MICRO'17): dynamic translation/data partitioning at the
  LLC.  Paper: ~1% over an enhanced SHiP baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures import FigureResult
from repro.experiments.runner import (DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP,
                                      run_benchmark)
from repro.params import DEFAULT_SCALE, EnhancementConfig, default_config
from repro.stats.report import geometric_mean
from repro.workloads.registry import benchmark_names
from repro.experiments.registry import figure

#: Configurations compared in Section V-B, all normalized to the shared
#: DRRIP+SHiP baseline.
COMPARISON_VARIANTS = ("cbpred", "csalt", "proposed")


@figure("comparison", paper=False)
def prior_work_comparison(benchmarks: Optional[Sequence[str]] = None,
                          instructions: int = DEFAULT_INSTRUCTIONS,
                          warmup: int = DEFAULT_WARMUP,
                          scale: int = DEFAULT_SCALE) -> FigureResult:
    """Speedup of CbPred, CSALT and the paper's proposal vs baseline."""
    names = list(benchmarks) if benchmarks else benchmark_names()
    base = {name: run_benchmark(name, instructions=instructions,
                                warmup=warmup, scale=scale)
            for name in names}
    rows: List[List] = []
    data: Dict = {}
    speedups: Dict[str, List[float]] = {v: [] for v in COMPARISON_VARIANTS}
    for name in names:
        row = [name]
        data[name] = {}
        for variant in COMPARISON_VARIANTS:
            if variant == "proposed":
                cfg = default_config(scale).with_(
                    enhancements=EnhancementConfig.full())
            else:
                cfg = default_config(scale).with_(comparison=variant)
            run = run_benchmark(name, config=cfg, instructions=instructions,
                                warmup=warmup, scale=scale)
            sp = run.speedup_over(base[name])
            row.append(sp)
            data[name][variant] = sp
            speedups[variant].append(sp)
        rows.append(row)
    gmean_row = ["gmean"] + [geometric_mean(speedups[v])
                             for v in COMPARISON_VARIANTS]
    rows.append(gmean_row)
    data["gmean"] = dict(zip(COMPARISON_VARIANTS, gmean_row[1:]))
    return FigureResult("Sec V-B", "Comparison with prior works",
                        ["benchmark"] + list(COMPARISON_VARIANTS),
                        rows, data)
