"""Parallel, memoised experiment execution.

The figure/table harnesses are fleets of independent ``(benchmark,
config, seed)`` simulations -- exactly how ChampSim evaluations are run
on real clusters.  This module gives the Python reproduction the same
treatment:

* :class:`RunKey` -- the identity of one simulation (benchmark,
  config fingerprint, seed, instructions, warmup, scale).
* :class:`RunSummary` -- a picklable, JSON-serialisable snapshot of
  everything the figures consume from a run (a live
  :class:`~repro.experiments.runner.RunResult` holds ``Cache`` /
  ``OOOCore`` objects and cannot cross process boundaries).
* :class:`ResultCache` -- an on-disk JSON memo of completed runs,
  versioned by a schema number and invalidated by a fingerprint of the
  simulator's source code (and, per key, by the config hash).
* :class:`ParallelRunner` -- fans batches of :class:`RunKey` out over a
  ``ProcessPoolExecutor`` with per-job timeout, retry-once-on-failure
  and progress/metrics reporting.

The module-level :func:`run_many` / :func:`run_one` helpers route
through a process-wide runner configured by :func:`configure` (the CLI's
``--jobs`` / ``--no-cache`` flags land there); the default is serial,
uncached execution -- bit-identical to calling
:func:`~repro.experiments.runner.run_benchmark` directly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.rob import StallCategory
from repro.experiments.runner import (DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP,
                                      RunResult, run_benchmark)
from repro.params import DEFAULT_SCALE, SimConfig, default_config

#: Bump when the RunSummary layout changes (invalidates every cache dir).
CACHE_SCHEMA_VERSION = 1

_RECALL_KINDS = ("translation", "replay")
_PREFETCH_LEVELS = ("l1d", "l2c", "llc")


# ----------------------------------------------------------------------
# Run identity
# ----------------------------------------------------------------------
def config_digest(config: SimConfig) -> str:
    """Stable hash of a simulation configuration."""
    blob = json.dumps(dataclasses.asdict(config), sort_keys=True,
                      default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True, eq=False)
class RunKey:
    """Identity of one simulation (hash/eq use the config *digest*)."""

    benchmark: str
    config: SimConfig
    seed: int = 1
    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    scale: int = DEFAULT_SCALE
    #: Scenario-document digest when ``benchmark`` names a scenario, so
    #: editing a scenario file invalidates its memoised results even
    #: though the name is unchanged.  ``None`` for plain benchmarks.
    scenario: Optional[str] = None

    @classmethod
    def make(cls, benchmark: str, config: Optional[SimConfig] = None,
             instructions: int = DEFAULT_INSTRUCTIONS,
             warmup: int = DEFAULT_WARMUP, scale: int = DEFAULT_SCALE,
             seed: int = 1) -> "RunKey":
        """Normalised constructor (``config=None`` -> the scale default)."""
        return cls(benchmark=benchmark,
                   config=config if config is not None
                   else default_config(scale),
                   seed=seed, instructions=instructions, warmup=warmup,
                   scale=scale)

    @cached_property
    def config_hash(self) -> str:
        return config_digest(self.config)

    @cached_property
    def digest(self) -> str:
        """Filename-safe identity covering every field."""
        fields = {
            "benchmark": self.benchmark, "config": self.config_hash,
            "seed": self.seed, "instructions": self.instructions,
            "warmup": self.warmup, "scale": self.scale}
        if self.scenario is not None:
            # Only present for scenario keys: plain-benchmark digests
            # (and therefore existing cache entries) are unchanged.
            fields["scenario"] = self.scenario
        blob = json.dumps(fields, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    def _identity(self):
        return (self.benchmark, self.config_hash, self.seed,
                self.instructions, self.warmup, self.scale, self.scenario)

    def __eq__(self, other) -> bool:
        return (isinstance(other, RunKey)
                and self._identity() == other._identity())

    def __hash__(self) -> int:
        return hash(self._identity())

    def __repr__(self) -> str:
        return (f"RunKey({self.benchmark!r}, cfg={self.config_hash[:8]}, "
                f"seed={self.seed}, n={self.instructions}, "
                f"w={self.warmup}, scale={self.scale})")


# ----------------------------------------------------------------------
# Picklable run snapshot
# ----------------------------------------------------------------------
@dataclass
class RunSummary:
    """Everything the figures consume from one run, as plain data.

    Mirrors the figure-facing accessors of
    :class:`~repro.experiments.runner.RunResult` (``ipc``, ``cycles``,
    ``speedup_over``, ``stall_*``, ``cache_mpki``, ...) so harnesses can
    consume either interchangeably.
    """

    benchmark: str
    seed: int
    instructions: int
    cycles: int
    #: ``RunResult.summary()`` -- the headline metric dict.
    metrics: Dict[str, float]
    #: Per-category head-of-ROB stall stats (total/events/avg/max).
    stalls: Dict[str, Dict[str, float]]
    #: Per-level, per-category MPKI plus the leaf (PTL1) MPKI.
    mpki: Dict[str, Dict[str, float]]
    #: Fig 3 response-level fractions per request class.
    response: Dict[str, Dict[str, float]]
    #: Recall-distance histograms (Figs 5/7/18): where -> kind -> data.
    recall: Dict[str, Dict[str, Dict]] = field(default_factory=dict)
    #: Per-level cache-pressure / prefetch counters.
    levels: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: ATP / TEMPO trigger counters (zero when disabled).
    atp_triggered_l2c: int = 0
    atp_triggered_llc: int = 0
    tempo_triggered: int = 0
    #: Page-walk totals (PSC sensitivity study).
    walks: int = 0
    walk_cycles_total: int = 0
    #: ``BatchStats.to_dict()`` from a ``backend="numpy"`` run
    #: (vectorization engagement / fallback accounting); empty for
    #: scalar runs.  Rides the snapshot so the sweep service can feed
    #: the batch telemetry series without holding live objects.
    batch: Dict = field(default_factory=dict)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_run(cls, run: RunResult, seed: int = 1) -> "RunSummary":
        h = run.hierarchy
        mpki = {}
        for level in ("l1d", "l2c", "llc"):
            per_cat = {cat: run.cache_mpki(level, cat)
                       for cat in ("translation", "replay", "non_replay")}
            per_cat["ptl1"] = run.leaf_mpki(level)
            mpki[level] = per_cat
        recall: Dict[str, Dict[str, Dict]] = {
            "stlb": {"translation": _tracker_data(h.mmu.stlb.recall)}}
        for level in ("l2c", "llc"):
            cache = getattr(h, level)
            recall[level] = {
                "translation": _tracker_data(cache.recall_translation),
                "replay": _tracker_data(cache.recall_replay)}
        levels = {}
        for level in _PREFETCH_LEVELS:
            cache = getattr(h, level)
            levels[level] = {
                "prefetch_useful": cache.stats.prefetch_useful,
                "prefetch_fills": cache.stats.prefetch_fills,
                "prefetches_dropped": cache.prefetches_dropped,
                "mshr_merges": cache.mshr.merges,
                "mshr_peak_occupancy": cache.mshr.peak_occupancy,
                "admission_stall_cycles": cache.mshr.admission_stall_cycles,
                "fills_bypassed": cache.fills_bypassed,
                "back_invalidations": cache.back_invalidations,
                "writebacks_issued": cache.writebacks_issued}
        atp, tempo = h.atp, h.tempo
        return cls(
            benchmark=run.benchmark, seed=seed,
            instructions=run.instructions, cycles=run.cycles,
            metrics=run.summary(),
            stalls=run.core.stalls.snapshot(),
            mpki=mpki,
            response={cat: h.response_distribution.fractions(cat)
                      for cat in ("translation", "replay", "non_replay")},
            recall=recall, levels=levels,
            atp_triggered_l2c=atp.triggered_l2c if atp else 0,
            atp_triggered_llc=atp.triggered_llc if atp else 0,
            tempo_triggered=tempo.triggered if tempo else 0,
            walks=h.mmu.walker.walks,
            walk_cycles_total=h.mmu.walk_cycles_total,
            batch=(run.batch.to_dict()
                   if getattr(run, "batch", None) is not None else {}))

    # -- RunResult-compatible accessors ----------------------------------
    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline) -> float:
        return baseline.cycles / self.cycles

    @property
    def stlb_mpki(self) -> float:
        return self.metrics["stlb_mpki"]

    def cache_mpki(self, level: str, category: str) -> float:
        return self.mpki[level][category]

    def leaf_mpki(self, level: str) -> float:
        return self.mpki[level]["ptl1"]

    def stall_cycles(self, category: StallCategory) -> int:
        return self.stalls[category.value]["total"]

    def stall_avg(self, category: StallCategory) -> float:
        return self.stalls[category.value]["avg"]

    def stall_max(self, category: StallCategory) -> int:
        return self.stalls[category.value]["max"]

    def translation_replay_stalls(self) -> int:
        return (self.stall_cycles(StallCategory.TRANSLATION)
                + self.stall_cycles(StallCategory.REPLAY))

    def summary(self) -> Dict[str, float]:
        return dict(self.metrics)

    def response_fractions(self, category: str) -> Dict[str, float]:
        return self.response[category]

    def recall_data(self, where: str, kind: str = "translation") -> Dict:
        """``{"cdf": [...], "samples": n, "histogram": [...]}`` for one
        tracker (``where`` in stlb/l2c/llc)."""
        return self.recall[where][kind]

    @property
    def atp_triggered(self) -> int:
        return self.atp_triggered_l2c + self.atp_triggered_llc

    def prefetch_useful(self, level: str) -> int:
        return self.levels[level]["prefetch_useful"]

    def prefetch_fills(self, level: str) -> int:
        return self.levels[level]["prefetch_fills"]

    @property
    def walk_latency(self) -> float:
        return self.walk_cycles_total / max(1, self.walks)

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "RunSummary":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})


def _tracker_data(tracker) -> Dict:
    """Flush a recall tracker and snapshot its histogram/CDF."""
    if tracker is None:
        return {"cdf": [], "samples": 0, "histogram": []}
    tracker.flush()
    return {"cdf": tracker.cdf(), "samples": tracker.samples,
            "histogram": list(tracker.histogram)}


# ----------------------------------------------------------------------
# On-disk result memo
# ----------------------------------------------------------------------
def code_fingerprint() -> str:
    """Hash of the simulator's source files (memoised per process).

    Any edit to ``repro``'s code invalidates every cached result: the
    cache directory embeds this fingerprint, so stale results are never
    served after a behavioural change.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(path.read_bytes())
        _CODE_FINGERPRINT = h.hexdigest()[:16]
    return _CODE_FINGERPRINT


_CODE_FINGERPRINT: Optional[str] = None

#: Default memo location (override with $REPRO_CACHE_DIR).
DEFAULT_CACHE_ROOT = "~/.cache/repro-runs"

#: Hex digits of the digest used as the fan-out subdirectory.  256
#: shards keep directory listings short when sweeps store tens of
#: thousands of results in one cache dir.
SHARD_WIDTH = 2


class ResultCache:
    """Content-addressed JSON memo of completed runs.

    Layout: ``<root>/v<schema>-<code>/<digest[:2]>/<digest>.json`` --
    every entry is addressed purely by its :class:`RunKey` digest, with
    a :data:`SHARD_WIDTH`-wide fan-out subdirectory.  Pre-sharding
    caches (flat ``<digest>.json`` files) are still read, so a warm
    cache survives the upgrade.
    """

    def __init__(self, root=None, fingerprint: Optional[str] = None):
        root = Path(root or os.environ.get("REPRO_CACHE_DIR")
                    or DEFAULT_CACHE_ROOT).expanduser()
        self.root = root
        self.fingerprint = fingerprint or code_fingerprint()
        self.dir = root / f"v{CACHE_SCHEMA_VERSION}-{self.fingerprint}"
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @staticmethod
    def _digest_of(key) -> str:
        return key.digest if isinstance(key, RunKey) else str(key)

    def path_for(self, key) -> Path:
        """Sharded path for a :class:`RunKey` or a raw digest string."""
        digest = self._digest_of(key)
        return self.dir / digest[:SHARD_WIDTH] / f"{digest}.json"

    def _read(self, key) -> Optional[Dict]:
        digest = self._digest_of(key)
        for path in (self.path_for(digest),
                     self.dir / f"{digest}.json"):  # pre-sharding layout
            try:
                with open(path) as f:
                    return json.load(f)
            except (OSError, ValueError):
                continue
        return None

    def contains(self, key) -> bool:
        """Whether a result for this key/digest is on disk (no counter
        side effects -- probes are not hits)."""
        digest = self._digest_of(key)
        return (self.path_for(digest).is_file()
                or (self.dir / f"{digest}.json").is_file())

    def get(self, key) -> Optional[RunSummary]:
        data = self._read(key)
        if data is None:
            self.misses += 1
            return None
        try:
            summary = RunSummary.from_dict(data)
        except (ValueError, TypeError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def get_raw(self, key) -> Optional[Dict]:
        """The stored JSON document, schema-agnostic (the sweep service
        stores non-``RunSummary`` payloads through the same shards)."""
        data = self._read(key)
        if data is None:
            self.misses += 1
            return None
        self.hits += 1
        return data

    def _write(self, digest: str, document: Dict) -> None:
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        with os.fdopen(fd, "w") as f:
            json.dump(document, f)
        os.replace(tmp, path)
        self.stores += 1

    def put(self, key, summary: RunSummary) -> None:
        """Atomic write (temp file + rename); IO failures are non-fatal."""
        try:
            self._write(self._digest_of(key), summary.to_dict())
        except OSError:
            pass

    def put_raw(self, key, document: Dict) -> None:
        """Store an arbitrary JSON document under a key/digest."""
        try:
            self._write(self._digest_of(key), document)
        except OSError:
            pass

    def digests(self) -> List[str]:
        """Every stored digest, sorted (shards walked, flat layout
        included)."""
        if not self.dir.is_dir():
            return []
        return sorted(p.stem for p in self.dir.glob("**/*.json"))

    def prune_stale(self) -> int:
        """Delete result dirs for other schema versions / code states."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for child in self.root.iterdir():
            if child.is_dir() and child != self.dir:
                import shutil
                shutil.rmtree(child, ignore_errors=True)
                removed += 1
        return removed


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
@dataclass
class RunnerMetrics:
    """Cumulative execution metrics (the acceptance-check surface)."""

    jobs_done: int = 0
    cache_hits: int = 0
    executed: int = 0
    retries: int = 0
    failures: int = 0
    wall_times: List[float] = field(default_factory=list)

    @property
    def total_wall_time(self) -> float:
        return sum(self.wall_times)


@dataclass
class ProgressEvent:
    """One completed job, as reported to the progress callback."""

    done: int
    total: int
    key: RunKey
    source: str  # "cache" | "run"
    wall_time: float


def _execute_key(key: RunKey):
    """Worker entry point: simulate one key (module-level: picklable)."""
    start = time.perf_counter()
    run = run_benchmark(key.benchmark, config=key.config,
                        instructions=key.instructions, warmup=key.warmup,
                        scale=key.scale, seed=key.seed)
    return RunSummary.from_run(run, seed=key.seed), time.perf_counter() - start


class ParallelRunner:
    """Executes batches of :class:`RunKey`, memoised and in parallel.

    ``jobs <= 1`` runs in-process (bit-identical to direct
    ``run_benchmark`` calls -- the simulations are deterministic, so the
    parallel path produces the same summaries, just sooner).
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 timeout: float = 600.0,
                 progress: Optional[Callable[[ProgressEvent], None]] = None):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.timeout = timeout
        self.progress = progress
        self.metrics = RunnerMetrics()

    # ------------------------------------------------------------------
    def run(self, benchmark: str, config: Optional[SimConfig] = None,
            instructions: int = DEFAULT_INSTRUCTIONS,
            warmup: int = DEFAULT_WARMUP, scale: int = DEFAULT_SCALE,
            seed: int = 1) -> RunSummary:
        """Single-run convenience wrapper over :meth:`run_batch`."""
        key = RunKey.make(benchmark, config, instructions, warmup, scale,
                          seed)
        return self.run_batch([key])[key]

    def run_batch(self, keys: Iterable[RunKey]) -> Dict[RunKey, RunSummary]:
        """Execute every unique key; returns ``{key: summary}``.

        Duplicates collapse to one simulation; memoised results are
        served from the cache without running anything.
        """
        unique = list(dict.fromkeys(keys))
        total = len(unique)
        results: Dict[RunKey, RunSummary] = {}
        pending: List[RunKey] = []
        for key in unique:
            cached = self.cache.get(key) if self.cache else None
            if cached is not None:
                results[key] = cached
                self.metrics.cache_hits += 1
                self._report(len(results), total, key, "cache", 0.0)
            else:
                pending.append(key)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                executed = self._run_pool(pending, len(results), total)
            else:
                executed = self._run_serial(pending, len(results), total)
            for key, summary in executed.items():
                results[key] = summary
                if self.cache is not None:
                    self.cache.put(key, summary)
        return results

    # ------------------------------------------------------------------
    def _record(self, key: RunKey, elapsed: float, done: int,
                total: int) -> None:
        self.metrics.executed += 1
        self.metrics.wall_times.append(elapsed)
        self._report(done, total, key, "run", elapsed)

    def _report(self, done: int, total: int, key: RunKey, source: str,
                elapsed: float) -> None:
        self.metrics.jobs_done += 1
        if self.progress is not None:
            self.progress(ProgressEvent(done=done, total=total, key=key,
                                        source=source, wall_time=elapsed))

    def _run_serial(self, pending: Sequence[RunKey], done: int,
                    total: int) -> Dict[RunKey, RunSummary]:
        out = {}
        for key in pending:
            try:
                summary, elapsed = _execute_key(key)
            except Exception:
                self.metrics.retries += 1
                try:
                    summary, elapsed = _execute_key(key)
                except Exception:
                    self.metrics.failures += 1
                    raise
            out[key] = summary
            done += 1
            self._record(key, elapsed, done, total)
        return out

    def _run_pool(self, pending: Sequence[RunKey], done: int,
                  total: int) -> Dict[RunKey, RunSummary]:
        out = {}
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [(pool.submit(_execute_key, key), key)
                       for key in pending]
            for future, key in futures:
                try:
                    summary, elapsed = future.result(timeout=self.timeout)
                except Exception:
                    # Timeout, worker crash, or job error: retry once
                    # in-process (robust even if the pool is poisoned).
                    self.metrics.retries += 1
                    try:
                        summary, elapsed = _execute_key(key)
                    except Exception:
                        self.metrics.failures += 1
                        raise
                out[key] = summary
                done += 1
                self._record(key, elapsed, done, total)
        return out


# ----------------------------------------------------------------------
# Process-wide runner (what the figure harnesses route through)
# ----------------------------------------------------------------------
_active_runner: Optional[ParallelRunner] = None


def get_runner() -> ParallelRunner:
    """The ambient runner; defaults to serial, uncached execution
    (``$REPRO_JOBS`` overrides the default worker count)."""
    global _active_runner
    if _active_runner is None:
        _active_runner = ParallelRunner(
            jobs=int(os.environ.get("REPRO_JOBS", "1")))
    return _active_runner


def set_runner(runner: Optional[ParallelRunner]) -> None:
    global _active_runner
    _active_runner = runner


def configure(jobs: int = 1, use_cache: bool = False, cache_dir=None,
              progress=None, timeout: float = 600.0) -> ParallelRunner:
    """Build and install the ambient runner (CLI entry point)."""
    cache = ResultCache(root=cache_dir) if use_cache else None
    runner = ParallelRunner(jobs=jobs, cache=cache, timeout=timeout,
                            progress=progress)
    set_runner(runner)
    return runner


def run_many(keys: Iterable[RunKey]) -> Dict[RunKey, RunSummary]:
    """Execute a batch of keys through the ambient runner."""
    return get_runner().run_batch(keys)


def run_one(benchmark: str, config: Optional[SimConfig] = None,
            instructions: int = DEFAULT_INSTRUCTIONS,
            warmup: int = DEFAULT_WARMUP, scale: int = DEFAULT_SCALE,
            seed: int = 1) -> RunSummary:
    """Execute (or recall) one run through the ambient runner."""
    return get_runner().run(benchmark, config, instructions, warmup,
                            scale, seed)
