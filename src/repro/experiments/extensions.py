"""Extension studies beyond the paper.

**Huge pages.** The paper maps everything with 4KB pages.  A natural
question is how much of the problem transparent huge pages would solve:
backing the gather region with 2MB pages multiplies the STLB's reach by
512, collapsing the STLB MPKI -- and with it, the replay-load population
the paper's mechanisms accelerate.  The study quantifies both the
benefit of THP and the residual value of the enhancements under THP
(walks still happen, just rarely, and the remaining ones still behave
as the paper describes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures import FigureResult, _run_grid
from repro.experiments.parallel import RunKey
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.params import DEFAULT_SCALE, EnhancementConfig, default_config
from repro.stats.report import geometric_mean
from repro.workloads.registry import benchmark_names
from repro.experiments.registry import figure


def adaptive_tdrrip_study(benchmarks: Optional[Sequence[str]] = None,
                          instructions: int = DEFAULT_INSTRUCTIONS,
                          warmup: int = DEFAULT_WARMUP,
                          scale: int = DEFAULT_SCALE) -> FigureResult:
    """Static T-DRRIP vs the set-dueling adaptive variant at the L2C.

    The adaptive variant (an extension beyond the paper) duels
    translation-conscious insertion against plain DRRIP so that a
    workload hurt by PTE pinning would automatically disable it.  On the
    paper's benchmarks the two should be equivalent -- the dueling's
    value is insurance, not speedup.
    """
    names = list(benchmarks) if benchmarks else benchmark_names()
    specs = {}
    for name in names:
        specs[(name, "base")] = RunKey.make(name, None, instructions,
                                            warmup, scale)
        for label, policy in (("static", "t_drrip"),
                              ("adaptive", "t_drrip_adaptive")):
            cfg = default_config(scale)
            cfg.l2c.replacement = policy
            specs[(name, label)] = RunKey.make(name, cfg, instructions,
                                               warmup, scale)
    runs = _run_grid(specs)
    rows, data = [], {}
    speedups = {"static": [], "adaptive": []}
    for name in names:
        row = [name]
        data[name] = {}
        for label in ("static", "adaptive"):
            sp = runs[(name, label)].speedup_over(runs[(name, "base")])
            row.append(sp)
            data[name][label] = sp
            speedups[label].append(sp)
        rows.append(row)
    rows.append(["gmean", geometric_mean(speedups["static"]),
                 geometric_mean(speedups["adaptive"])])
    data["gmean"] = {k: geometric_mean(v) for k, v in speedups.items()}
    return FigureResult("Extension", "Static vs adaptive T-DRRIP (L2C)",
                        ["benchmark", "static", "adaptive"], rows, data)


@figure("hugepages", paper=False)
def huge_page_study(benchmarks: Optional[Sequence[str]] = None,
                    instructions: int = DEFAULT_INSTRUCTIONS,
                    warmup: int = DEFAULT_WARMUP,
                    scale: int = DEFAULT_SCALE) -> FigureResult:
    """4KB vs 2MB gather pages, with and without the enhancements.

    All four configurations are normalized to the 4KB baseline, and the
    4KB/2MB STLB MPKIs are reported alongside.
    """
    names = list(benchmarks) if benchmarks else benchmark_names()
    variant_cfgs = {
        "4K+enh": ("none", EnhancementConfig.full()),
        "2M": ("gather_region", EnhancementConfig.none()),
        "2M+enh": ("gather_region", EnhancementConfig.full()),
    }
    specs = {}
    for name in names:
        specs[(name, "base")] = RunKey.make(name, None, instructions,
                                            warmup, scale)
        for label, (huge, enh) in variant_cfgs.items():
            cfg = default_config(scale).with_(huge_page_policy=huge,
                                                enhancements=enh)
            specs[(name, label)] = RunKey.make(name, cfg, instructions,
                                               warmup, scale)
    runs = _run_grid(specs)
    rows: List[List] = []
    data: Dict = {}
    speedup_cols = {"4K+enh": [], "2M": [], "2M+enh": []}
    for name in names:
        base = runs[(name, "base")]
        variants = {label: runs[(name, label)] for label in variant_cfgs}
        row = [name, base.stlb_mpki, variants["2M"].stlb_mpki]
        data[name] = {"stlb_4k": base.stlb_mpki,
                      "stlb_2m": variants["2M"].stlb_mpki}
        for label, run in variants.items():
            sp = run.speedup_over(base)
            row.append(sp)
            data[name][label] = sp
            speedup_cols[label].append(sp)
        rows.append(row)
    gmean_row = ["gmean", "", ""] + [geometric_mean(speedup_cols[c])
                                     for c in speedup_cols]
    rows.append(gmean_row)
    data["gmean"] = {c: geometric_mean(v) for c, v in speedup_cols.items()}
    return FigureResult(
        "Extension", "Huge pages vs translation-conscious caching",
        ["benchmark", "STLB MPKI (4K)", "STLB MPKI (2M)",
         "4K+enh", "2M", "2M+enh"], rows, data)
