"""TEMPO-style translation-triggered prefetching at the DRAM controller
(Bhattacharjee, ASPLOS'17; used by the paper as the fallback when a leaf
translation misses the whole on-chip hierarchy).

When the memory controller services a leaf-level PTE read, the translated
physical frame is in the returning data, so the controller can immediately
fetch the replay data line and push it into the LLC (with highest eviction
priority, like ATP fills).  With the paper's T-DRRIP/T-SHiP enhancements
only ~2% of leaf translations reach DRAM, which is why TEMPO adds just
0.3% on top of ATP in Fig 14.
"""

from __future__ import annotations

from repro.memsys.request import MemoryRequest


class TEMPOPrefetcher:
    """Subscribes to leaf-translation services at the DRAM controller."""

    def __init__(self, dram, llc):
        self.dram = dram
        self.llc = llc
        self.triggered = 0
        #: Request-level span tracer (None unless the run is traced).
        self.tracer = None

    def attach(self) -> None:
        self.dram.on_leaf_translation = self.on_dram_leaf_translation

    def on_dram_leaf_translation(self, req: MemoryRequest,
                                 done_cycle: int) -> None:
        if req.replay_line_addr is None:
            return
        # Already-resident replay lines need no fetch and must not count
        # as triggers (same suppression rule as ATP).
        if self.llc.contains(req.replay_line_addr):
            return
        self.triggered += 1
        if self.tracer is not None:
            self.tracer.instant("tempo_trigger", done_cycle, cat="prefetch",
                                level="DRAM", line=req.replay_line_addr)
        # The replay line fetch starts once the PTE data reaches the
        # controller; it descends from the LLC (missing there) to DRAM and
        # fills the LLC with highest eviction priority.
        self.llc.issue_prefetch(req.replay_line_addr, done_cycle,
                                evict_priority=True)
