"""Bingo spatial prefetcher (Bakhshalipour et al., HPCA'19), compact model.

Bingo records the footprint (bitmap of accessed lines) of each spatial
region and associates it with the *trigger* access's long event (PC +
address) and short event (PC + offset).  When a new region is triggered,
the history is probed long-event-first and the stored footprint is
prefetched.  Regions are 2KB; prefetching never leaves the region, so --
like SPP -- Bingo cannot cover replay loads on new pages.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.memsys.request import MemoryRequest
from repro.prefetch.base import Prefetcher

#: Region size in lines (2KB regions of 64B lines).
REGION_LINES = 32


class BingoPrefetcher(Prefetcher):
    """Footprint history keyed by PC+address (long) and PC+offset (short)."""

    name = "bingo"
    ACCUMULATION_CAPACITY = 64
    HISTORY_CAPACITY = 4096

    def __init__(self):
        super().__init__()
        # region -> (trigger_pc, trigger_offset, footprint_bitmap)
        self._accumulating: "OrderedDict[int, Tuple[int, int, int]]" = OrderedDict()
        self._history_long: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._history_short: "OrderedDict[Tuple[int, int], int]" = OrderedDict()

    def _retire_region(self, region: int) -> None:
        pc, offset, footprint = self._accumulating.pop(region)
        self._history_long[(pc, region)] = footprint
        self._history_short[(pc, offset)] = footprint
        while len(self._history_long) > self.HISTORY_CAPACITY:
            self._history_long.popitem(last=False)
        while len(self._history_short) > self.HISTORY_CAPACITY:
            self._history_short.popitem(last=False)

    def _predict(self, pc: int, region: int, offset: int) -> Optional[int]:
        footprint = self._history_long.get((pc, region))
        if footprint is None:
            footprint = self._history_short.get((pc, offset))
        return footprint

    def operate(self, req: MemoryRequest, hit: bool) -> List[int]:
        line = req.line_addr
        region = line // REGION_LINES
        offset = line % REGION_LINES

        candidates: List[int] = []
        entry = self._accumulating.get(region)
        if entry is None:
            # Trigger access: probe history, start accumulating.
            footprint = self._predict(req.ip, region, offset)
            if footprint is not None:
                base = region * REGION_LINES
                candidates = [base + i for i in range(REGION_LINES)
                              if (footprint >> i) & 1 and i != offset]
            self._accumulating[region] = (req.ip, offset, 1 << offset)
            if len(self._accumulating) > self.ACCUMULATION_CAPACITY:
                old_region = next(iter(self._accumulating))
                self._retire_region(old_region)
        else:
            pc, trig_offset, footprint = entry
            self._accumulating[region] = (pc, trig_offset,
                                          footprint | (1 << offset))
        return self._count(candidates)
