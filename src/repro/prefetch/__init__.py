"""Hardware prefetchers: state-of-the-art baselines (IPCP, SPP, Bingo, ISB)
and the paper's proposals (ATP, TEMPO)."""

from repro.prefetch.base import Prefetcher
from repro.prefetch.next_line import NextLinePrefetcher
from repro.prefetch.ip_stride import IPStridePrefetcher
from repro.prefetch.spp import SPPPrefetcher
from repro.prefetch.bingo import BingoPrefetcher
from repro.prefetch.isb import ISBPrefetcher
from repro.prefetch.ipcp import IPCPPrefetcher
from repro.prefetch.atp import ATPPrefetcher
from repro.prefetch.tempo import TEMPOPrefetcher

_L2C_REGISTRY = {
    "next_line": NextLinePrefetcher,
    "ip_stride": IPStridePrefetcher,
    "spp": SPPPrefetcher,
    "bingo": BingoPrefetcher,
    "isb": ISBPrefetcher,
}


def make_l2c_prefetcher(name: str):
    """Instantiate a cache-level (physical-address) prefetcher by name."""
    if name in (None, "", "none"):
        return None
    try:
        return _L2C_REGISTRY[name]()
    except KeyError:
        raise ValueError(f"unknown L2C prefetcher {name!r}; "
                         f"available: {sorted(_L2C_REGISTRY)}") from None


__all__ = ["Prefetcher", "NextLinePrefetcher", "IPStridePrefetcher",
           "SPPPrefetcher", "BingoPrefetcher", "ISBPrefetcher",
           "IPCPPrefetcher", "ATPPrefetcher", "TEMPOPrefetcher",
           "make_l2c_prefetcher"]
