"""SPP: Signature Path Prefetcher (Kim et al., MICRO'16), compact model.

Per-page signatures compress the recent delta history; a pattern table maps
signatures to delta predictions with confidence.  Lookahead chains
predictions while the confidence product stays above a threshold.  SPP
operates on physical addresses at the L2C and therefore never prefetches
across a 4KB page boundary -- the property the paper leans on in Fig 8.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.memsys.request import MemoryRequest
from repro.params import LINE_SHIFT, PAGE_SHIFT
from repro.prefetch.base import LINES_PER_PAGE, Prefetcher

_SIG_BITS = 12
_SIG_MASK = (1 << _SIG_BITS) - 1


def _advance_signature(sig: int, delta: int) -> int:
    return ((sig << 3) ^ (delta & 0x7F)) & _SIG_MASK


class SPPPrefetcher(Prefetcher):
    """Signature table + pattern table + lookahead."""

    name = "spp"
    ST_SIZE = 256
    PT_SIZE = 4096
    COUNTER_MAX = 15
    #: Minimum per-step confidence to keep prefetching (out of 1.0).
    CONFIDENCE_THRESHOLD = 0.35
    MAX_DEGREE = 4

    def __init__(self):
        super().__init__()
        # page -> (last_offset, signature); bounded FIFO-ish.
        self._signature_table: Dict[int, Tuple[int, int]] = {}
        # signature -> {delta: counter}
        self._pattern_table: Dict[int, Dict[int, int]] = {}

    def _train(self, sig: int, delta: int) -> None:
        deltas = self._pattern_table.setdefault(sig, {})
        deltas[delta] = min(deltas.get(delta, 0) + 1, self.COUNTER_MAX)
        if len(self._pattern_table) > self.PT_SIZE:
            self._pattern_table.pop(next(iter(self._pattern_table)))

    def _best_delta(self, sig: int) -> Tuple[int, float]:
        deltas = self._pattern_table.get(sig)
        if not deltas:
            return 0, 0.0
        total = sum(deltas.values())
        delta, count = max(deltas.items(), key=lambda kv: kv[1])
        return delta, count / total

    def operate(self, req: MemoryRequest, hit: bool) -> List[int]:
        line = req.line_addr
        page = line >> (PAGE_SHIFT - LINE_SHIFT)
        offset = line & (LINES_PER_PAGE - 1)

        entry = self._signature_table.get(page)
        if entry is None:
            sig = 0
        else:
            last_offset, sig = entry
            delta = offset - last_offset
            if delta != 0:
                self._train(sig, delta)
                sig = _advance_signature(sig, delta)
        self._signature_table[page] = (offset, sig)
        if len(self._signature_table) > self.ST_SIZE:
            self._signature_table.pop(next(iter(self._signature_table)))

        # Lookahead from the current signature.
        candidates: List[int] = []
        path_confidence = 1.0
        current_offset, current_sig = offset, sig
        for _ in range(self.MAX_DEGREE):
            delta, confidence = self._best_delta(current_sig)
            path_confidence *= confidence
            if delta == 0 or path_confidence < self.CONFIDENCE_THRESHOLD:
                break
            current_offset += delta
            if not 0 <= current_offset < LINES_PER_PAGE:
                break  # SPP never crosses the page
            candidates.append((page << (PAGE_SHIFT - LINE_SHIFT))
                              + current_offset)
            current_sig = _advance_signature(current_sig, delta)
        return self._count(candidates)
