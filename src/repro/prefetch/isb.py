"""ISB: Irregular Stream Buffer (Jain & Lin, MICRO'13), compact model.

ISB linearizes irregular miss streams: each PC gets a *structural* address
space in which the lines it touches are laid out consecutively, regardless
of their physical addresses.  Prefetching walks the structural space.  This
is the temporal prefetcher the paper finds helps some benchmarks (e.g.
xalancbmk) because repeated irregular sequences recur.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.memsys.request import MemoryRequest
from repro.prefetch.base import Prefetcher

#: Structural addresses per PC stream chunk.
_STREAM_CHUNK = 256


class ISBPrefetcher(Prefetcher):
    """PC-localized structural-address mapping with bounded tables."""

    name = "isb"
    PS_CAPACITY = 32768   # physical -> structural entries
    DEGREE = 3

    def __init__(self):
        super().__init__()
        # physical line -> structural address
        self._ps: "OrderedDict[int, int]" = OrderedDict()
        # structural address -> physical line
        self._sp: Dict[int, int] = {}
        # pc -> next structural address to assign in its stream
        self._stream_cursor: Dict[int, int] = {}
        self._next_chunk = 0

    def _assign(self, pc: int, line: int) -> int:
        cursor = self._stream_cursor.get(pc)
        if cursor is None or cursor % _STREAM_CHUNK == _STREAM_CHUNK - 1:
            cursor = self._next_chunk * _STREAM_CHUNK
            self._next_chunk += 1
        else:
            cursor += 1
        self._stream_cursor[pc] = cursor
        old = self._ps.get(line)
        if old is not None:
            self._sp.pop(old, None)
        self._ps[line] = cursor
        self._sp[cursor] = line
        while len(self._ps) > self.PS_CAPACITY:
            dead_line, dead_struct = self._ps.popitem(last=False)
            self._sp.pop(dead_struct, None)
        return cursor

    def operate(self, req: MemoryRequest, hit: bool) -> List[int]:
        line = req.line_addr
        structural = self._ps.get(line)
        candidates: List[int] = []
        if structural is not None:
            self._ps.move_to_end(line)
            base_chunk = structural // _STREAM_CHUNK
            for d in range(1, self.DEGREE + 1):
                nxt = structural + d
                if nxt // _STREAM_CHUNK != base_chunk:
                    break
                phys = self._sp.get(nxt)
                if phys is not None:
                    candidates.append(phys)
        # Train on misses only (the classic ISB trigger is the miss stream).
        if not hit:
            self._assign(req.ip, line)
        return self._count(candidates)
