"""IPCP: Instruction Pointer Classifier-based spatial Prefetching
(Pakalapati & Panda, ISCA'20), compact model.

IPCP lives at the L1D and works on *virtual* addresses, so it is the one
baseline prefetcher that can cross page boundaries.  IPs are classified as
constant-stride (CS) or complex/global-stream (GS); CS IPs issue strided
prefetches, GS IPs follow the global access stream.  Cross-page candidates
must translate first: the hierarchy routes them through the STLB and, on a
miss, the prefetch is delayed until the walk completes -- the *late
prefetching* that makes IPCP unable to hide replay-load stalls (Section III).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.params import LINE_SHIFT, PAGE_SHIFT

_LINES_PER_PAGE = 1 << (PAGE_SHIFT - LINE_SHIFT)


class IPCPPrefetcher:
    """Per-IP classifier over virtual line addresses."""

    name = "ipcp"
    TABLE_SIZE = 1024
    CS_DEGREE = 4
    GS_DEGREE = 2
    CONF_MAX = 3
    CS_THRESHOLD = 2

    def __init__(self):
        # ip_hash -> (last_vline, stride, confidence)
        self._table: Dict[int, Tuple[int, int, int]] = {}
        # Global stream: recent virtual lines (for GS class).
        self._last_global_vline = 0
        self._global_stride = 0
        self._global_conf = 0
        self.issued = 0
        self.cross_page_issued = 0

    def operate_virtual(self, ip: int, vline: int, hit: bool) -> List[int]:
        """Observe an L1D demand access; returns virtual lines to prefetch."""
        key = ip % self.TABLE_SIZE
        candidates: List[int] = []

        entry = self._table.get(key)
        if entry is not None:
            last, stride, conf = entry
            delta = vline - last
            if delta == stride and stride != 0:
                conf = min(conf + 1, self.CONF_MAX)
            else:
                conf = max(conf - 1, 0)
                if conf == 0:
                    stride = delta
            self._table[key] = (vline, stride, conf)
            if conf >= self.CS_THRESHOLD and stride != 0:
                candidates = [vline + stride * d
                              for d in range(1, self.CS_DEGREE + 1)]
        else:
            self._table[key] = (vline, 0, 0)

        if not candidates:
            # Global-stream class: follow the overall stride if stable.
            g_delta = vline - self._last_global_vline
            if g_delta == self._global_stride and g_delta != 0:
                self._global_conf = min(self._global_conf + 1, self.CONF_MAX)
            else:
                self._global_conf = max(self._global_conf - 1, 0)
                if self._global_conf == 0:
                    self._global_stride = g_delta
            self._last_global_vline = vline
            if (self._global_conf >= self.CS_THRESHOLD
                    and self._global_stride != 0):
                candidates = [vline + self._global_stride * d
                              for d in range(1, self.GS_DEGREE + 1)]
        else:
            self._last_global_vline = vline

        candidates = [c for c in candidates if c > 0]
        self.issued += len(candidates)
        page = vline >> (PAGE_SHIFT - LINE_SHIFT)
        self.cross_page_issued += sum(
            1 for c in candidates if (c >> (PAGE_SHIFT - LINE_SHIFT)) != page)
        return candidates
