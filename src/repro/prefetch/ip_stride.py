"""Classic per-IP stride prefetcher with confidence."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.memsys.request import MemoryRequest
from repro.prefetch.base import Prefetcher, clamp_to_page


class IPStridePrefetcher(Prefetcher):
    """Tracks (last line, stride, confidence) per instruction pointer."""

    name = "ip_stride"
    TABLE_SIZE = 1024

    def __init__(self, degree: int = 3, confidence_threshold: int = 2):
        super().__init__()
        self.degree = degree
        self.threshold = confidence_threshold
        # ip_hash -> (last_line, stride, confidence)
        self._table: Dict[int, Tuple[int, int, int]] = {}

    def operate(self, req: MemoryRequest, hit: bool) -> List[int]:
        key = req.ip % self.TABLE_SIZE
        line = req.line_addr
        entry = self._table.get(key)
        candidates: List[int] = []
        if entry is not None:
            last, stride, conf = entry
            new_stride = line - last
            if new_stride == stride and stride != 0:
                conf = min(conf + 1, 3)
            else:
                conf = max(conf - 1, 0)
                if conf == 0:
                    stride = new_stride
            if conf >= self.threshold and stride != 0:
                candidates = [line + stride * d
                              for d in range(1, self.degree + 1)]
            self._table[key] = (line, stride, conf)
        else:
            self._table[key] = (line, 0, 0)
        return self._count(clamp_to_page(line, candidates))
