"""Prefetcher interface.

Cache-level prefetchers observe demand accesses at their level and return
physical line addresses to fetch.  They must not cross a 4KB page boundary
(physical contiguity is not guaranteed beyond a page) -- this is precisely
why the paper finds they cannot cover replay loads, whose next access is on
a *different* page.
"""

from __future__ import annotations

import abc
from typing import List

from repro.memsys.request import MemoryRequest
from repro.params import LINE_SHIFT, PAGE_SHIFT

#: Cache lines per 4KB page.
LINES_PER_PAGE = 1 << (PAGE_SHIFT - LINE_SHIFT)


def same_page(line_a: int, line_b: int) -> bool:
    """True when two line addresses fall in the same 4KB page."""
    shift = PAGE_SHIFT - LINE_SHIFT
    return (line_a >> shift) == (line_b >> shift)


def clamp_to_page(base_line: int, candidates: List[int]) -> List[int]:
    """Drop candidates that leave ``base_line``'s page."""
    return [c for c in candidates if c >= 0 and same_page(base_line, c)]


class Prefetcher(abc.ABC):
    """Demand-triggered prefetcher attached to one cache level."""

    name = "base"

    def __init__(self):
        self.issued = 0

    @abc.abstractmethod
    def operate(self, req: MemoryRequest, hit: bool) -> List[int]:
        """Observe a demand access; return line addresses to prefetch."""

    def _count(self, candidates: List[int]) -> List[int]:
        self.issued += len(candidates)
        return candidates
