"""Next-line prefetcher (simplest baseline)."""

from __future__ import annotations

from typing import List

from repro.memsys.request import MemoryRequest
from repro.prefetch.base import Prefetcher, clamp_to_page


class NextLinePrefetcher(Prefetcher):
    """On every demand access, prefetch the next ``degree`` lines."""

    name = "next_line"

    def __init__(self, degree: int = 1):
        super().__init__()
        self.degree = degree

    def operate(self, req: MemoryRequest, hit: bool) -> List[int]:
        line = req.line_addr
        candidates = [line + d for d in range(1, self.degree + 1)]
        return self._count(clamp_to_page(line, candidates))
