"""ATP: Address-Translation-hit triggered replay-load Prefetcher
(Section IV of the paper).

When a leaf-level page-table read *hits* at the L2C or the LLC, the page's
physical frame is known immediately -- and the PTW carries the upper six
bits of the faulting access's page offset -- so the replay load's cache
line address is fully determined.  ATP prefetches that line into the level
where the translation hit, inserted with the highest eviction priority
(the block is dead after its single use, Fig 7).

ATP is 100% accurate by construction: it is not speculative.  It improves
replay-load *latency*, not miss rate -- the prefetched block is on its way
from DRAM before the replay demand reaches the L2C/LLC (Fig 13).

No translation hit at the L1D triggers prefetching: the time gap between an
L1D translation hit and the data request is too small to hide anything.
"""

from __future__ import annotations

from repro.memsys.request import MemoryRequest


class ATPPrefetcher:
    """Subscribes to leaf-translation hits at L2C and LLC."""

    def __init__(self, l2c, llc):
        self.l2c = l2c
        self.llc = llc
        self.triggered_l2c = 0
        self.triggered_llc = 0
        #: Request-level span tracer (None unless the run is traced).
        self.tracer = None

    def attach(self) -> None:
        """Register the hit callbacks on both cache levels."""
        self.l2c.on_leaf_translation_hit = self.on_l2c_hit
        self.llc.on_leaf_translation_hit = self.on_llc_hit

    def on_l2c_hit(self, req: MemoryRequest, cycle: int) -> None:
        if req.replay_line_addr is None:
            return
        # Already-resident lines need no prefetch and must not count as
        # triggers (they would inflate the accuracy denominator).
        if self.l2c.contains(req.replay_line_addr):
            return
        self.triggered_l2c += 1
        if self.tracer is not None:
            self.tracer.instant("atp_trigger", cycle, cat="prefetch",
                                level="L2C", line=req.replay_line_addr)
        self.l2c.issue_prefetch(req.replay_line_addr, cycle,
                                evict_priority=True)

    def on_llc_hit(self, req: MemoryRequest, cycle: int) -> None:
        if req.replay_line_addr is None:
            return
        if self.llc.contains(req.replay_line_addr):
            return
        self.triggered_llc += 1
        if self.tracer is not None:
            self.tracer.instant("atp_trigger", cycle, cat="prefetch",
                                level="LLC", line=req.replay_line_addr)
        self.llc.issue_prefetch(req.replay_line_addr, cycle,
                                evict_priority=True)

    @property
    def triggered(self) -> int:
        return self.triggered_l2c + self.triggered_llc
