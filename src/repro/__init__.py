"""repro: reproduction of "Address Translation Conscious Caching and
Prefetching for High Performance Cache Hierarchy" (Vasudha & Panda,
ISPASS 2022).

A trace-driven timing simulator of a Sunny-Cove-like core's memory system:
five-level page table + TLBs + paging-structure caches + page-table walker,
a three-level cache hierarchy with pluggable replacement policies (LRU,
SRRIP, DRRIP, SHiP, Hawkeye and the paper's T-DRRIP / T-SHiP / T-Hawkeye),
hardware prefetchers (IPCP, SPP, Bingo, ISB and the paper's ATP / TEMPO),
and an OOO core model with head-of-ROB stall attribution.

Quickstart::

    from repro import run_benchmark, default_config, EnhancementConfig

    base = run_benchmark("mcf")
    cfg = default_config().with_(enhancements=EnhancementConfig.full())
    enhanced = run_benchmark("mcf", config=cfg)
    print(enhanced.speedup_over(base))  # ~1.1x
"""

from repro.params import (SimConfig, EnhancementConfig, IdealConfig,
                          CacheConfig, TLBConfig, default_config,
                          paper_config, DEFAULT_SCALE)
from repro.experiments.runner import (run_benchmark, RunResult,
                                      DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP)
from repro.core.ooo_core import OOOCore, CoreResult
from repro.core.rob import StallCategory
from repro.core.smt import SMTCore
from repro.core.multicore import MultiCore
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.registry import (benchmark_names, make_trace,
                                      BENCHMARKS, TABLE2_REFERENCE)

__version__ = "1.0.0"

__all__ = ["SimConfig", "EnhancementConfig", "IdealConfig", "CacheConfig",
           "TLBConfig", "default_config", "paper_config", "DEFAULT_SCALE",
           "run_benchmark", "RunResult", "DEFAULT_INSTRUCTIONS",
           "DEFAULT_WARMUP", "OOOCore", "CoreResult", "StallCategory",
           "SMTCore", "MultiCore", "MemoryHierarchy", "benchmark_names",
           "make_trace", "BENCHMARKS", "TABLE2_REFERENCE", "__version__"]
