"""Scenario execution: the bridge into the ``repro.api`` run path.

Running a scenario is running a benchmark whose trace happens to be a
compiled mix: :func:`run_scenario` builds the effective
:class:`~repro.params.SimConfig` (document overrides over the scale
default), forms a scenario-aware
:class:`~repro.experiments.parallel.RunKey` (the key carries the
document digest, so editing a scenario invalidates its cached results)
and routes it through the ambient
:class:`~repro.experiments.parallel.ParallelRunner` -- memoisation,
worker fan-out and progress reporting all behave exactly as for direct
runs.

Results emit as ``repro.scenario-result/v1`` JSONL lines: schema-stable,
RunKey-keyed records suitable for time-series tracking and the CI
scenario matrix.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.experiments.parallel import (ParallelRunner, RunKey, RunSummary,
                                        get_runner)
from repro.params import SimConfig, default_config
from repro.scenarios.compile import compile_scenario
from repro.scenarios.doc import ScenarioDoc, ScenarioError, parse_scenario
from repro.scenarios.library import library_paths, load_scenario
from repro.workloads.trace import Trace

#: Schema identifier written into every result line.
RESULT_SCHEMA = "repro.scenario-result/v1"

#: Process-local registry of ad-hoc (non-library) documents, so
#: ``make_trace`` can resolve them by name within this process.
_ADHOC: Dict[str, ScenarioDoc] = {}


def register_scenario(doc: ScenarioDoc) -> ScenarioDoc:
    """Make an ad-hoc document resolvable by name in this process."""
    _ADHOC[doc.name] = doc
    return doc


def resolve_scenario(name: str) -> Optional[ScenarioDoc]:
    """The document behind ``name``: ad-hoc registry first, then the
    checked-in library.  ``None`` when the name is not a scenario."""
    doc = _ADHOC.get(name)
    if doc is not None:
        return doc
    if name in library_paths():
        return load_scenario(name)
    return None


def resolve_trace(name: str, instructions: int, *, scale: int,
                  seed: int) -> Optional[Trace]:
    """Trace-factory hook for :func:`repro.workloads.registry.make_trace`."""
    doc = resolve_scenario(name)
    if doc is None:
        return None
    return compile_scenario(doc, instructions, scale=scale, seed=seed)


def describe_scenario(name: str) -> Optional[Dict]:
    """Manifest block for observed scenario runs (``None`` for plain
    benchmarks); see :func:`repro.obs.manifest.build_manifest`."""
    doc = resolve_scenario(name)
    if doc is None:
        return None
    return {"name": doc.name, "family": doc.family, "digest": doc.digest,
            "arrival": doc.arrival.kind, "phases": len(doc.phases),
            "mix": doc.mix_summary()}


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """One executed scenario: the document, its run identity, and the
    picklable :class:`RunSummary` the runner produced."""

    doc: ScenarioDoc
    key: RunKey
    summary: RunSummary

    @property
    def ipc(self) -> float:
        return self.summary.ipc

    @property
    def cycles(self) -> int:
        return self.summary.cycles

    def jsonl_record(self, *, timestamp: bool = True) -> Dict:
        """The ``repro.scenario-result/v1`` line for this run.

        Keys only grow, never change meaning, within the schema version;
        ``timestamp=False`` drops the one non-deterministic field (the
        golden-output tests use that).
        """
        record: Dict = {
            "schema": RESULT_SCHEMA,
            "scenario": self.doc.name,
            "family": self.doc.family,
            "scenario_digest": self.doc.digest,
            "run_key": self.key.digest,
            "config_hash": self.key.config_hash,
            "seed": self.key.seed,
            "instructions": self.key.instructions,
            "warmup": self.key.warmup,
            "scale": self.key.scale,
            "arrival": self.doc.arrival.kind,
            "phases": len(self.doc.phases),
            "mix": self.doc.mix_summary(),
            "cycles": self.summary.cycles,
            "ipc": round(self.summary.ipc, 6),
            "metrics": {k: (round(v, 6) if isinstance(v, float) else v)
                        for k, v in self.summary.summary().items()},
        }
        if timestamp:
            record["created_utc"] = time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        return record


def _coerce_doc(scenario: Union[str, Dict, ScenarioDoc]) -> ScenarioDoc:
    if isinstance(scenario, ScenarioDoc):
        return scenario
    if isinstance(scenario, dict):
        return parse_scenario(scenario)
    if isinstance(scenario, str):
        if scenario.endswith((".yaml", ".yml", ".json")) \
                or "/" in scenario:
            from repro.scenarios.doc import load_scenario_file
            return load_scenario_file(scenario)
        doc = resolve_scenario(scenario)
        if doc is None:
            raise ScenarioError(
                f"unknown scenario {scenario!r}; available: "
                f"{sorted(library_paths())}")
        return doc
    raise TypeError(f"scenario must be a name, path, dict or "
                    f"ScenarioDoc, not {type(scenario).__name__}")


def run_scenario(scenario: Union[str, Dict, ScenarioDoc], *,
                 instructions: Optional[int] = None,
                 warmup: Optional[int] = None,
                 scale: Optional[int] = None,
                 seed: Optional[int] = None,
                 config: Optional[SimConfig] = None,
                 runner: Optional[ParallelRunner] = None) -> ScenarioResult:
    """Execute one scenario through the runner path.

    ``scenario`` is a library name, a document path, a decoded dict or a
    parsed :class:`ScenarioDoc`; the keyword overrides take precedence
    over the document's own geometry.  ``config`` (when given) is the
    base the document's ``config:`` overrides apply to, replacing the
    scale default.
    """
    doc = _coerce_doc(scenario)
    n = doc.instructions if instructions is None else int(instructions)
    w = doc.warmup if warmup is None else int(warmup)
    sc = doc.scale if scale is None else int(scale)
    sd = doc.seed if seed is None else int(seed)

    cfg = config if config is not None else default_config(sc)
    overrides = doc.config
    if overrides:
        try:
            cfg = cfg.with_(**overrides)
        except (TypeError, ValueError) as exc:
            raise ScenarioError(
                f"{doc.name}: bad config override ({exc})") from None

    # Library documents resolve by name in any process; everything else
    # must register in *this* process and run serially (a worker process
    # could not rebuild the trace from the name alone).
    in_library = (doc.name in library_paths()
                  and _ADHOC.get(doc.name) is None
                  and load_scenario(doc.name).digest == doc.digest)
    if not in_library:
        register_scenario(doc)

    active = runner or get_runner()
    if not in_library and active.jobs > 1:
        active = ParallelRunner(jobs=1, cache=active.cache,
                                timeout=active.timeout,
                                progress=active.progress)

    key = RunKey(benchmark=doc.name, config=cfg, seed=sd, instructions=n,
                 warmup=w, scale=sc, scenario=doc.digest)
    summary = active.run_batch([key])[key]
    return ScenarioResult(doc=doc, key=key, summary=summary)


def write_results(results: Iterable[ScenarioResult], path, *,
                  timestamp: bool = True) -> List[Dict]:
    """Append one JSONL line per result to ``path``; returns the lines."""
    records = [r.jsonl_record(timestamp=timestamp) for r in results]
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "a") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return records
