"""Scenario -> trace compilation.

:func:`compile_scenario` turns a parsed :class:`~repro.scenarios.doc.
ScenarioDoc` into one deterministic instruction trace: the phase
schedule is apportioned over the requested instruction budget, each
phase's weighted mix is interleaved by its arrival process (see
:mod:`repro.workloads.mix`), and the segments are concatenated in
schedule order.

Determinism: a single-phase document compiles under the caller's seed
verbatim; multi-phase documents derive one sub-seed per phase via
:func:`~repro.workloads.mix.derive_seed`.  Together with the mix
engine's single-component identity this makes a single-workload,
single-phase scenario byte-identical to ``make_trace(benchmark, n,
scale, seed)`` -- the property that lets scenario runs share the
``RunKey``/``ResultCache`` machinery with direct runs.
"""

from __future__ import annotations

from typing import Optional

from repro.scenarios.doc import ScenarioDoc
from repro.workloads.mix import apportion, derive_seed, interleave_traces
from repro.workloads.trace import Trace


def compile_scenario(doc: ScenarioDoc, instructions: Optional[int] = None,
                     *, scale: Optional[int] = None,
                     seed: Optional[int] = None) -> Trace:
    """Compile one scenario into a trace of ``instructions`` records.

    ``instructions`` / ``scale`` / ``seed`` default to the document's
    own values (callers like :func:`repro.workloads.registry.make_trace`
    pass the run geometry through explicitly).
    """
    n = doc.instructions if instructions is None else int(instructions)
    sc = doc.scale if scale is None else int(scale)
    sd = doc.seed if seed is None else int(seed)
    if n <= 0:
        raise ValueError("need a positive instruction count")

    phases = doc.phases
    budgets = apportion(n, [p.weight for p in phases]) \
        if len(phases) > 1 else [n]
    segments = []
    for i, (phase, budget) in enumerate(zip(phases, budgets)):
        phase_seed = sd if len(phases) == 1 \
            else derive_seed(sd, "phase", i)
        segments.append(interleave_traces(
            phase.components, budget, scale=sc, seed=phase_seed,
            arrival=phase.arrival.kind, quantum=phase.arrival.quantum,
            burst_factor=phase.arrival.burst_factor,
            name=f"{doc.name}.{i}" if len(phases) > 1 else doc.name))
    if len(segments) == 1:
        return segments[0]
    return Trace.concatenate(segments, name=doc.name)
