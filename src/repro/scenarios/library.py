"""The checked-in scenario library (``src/repro/scenarios/library/``).

``SYN-*`` documents are tightly controlled single-variable stress
scenarios for capacity planning and CI regressions; ``RL-*`` documents
are production-like blends (graph analytics + pointer chasing +
streaming, with phase changes).  Every file is a ``repro.scenario/v1``
document whose ``name`` matches its filename stem -- the name is how
runs, RunKeys and worker processes resolve it (see
:func:`repro.workloads.registry.make_trace`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple

from repro.scenarios.doc import ScenarioDoc, ScenarioError, \
    load_scenario_file

#: Directory holding the checked-in scenario documents.
LIBRARY_DIR = Path(__file__).resolve().parent / "library"

_SUFFIXES = (".yaml", ".yml", ".json")


def library_paths() -> Dict[str, Path]:
    """Scenario name -> document path, sorted by name."""
    paths: Dict[str, Path] = {}
    if not LIBRARY_DIR.is_dir():
        return paths
    for path in sorted(LIBRARY_DIR.iterdir()):
        if path.suffix.lower() in _SUFFIXES:
            paths[path.stem] = path
    return paths


def list_scenarios() -> Tuple[str, ...]:
    """Every checked-in scenario name, sorted."""
    return tuple(sorted(library_paths()))


def load_scenario(name: str) -> ScenarioDoc:
    """Load one library scenario by name."""
    paths = library_paths()
    if name not in paths:
        raise ScenarioError(
            f"unknown scenario {name!r}; available: {sorted(paths)}")
    doc = load_scenario_file(paths[name])
    if doc.name != name:
        raise ScenarioError(
            f"{paths[name].name}: document name {doc.name!r} does not "
            f"match its filename stem {name!r}")
    return doc
