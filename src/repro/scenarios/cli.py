"""CLI body for ``python -m repro scenario run|list|validate``.

Kept out of ``repro.__main__`` (which imports nothing deeper than the
``repro.api`` facade at module level) and imported lazily by the
``scenario`` subcommand.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.scenarios import (ScenarioError, library_paths, list_scenarios,
                             load_scenario, load_scenario_file,
                             run_scenario, validate_scenario, write_results)


def positive_int(value: str) -> int:
    """Argparse type: a strictly positive integer."""
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {value!r}") from None
    if number <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {number}")
    return number


def nonnegative_int(value: str) -> int:
    """Argparse type: an integer >= 0."""
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {value!r}") from None
    if number < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0, got {number}")
    return number


def add_scenario_parser(sub) -> None:
    """Register the ``scenario`` subcommand tree on a subparsers object."""
    p = sub.add_parser(
        "scenario", help="run / list / validate traffic-mix scenarios")
    ssub = p.add_subparsers(dest="scenario_cmd", required=True)

    s_list = ssub.add_parser("list", help="checked-in scenario library")
    s_list.set_defaults(scenario_func=_cmd_list)

    s_val = ssub.add_parser(
        "validate", help="parse + compile-check scenario documents")
    s_val.add_argument("names", nargs="*", metavar="NAME|PATH",
                       help="library names or document paths "
                            "(default with --all: the whole library)")
    s_val.add_argument("--all", action="store_true",
                       help="validate every checked-in library document")
    s_val.set_defaults(scenario_func=_cmd_validate)

    s_run = ssub.add_parser(
        "run", help="compile and simulate scenarios, emit JSONL results")
    s_run.add_argument("names", nargs="+", metavar="NAME|PATH",
                       help="library names or document paths")
    s_run.add_argument("--instructions", type=positive_int, default=None,
                       help="override the documents' ROI length")
    s_run.add_argument("--warmup", type=nonnegative_int, default=None,
                       help="override the documents' warmup length")
    s_run.add_argument("--scale", type=positive_int, default=None,
                       help="override the documents' reduction scale")
    s_run.add_argument("--seed", type=nonnegative_int, default=None,
                       help="override the documents' trace seed")
    s_run.add_argument("--jobs", type=positive_int, default=1,
                       help="worker processes for independent scenarios")
    s_run.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk result memo")
    s_run.add_argument("--out", metavar="PATH", default=None,
                       help="append repro.scenario-result/v1 JSONL "
                            "lines here")
    s_run.set_defaults(scenario_func=_cmd_run)


def cmd_scenario(args) -> int:
    try:
        return args.scenario_func(args)
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 1


def _load(name: str):
    if name.endswith((".yaml", ".yml", ".json")) or "/" in name:
        return load_scenario_file(name)
    return load_scenario(name)


def _cmd_list(_args) -> int:
    paths = library_paths()
    if not paths:
        print("no checked-in scenarios")
        return 0
    for name in sorted(paths):
        doc = load_scenario(name)
        mix = ",".join(doc.mix_summary())
        print(f"{name:<28} {doc.family:<6} arrival={doc.arrival.kind:<8}"
              f" phases={len(doc.phases)} mix={mix}")
        if doc.description:
            print(f"{'':<28} {doc.description}")
    return 0


def _cmd_validate(args) -> int:
    names: List[str] = list(args.names)
    if args.all or not names:
        names += [n for n in list_scenarios() if n not in names]
    if not names:
        print("nothing to validate", file=sys.stderr)
        return 1
    problems = 0
    for name in names:
        try:
            doc = _load(name)
            validate_scenario(doc)
        except ScenarioError as exc:
            print(f"INVALID  {name}: {exc}", file=sys.stderr)
            problems += 1
            continue
        print(f"OK       {name} ({doc.family}, {len(doc.phases)} phase(s), "
              f"digest {doc.digest[:12]})")
    if problems:
        print(f"{problems}/{len(names)} document(s) invalid",
              file=sys.stderr)
        return 1
    print(f"{len(names)} scenario document(s) valid")
    return 0


def _cmd_run(args) -> int:
    from repro.experiments.parallel import configure
    runner = configure(jobs=args.jobs, use_cache=not args.no_cache)
    results = []
    for name in args.names:
        doc = _load(name)
        result = run_scenario(doc, instructions=args.instructions,
                              warmup=args.warmup, scale=args.scale,
                              seed=args.seed, runner=runner)
        results.append(result)
        s = result.summary
        print(f"{doc.name:<28} ipc={s.ipc:7.4f} cycles={s.cycles:>10} "
              f"stlb_mpki={s.stlb_mpki:8.3f} "
              f"run_key={result.key.digest[:12]}")
    if args.out:
        records = write_results(results, args.out)
        print(f"wrote {len(records)} result line(s) to {args.out}")
    return 0
