"""Scenario DSL + traffic-mix engine (``repro.scenario/v1``).

Small YAML/JSON documents describe reproducible multi-workload traffic
mixes -- seed, warmup, weighted workload mix, Poisson/uniform/bursty
arrival process, per-scenario config overrides, optional phase
schedule -- and compile into deterministic interleaved traces that run
through the ordinary ``repro.api`` / ``experiments.runner`` path.

* :func:`parse_scenario` / :func:`load_scenario_file` -- strict parsing
  into :class:`ScenarioDoc` (canonical re-emission via
  :func:`emit_scenario`, content identity via ``doc.digest``);
* :func:`compile_scenario` -- document -> deterministic ``Trace``;
* :func:`list_scenarios` / :func:`load_scenario` -- the checked-in
  ``SYN-*`` / ``RL-*`` library;
* :func:`run_scenario` / :func:`write_results` -- execution through the
  (memoised, parallel) runner with ``repro.scenario-result/v1`` JSONL
  output;
* :func:`validate_scenario` -- parse + config + compile smoke check,
  what ``python -m repro scenario validate`` runs per document.

See ``docs/scenarios.md``.
"""

from __future__ import annotations

from repro.scenarios.compile import compile_scenario
from repro.scenarios.doc import (SCENARIO_SCHEMA, ArrivalSpec, PhaseSpec,
                                 ScenarioDoc, ScenarioError, emit_scenario,
                                 load_scenario_file, parse_scenario)
from repro.scenarios.engine import (RESULT_SCHEMA, ScenarioResult,
                                    describe_scenario, register_scenario,
                                    resolve_scenario, resolve_trace,
                                    run_scenario, write_results)
from repro.scenarios.library import (LIBRARY_DIR, library_paths,
                                     list_scenarios, load_scenario)

__all__ = [
    "SCENARIO_SCHEMA", "RESULT_SCHEMA", "LIBRARY_DIR",
    "ArrivalSpec", "PhaseSpec", "ScenarioDoc", "ScenarioError",
    "ScenarioResult",
    "parse_scenario", "load_scenario_file", "emit_scenario",
    "compile_scenario", "validate_scenario",
    "library_paths", "list_scenarios", "load_scenario",
    "register_scenario", "resolve_scenario", "resolve_trace",
    "describe_scenario", "run_scenario", "write_results",
]


def validate_scenario(doc: ScenarioDoc, *,
                      compile_instructions: int = 2_000) -> ScenarioDoc:
    """Deep-check one parsed document; raises :class:`ScenarioError`.

    Beyond what parsing already enforced, this applies the config
    overrides to a real :class:`~repro.params.SimConfig` and compiles a
    short trace, so every checked-in document is proven runnable.
    """
    from repro.params import default_config
    if doc.config:
        try:
            default_config(doc.scale).with_(**doc.config)
        except (TypeError, ValueError) as exc:
            raise ScenarioError(
                f"{doc.name}: bad config override ({exc})") from None
    try:
        trace = compile_scenario(doc, compile_instructions)
    except (ValueError, TypeError) as exc:
        raise ScenarioError(
            f"{doc.name}: does not compile ({exc})") from None
    if len(trace) != compile_instructions:
        raise ScenarioError(
            f"{doc.name}: compiled to {len(trace)} records, "
            f"expected {compile_instructions}")
    # Round-trip: the canonical re-emission must parse back to the same
    # identity.
    reparsed = parse_scenario(doc.canonical(), source=f"{doc.name}@canonical")
    if reparsed.digest != doc.digest:
        raise ScenarioError(
            f"{doc.name}: canonical form does not round-trip")
    return doc
