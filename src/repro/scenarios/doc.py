"""The ``repro.scenario/v1`` document schema.

A scenario is a small YAML/JSON document describing one reproducible
traffic mix: a name, a seed, run geometry, a weighted workload mix, an
arrival process, optional per-scenario :class:`~repro.params.SimConfig`
overrides and an optional phase schedule.  Parsing is strict -- unknown
keys, bad weights and malformed specs raise :class:`ScenarioError` with
the offending location -- and canonicalising: :meth:`ScenarioDoc.canonical`
re-emits a normalised document whose SHA-256 is the scenario's
:attr:`~ScenarioDoc.digest` (what the scenario-aware
:class:`~repro.experiments.parallel.RunKey` carries).

Example::

    schema: repro.scenario/v1
    name: RL-01-GRAPH-SOUP
    description: graph-analytics blend under open-loop arrivals
    seed: 42
    instructions: 24000
    warmup: 4000
    arrival: {kind: poisson, quantum: 384}
    mix: {pr: 0.35, cc: 0.25, bf: 0.20, canneal: 0.20}

Mix entries map a label to a weight (the label doubles as a registry
benchmark name) or to ``{weight: W, pattern: {...}}`` with inline
:class:`~repro.workloads.synthetic.PatternMix` fields for synthetic
single-variable stress components.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.params import DEFAULT_SCALE
from repro.workloads.mix import (ARRIVAL_KINDS, DEFAULT_BURST_FACTOR,
                                 DEFAULT_QUANTUM, MixComponent)

#: Schema identifier every scenario document must declare.
SCENARIO_SCHEMA = "repro.scenario/v1"

#: Scenario families recognised by the library tooling.
FAMILIES = ("SYN", "RL")


class ScenarioError(ValueError):
    """A scenario document does not conform to ``repro.scenario/v1``."""


@dataclass(frozen=True)
class ArrivalSpec:
    """Arrival-process knobs (see :mod:`repro.workloads.mix`)."""

    kind: str = "uniform"
    quantum: int = DEFAULT_QUANTUM
    burst_factor: int = DEFAULT_BURST_FACTOR

    def canonical(self) -> Dict:
        return {"kind": self.kind, "quantum": self.quantum,
                "burst_factor": self.burst_factor}


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of the schedule: a weighted mix plus its arrival."""

    weight: float
    components: Tuple[MixComponent, ...]
    arrival: ArrivalSpec

    def mix_canonical(self) -> Dict:
        out: Dict = {}
        for comp in self.components:
            if comp.benchmark is not None:
                out[comp.label] = comp.weight
            else:
                out[comp.label] = {
                    "weight": comp.weight,
                    "pattern": {k: comp.pattern[k]
                                for k in sorted(comp.pattern)}}
        return out


@dataclass(frozen=True)
class ScenarioDoc:
    """A parsed, validated ``repro.scenario/v1`` document."""

    name: str
    description: str = ""
    seed: int = 1
    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    scale: int = DEFAULT_SCALE
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    #: SimConfig.with_() overrides, as a sorted item tuple (hashable).
    config_overrides: Tuple[Tuple[str, object], ...] = ()
    phases: Tuple[PhaseSpec, ...] = ()
    #: Whether the source document spelled an explicit ``phases:`` list
    #: (single-phase docs re-emit their mix at the top level).
    explicit_phases: bool = False

    @property
    def family(self) -> str:
        """``SYN`` / ``RL`` by name prefix, else ``custom``."""
        prefix = self.name.split("-", 1)[0]
        return prefix if prefix in FAMILIES else "custom"

    @property
    def config(self) -> Dict:
        return dict(self.config_overrides)

    def mix_summary(self) -> Dict[str, float]:
        """Normalised label -> weight across the whole schedule."""
        phase_total = sum(p.weight for p in self.phases)
        out: Dict[str, float] = {}
        for phase in self.phases:
            comp_total = sum(c.weight for c in phase.components)
            for comp in phase.components:
                share = (phase.weight / phase_total) \
                    * (comp.weight / comp_total)
                out[comp.label] = round(out.get(comp.label, 0.0) + share, 6)
        return dict(sorted(out.items()))

    # -- canonical form / identity -------------------------------------
    def canonical(self) -> Dict:
        """The normalised re-emission of this document.

        Parsing the canonical form yields an equal document (the
        round-trip property ``tests/test_scenarios.py`` pins); its JSON
        serialisation is the digest input.
        """
        doc: Dict = {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "scale": self.scale,
            "arrival": self.arrival.canonical(),
            "config": {k: v for k, v in self.config_overrides},
        }
        if self.explicit_phases:
            doc["phases"] = [
                {"weight": phase.weight,
                 "mix": phase.mix_canonical(),
                 "arrival": phase.arrival.canonical()}
                for phase in self.phases]
        else:
            doc["mix"] = self.phases[0].mix_canonical()
        return doc

    @property
    def digest(self) -> str:
        """Content identity: SHA-256 of the canonical JSON form."""
        blob = json.dumps(self.canonical(), sort_keys=True,
                          separators=(",", ":"), default=str)
        return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
_TOP_KEYS = {"schema", "name", "description", "seed", "instructions",
             "warmup", "scale", "arrival", "mix", "config", "phases"}
_ARRIVAL_KEYS = {"kind", "quantum", "burst_factor"}
_PHASE_KEYS = {"weight", "mix", "arrival"}


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ScenarioError(message)


def _int_field(data: Mapping, key: str, default: int, *, minimum: int,
               where: str) -> int:
    value = data.get(key, default)
    _require(isinstance(value, int) and not isinstance(value, bool)
             and value >= minimum,
             f"{where}: {key!r} must be an integer >= {minimum}, "
             f"got {value!r}")
    return value


def _parse_arrival(data, where: str,
                   default: Optional[ArrivalSpec] = None) -> ArrivalSpec:
    if data is None:
        return default or ArrivalSpec()
    _require(isinstance(data, Mapping), f"{where}: arrival must be a map")
    unknown = set(data) - _ARRIVAL_KEYS
    _require(not unknown, f"{where}: unknown arrival keys {sorted(unknown)}")
    base = default or ArrivalSpec()
    kind = data.get("kind", base.kind)
    _require(kind in ARRIVAL_KINDS,
             f"{where}: arrival kind {kind!r} not in {ARRIVAL_KINDS}")
    quantum = _int_field(data, "quantum", base.quantum, minimum=1,
                         where=where)
    burst = _int_field(data, "burst_factor", base.burst_factor, minimum=2,
                       where=where)
    return ArrivalSpec(kind=kind, quantum=quantum, burst_factor=burst)


def _parse_mix(data, where: str) -> Tuple[MixComponent, ...]:
    _require(isinstance(data, Mapping) and data,
             f"{where}: mix must be a non-empty map of label -> weight")
    components = []
    for label in sorted(data):
        spec = data[label]
        _require(isinstance(label, str) and label,
                 f"{where}: mix labels must be non-empty strings")
        if isinstance(spec, (int, float)) and not isinstance(spec, bool):
            # Plain weight: the label is a registry benchmark name.
            from repro.workloads.registry import BENCHMARKS
            _require(label in BENCHMARKS,
                     f"{where}: mix component {label!r} is not a known "
                     f"benchmark (available: {sorted(BENCHMARKS)}) -- "
                     f"use {{weight, pattern}} for inline components")
            _require(spec > 0, f"{where}: mix weight for {label!r} must "
                               f"be positive, got {spec!r}")
            components.append(MixComponent(label=label, weight=float(spec),
                                           benchmark=label))
            continue
        _require(isinstance(spec, Mapping),
                 f"{where}: mix component {label!r} must be a weight or "
                 f"a {{weight, pattern}} map")
        unknown = set(spec) - {"weight", "pattern"}
        _require(not unknown, f"{where}: mix component {label!r} has "
                              f"unknown keys {sorted(unknown)}")
        weight = spec.get("weight")
        _require(isinstance(weight, (int, float))
                 and not isinstance(weight, bool) and weight > 0,
                 f"{where}: mix component {label!r}: weight must be a "
                 f"positive number, got {weight!r}")
        pattern = spec.get("pattern")
        _require(isinstance(pattern, Mapping) and pattern,
                 f"{where}: mix component {label!r}: pattern must be a "
                 f"non-empty map of PatternMix fields")
        try:
            component = MixComponent(label=label, weight=float(weight),
                                     pattern=dict(pattern))
        except ValueError as exc:
            raise ScenarioError(f"{where}: {exc}") from None
        # Fail at parse time, not first compile: construct the PatternMix.
        from repro.workloads.synthetic import PatternMix
        try:
            PatternMix(**dict(pattern))
        except TypeError as exc:
            raise ScenarioError(
                f"{where}: mix component {label!r}: {exc}") from None
        components.append(component)
    return tuple(components)


def parse_scenario(data: Mapping, *, source: str = "<dict>") -> ScenarioDoc:
    """Parse and validate one scenario document (a decoded mapping)."""
    _require(isinstance(data, Mapping), f"{source}: document must be a map")
    _require(data.get("schema") == SCENARIO_SCHEMA,
             f"{source}: schema is {data.get('schema')!r}, expected "
             f"{SCENARIO_SCHEMA!r}")
    unknown = set(data) - _TOP_KEYS
    _require(not unknown, f"{source}: unknown keys {sorted(unknown)}")
    name = data.get("name")
    _require(isinstance(name, str) and name,
             f"{source}: 'name' must be a non-empty string")
    from repro.workloads.registry import BENCHMARKS
    _require(name not in BENCHMARKS,
             f"{source}: scenario name {name!r} shadows a registry "
             f"benchmark")
    where = f"{source}:{name}"
    description = data.get("description", "")
    _require(isinstance(description, str),
             f"{where}: 'description' must be a string")
    seed = _int_field(data, "seed", 1, minimum=0, where=where)
    instructions = _int_field(data, "instructions", DEFAULT_INSTRUCTIONS,
                              minimum=1, where=where)
    warmup = _int_field(data, "warmup", DEFAULT_WARMUP, minimum=0,
                        where=where)
    scale = _int_field(data, "scale", DEFAULT_SCALE, minimum=1, where=where)
    arrival = _parse_arrival(data.get("arrival"), where)

    config = data.get("config", {})
    _require(isinstance(config, Mapping),
             f"{where}: 'config' must be a map of SimConfig overrides")
    _require(all(isinstance(k, str) for k in config),
             f"{where}: config override keys must be strings")
    overrides = tuple(sorted(config.items()))

    phases_data = data.get("phases")
    if phases_data is not None:
        _require(isinstance(phases_data, (list, tuple)) and phases_data,
                 f"{where}: 'phases' must be a non-empty list")
        _require("mix" not in data,
                 f"{where}: give either a top-level 'mix' or 'phases', "
                 f"not both")
        phases = []
        for i, phase in enumerate(phases_data):
            pwhere = f"{where}.phases[{i}]"
            _require(isinstance(phase, Mapping),
                     f"{pwhere}: each phase must be a map")
            unknown = set(phase) - _PHASE_KEYS
            _require(not unknown,
                     f"{pwhere}: unknown keys {sorted(unknown)}")
            weight = phase.get("weight", 1.0)
            _require(isinstance(weight, (int, float))
                     and not isinstance(weight, bool) and weight > 0,
                     f"{pwhere}: weight must be positive, got {weight!r}")
            components = _parse_mix(phase.get("mix"), pwhere)
            phase_arrival = _parse_arrival(phase.get("arrival"), pwhere,
                                           default=arrival)
            phases.append(PhaseSpec(weight=float(weight),
                                    components=components,
                                    arrival=phase_arrival))
        return ScenarioDoc(name=name, description=description, seed=seed,
                           instructions=instructions, warmup=warmup,
                           scale=scale, arrival=arrival,
                           config_overrides=overrides,
                           phases=tuple(phases), explicit_phases=True)

    components = _parse_mix(data.get("mix"), where)
    phase = PhaseSpec(weight=1.0, components=components, arrival=arrival)
    return ScenarioDoc(name=name, description=description, seed=seed,
                       instructions=instructions, warmup=warmup,
                       scale=scale, arrival=arrival,
                       config_overrides=overrides, phases=(phase,),
                       explicit_phases=False)


# ----------------------------------------------------------------------
# File loading / re-emission
# ----------------------------------------------------------------------
def _decode_text(text: str, source: str) -> Mapping:
    suffix = Path(source).suffix.lower()
    if suffix == ".json":
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{source}: invalid JSON ({exc})") from None
    try:
        import yaml
    except ImportError:
        # YAML documents need pyyaml; JSON always works.
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            raise ScenarioError(
                f"{source}: pyyaml is not installed and the document is "
                f"not JSON; install pyyaml or convert to .json") from None
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ScenarioError(f"{source}: invalid YAML ({exc})") from None


def load_scenario_file(path: "str | os.PathLike") -> ScenarioDoc:
    """Read and parse one ``.yaml`` / ``.yml`` / ``.json`` scenario."""
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise ScenarioError(f"{p}: cannot read scenario ({exc})") from None
    return parse_scenario(_decode_text(text, str(p)), source=p.name)


def emit_scenario(doc: ScenarioDoc, path=None) -> str:
    """Serialise the canonical form (JSON text -- valid YAML too).

    ``path`` additionally writes the text there.  ``parse -> emit ->
    parse`` is the identity on the canonical form.
    """
    text = json.dumps(doc.canonical(), indent=2, sort_keys=True) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text
