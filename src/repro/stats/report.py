"""Plain-text table formatting for experiment output.

Every benchmark harness prints its figure/table through :func:`format_table`
so the regenerated rows look like the paper's."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _fmt(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[Cell]]) -> str:
    """Render an aligned ASCII table with a title line."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, sep, line(list(headers)), sep]
    out.extend(line(row) for row in str_rows)
    out.append(sep)
    return "\n".join(out)


def bar_chart(title: str, labels: Sequence[str],
              values: Sequence[float], width: int = 50,
              baseline: float = 0.0) -> str:
    """Render a horizontal ASCII bar chart.

    ``baseline`` shifts the bar origin -- pass 1.0 for normalized
    speedups so the bars show the delta over the baseline."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return title
    span = max(abs(v - baseline) for v in values) or 1.0
    label_width = max(len(l) for l in labels)
    lines = [title]
    for label, value in zip(labels, values):
        magnitude = int(round(abs(value - baseline) / span * width))
        bar = "#" * magnitude
        lines.append(f"{label.ljust(label_width)}  {value:8.3f}  {bar}")
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the paper's aggregate for normalized performance."""
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= v
    return product ** (1.0 / len(values))


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean, used for SMT mix speedups (Fig 17)."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)
