"""Hit/miss counters broken down by the paper's request categories."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

#: Request categories tracked everywhere (matches
#: :meth:`repro.memsys.request.MemoryRequest.category`).
CATEGORIES = ("translation", "replay", "non_replay", "prefetch", "writeback")


class CacheStats:
    """Per-category access/hit/miss counters for one cache level."""

    def __init__(self, name: str):
        self.name = name
        self.accesses: Dict[str, int] = defaultdict(int)
        self.hits: Dict[str, int] = defaultdict(int)
        self.misses: Dict[str, int] = defaultdict(int)
        #: Leaf-level translations tracked separately (the paper's "PTL1").
        self.leaf_accesses = 0
        self.leaf_hits = 0
        self.leaf_misses = 0
        #: Demand requests that hit on a prefetched, not-yet-used block.
        self.prefetch_useful = 0
        self.prefetch_fills = 0

    def record(self, category: str, hit: bool, leaf: bool = False) -> None:
        self.accesses[category] += 1
        if hit:
            self.hits[category] += 1
        else:
            self.misses[category] += 1
        if leaf:
            self.leaf_accesses += 1
            if hit:
                self.leaf_hits += 1
            else:
                self.leaf_misses += 1

    def mpki(self, category: str, instructions: int) -> float:
        """Misses per kilo-instruction for one category."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses[category] / instructions

    def leaf_mpki(self, instructions: int) -> float:
        """Leaf-level translation (PTL1) misses per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.leaf_misses / instructions

    def hit_rate(self, category: str) -> float:
        acc = self.accesses[category]
        return self.hits[category] / acc if acc else 0.0

    def total_misses(self) -> int:
        return sum(self.misses.values())

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        return {"accesses": dict(self.accesses), "hits": dict(self.hits),
                "misses": dict(self.misses),
                "leaf": {"accesses": self.leaf_accesses,
                         "hits": self.leaf_hits,
                         "misses": self.leaf_misses}}


class LevelDistribution:
    """Which level of the hierarchy served each request class (Fig 3)."""

    LEVELS = ("L1D", "L2C", "LLC", "DRAM")

    def __init__(self):
        self.counts: Dict[str, Dict[str, int]] = {
            "translation": defaultdict(int), "replay": defaultdict(int),
            "non_replay": defaultdict(int)}

    def record(self, category: str, level: str) -> None:
        if category in self.counts:
            self.counts[category][level] += 1

    def fractions(self, category: str) -> Dict[str, float]:
        total = sum(self.counts[category].values())
        if total == 0:
            return {lvl: 0.0 for lvl in self.LEVELS}
        return {lvl: self.counts[category][lvl] / total for lvl in self.LEVELS}
