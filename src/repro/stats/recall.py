"""Recall-distance tracking (Figs 5, 7 and 18).

The paper defines *recall distance* as the number of **unique** accesses that
arrive at the same cache set between a block's eviction and the next request
for that block.  We track it exactly up to a cap (the paper's figures bucket
everything above 50 together), bounding memory use.

Implementation: instead of one ``set`` of seen lines per pending eviction
(which costs O(pending windows) per access), each set keeps a logical access
clock and, per line, the clock of its most recent access in recency order.
A line is unique-since-eviction exactly when its last access is at or after
the eviction's clock value, so the unique count of a window starting at
``s`` is the number of trailing recency entries with time >= s -- computed
lazily, only when the block is actually recalled, by walking the recency
order backwards (bounded by the cap).  An access costs one dict move; sets
with no pending evictions (the common case) pay a single dict probe.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

#: Histogram bucket upper bounds; the final bucket is "> 50".
RECALL_BUCKETS: Tuple[int, ...] = (10, 20, 30, 40, 50)

_CAP = 64           # distances are exact below this, saturating above
_MAX_PENDING = 256  # evicted blocks tracked per set
_PRUNE_THRESHOLD = 4 * _MAX_PENDING  # last-seen table size triggering a prune


class RecallTracker:
    """Tracks recall distance of evicted blocks of one category at one cache."""

    def __init__(self, name: str):
        self.name = name
        # Per set: logical clock, line -> clock of its last access (in
        # recency order, oldest first), and pending windows
        # line -> eviction clock, ordered by eviction recency (oldest
        # first, for censoring on overflow).
        self._time: Dict[int, int] = {}
        self._last_seen: Dict[int, "OrderedDict[int, int]"] = {}
        self._windows: Dict[int, "OrderedDict[int, int]"] = {}
        #: Total pending windows across sets.  Callers on the hot path may
        #: skip :meth:`on_access` entirely while this is zero (the method
        #: would early-return for every set anyway).
        self.pending = 0
        #: Final histogram: len(RECALL_BUCKETS)+1 bins, last is overflow.
        self.histogram: List[int] = [0] * (len(RECALL_BUCKETS) + 1)
        self.samples = 0

    def on_evict(self, set_idx: int, line_addr: int) -> None:
        """A tracked block was evicted from ``set_idx``."""
        windows = self._windows.get(set_idx)
        if windows is None:
            windows = self._windows[set_idx] = OrderedDict()
            self._time.setdefault(set_idx, 0)
            self._last_seen.setdefault(set_idx, OrderedDict())
        if line_addr not in windows:
            self.pending += 1
        windows[line_addr] = self._time[set_idx]
        windows.move_to_end(line_addr)
        if len(windows) > _MAX_PENDING:
            # Censored: it outlived the tracking window without a recall.
            windows.popitem(last=False)
            self.pending -= 1
            self._record_censored()

    def on_access(self, set_idx: int, line_addr: int) -> None:
        """Any access arrived at ``set_idx``; resolves recalls and advances
        the recency order still-pending evictions are counted against."""
        windows = self._windows.get(set_idx)
        if not windows:
            # The clock only ticks while evictions are pending: a window
            # created later starts after every recorded access time, so
            # dormant periods cannot change any window's unique count.
            return
        last_seen = self._last_seen[set_idx]
        start = windows.pop(line_addr, None)
        if start is not None:
            self.pending -= 1
            # Unique accesses since eviction == lines whose most recent
            # access is at or after the eviction clock: walk the recency
            # order backwards until times drop below it (or the cap).
            # The recalling access itself is counted afterwards, so it is
            # excluded here -- its recency entry still predates ``start``.
            count = 0
            for t in reversed(last_seen.values()):
                if t < start or count >= _CAP:
                    break
                count += 1
            self._record(count)
            if not windows:
                # No outstanding windows: every remembered access time is
                # now irrelevant (any future window starts after them all).
                last_seen.clear()
                return
        now = self._time[set_idx]
        last_seen[line_addr] = now
        last_seen.move_to_end(line_addr)
        self._time[set_idx] = now + 1
        if len(last_seen) > _PRUNE_THRESHOLD:
            # Times before the oldest window's start compare identically
            # to "never seen", so forgetting them is exact.
            oldest = min(windows.values())
            while last_seen and next(iter(last_seen.values())) < oldest:
                last_seen.popitem(last=False)

    def _record(self, distance: int) -> None:
        self.samples += 1
        for i, bound in enumerate(RECALL_BUCKETS):
            if distance <= bound:
                self.histogram[i] += 1
                return
        self.histogram[-1] += 1

    def _record_censored(self) -> None:
        """A block was never recalled: it belongs with the "dead" (> 50)
        population the paper's Figs 5/7/18 bucket together."""
        self.samples += 1
        self.histogram[-1] += 1

    def cdf(self) -> List[float]:
        """Cumulative fraction per bucket (last entry is always 1.0)."""
        if self.samples == 0:
            return [0.0] * len(self.histogram)
        out, running = [], 0
        for count in self.histogram:
            running += count
            out.append(running / self.samples)
        return out

    def fraction_within(self, bound: int) -> float:
        """Fraction of recalls with distance <= ``bound`` (a bucket edge)."""
        if self.samples == 0:
            return 0.0
        total = 0
        for i, edge in enumerate(RECALL_BUCKETS):
            if edge <= bound:
                total += self.histogram[i]
        return total / self.samples

    def flush(self) -> None:
        """Resolve all still-pending evictions as never-recalled (censored
        into the > 50 bucket)."""
        for windows in self._windows.values():
            for _start in windows.values():
                self._record_censored()
        self._windows.clear()
        self._last_seen.clear()
        self._time.clear()
        self.pending = 0


class RecallPair:
    """Two recall categories at one cache sharing one recency order.

    A cache tracks recall distance for two populations (translation and
    replay blocks) over the *same* access stream.  Two independent
    trackers would duplicate the per-set clock and recency table and pay
    the recency bookkeeping twice per access, so the pair shares them:
    each channel keeps only its own pending windows and histogram.
    Histograms are identical to two independent trackers fed the same
    stream -- a window's unique count only compares recorded access times
    against the window's start, and the shared clock preserves every
    ordering the private clocks established (times recorded before a
    window opens stay below its start; times after stay at or above it).

    The channels are plain :class:`RecallTracker` objects (``on_evict``,
    histograms, CDFs and ``flush`` all work unchanged); only ``on_access``
    must go through the pair so the shared order advances exactly once.
    """

    __slots__ = ("translation", "replay", "_time", "_last_seen")

    def __init__(self, translation_name: str, replay_name: str):
        self.translation = RecallTracker(translation_name)
        self.replay = RecallTracker(replay_name)
        # Both channels observe every access: alias their recency state.
        self._time = self.translation._time
        self._last_seen = self.translation._last_seen
        self.replay._time = self._time
        self.replay._last_seen = self._last_seen

    def on_access(self, set_idx: int, line_addr: int) -> None:
        """One access: resolves recalls in both channels, then advances
        the shared recency order once."""
        tr = self.translation
        rp = self.replay
        wt = tr._windows.get(set_idx)
        wr = rp._windows.get(set_idx)
        if not wt and not wr:
            return
        last_seen = self._last_seen.get(set_idx)
        if last_seen is None:  # only possible mid-teardown, after a flush
            return
        if wt:
            start = wt.pop(line_addr, None)
            if start is not None:
                tr.pending -= 1
                count = 0
                for t in reversed(last_seen.values()):
                    if t < start or count >= _CAP:
                        break
                    count += 1
                tr._record(count)
        if wr:
            start = wr.pop(line_addr, None)
            if start is not None:
                rp.pending -= 1
                count = 0
                for t in reversed(last_seen.values()):
                    if t < start or count >= _CAP:
                        break
                    count += 1
                rp._record(count)
        if not wt and not wr:
            # No outstanding windows in either channel: every remembered
            # access time for this set is now irrelevant.
            last_seen.clear()
            return
        now = self._time[set_idx]
        last_seen[line_addr] = now
        last_seen.move_to_end(line_addr)
        self._time[set_idx] = now + 1
        if len(last_seen) > _PRUNE_THRESHOLD:
            # Prune below the oldest start either channel still needs.
            bounds = []
            if wt:
                bounds.append(min(wt.values()))
            if wr:
                bounds.append(min(wr.values()))
            oldest = min(bounds)
            while last_seen and next(iter(last_seen.values())) < oldest:
                last_seen.popitem(last=False)
