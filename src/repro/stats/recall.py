"""Recall-distance tracking (Figs 5, 7 and 18).

The paper defines *recall distance* as the number of **unique** accesses that
arrive at the same cache set between a block's eviction and the next request
for that block.  We track it exactly up to a cap (the paper's figures bucket
everything above 50 together), bounding memory use.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Set, Tuple

#: Histogram bucket upper bounds; the final bucket is "> 50".
RECALL_BUCKETS: Tuple[int, ...] = (10, 20, 30, 40, 50)

_CAP = 64           # distances are exact below this, saturating above
_MAX_PENDING = 256  # evicted blocks tracked per set


class RecallTracker:
    """Tracks recall distance of evicted blocks of one category at one cache."""

    def __init__(self, name: str):
        self.name = name
        # set_idx -> OrderedDict[line_addr -> set of unique lines seen]
        self._pending: Dict[int, "OrderedDict[int, Set[int]]"] = {}
        #: Final histogram: len(RECALL_BUCKETS)+1 bins, last is overflow.
        self.histogram: List[int] = [0] * (len(RECALL_BUCKETS) + 1)
        self.samples = 0

    def on_evict(self, set_idx: int, line_addr: int) -> None:
        """A tracked block was evicted from ``set_idx``."""
        pending = self._pending.setdefault(set_idx, OrderedDict())
        pending[line_addr] = set()
        pending.move_to_end(line_addr)
        if len(pending) > _MAX_PENDING:
            # Censored: it outlived the tracking window without a recall.
            pending.popitem(last=False)
            self._record_censored()

    def on_access(self, set_idx: int, line_addr: int) -> None:
        """Any access arrived at ``set_idx``; resolves recalls and counts
        uniques for still-pending evictions."""
        pending = self._pending.get(set_idx)
        if not pending:
            return
        recalled = pending.pop(line_addr, None)
        if recalled is not None:
            self._record(len(recalled))
        for seen in pending.values():
            if len(seen) < _CAP:
                seen.add(line_addr)

    def _record(self, distance: int) -> None:
        self.samples += 1
        for i, bound in enumerate(RECALL_BUCKETS):
            if distance <= bound:
                self.histogram[i] += 1
                return
        self.histogram[-1] += 1

    def _record_censored(self) -> None:
        """A block was never recalled: it belongs with the "dead" (> 50)
        population the paper's Figs 5/7/18 bucket together."""
        self.samples += 1
        self.histogram[-1] += 1

    def cdf(self) -> List[float]:
        """Cumulative fraction per bucket (last entry is always 1.0)."""
        if self.samples == 0:
            return [0.0] * len(self.histogram)
        out, running = [], 0
        for count in self.histogram:
            running += count
            out.append(running / self.samples)
        return out

    def fraction_within(self, bound: int) -> float:
        """Fraction of recalls with distance <= ``bound`` (a bucket edge)."""
        if self.samples == 0:
            return 0.0
        total = 0
        for i, edge in enumerate(RECALL_BUCKETS):
            if edge <= bound:
                total += self.histogram[i]
        return total / self.samples

    def flush(self) -> None:
        """Resolve all still-pending evictions as never-recalled (censored
        into the > 50 bucket)."""
        for pending in self._pending.values():
            for _seen in pending.values():
                self._record_censored()
        self._pending.clear()
