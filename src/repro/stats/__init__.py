"""Statistics collection: per-level counters, recall-distance tracking and
report formatting for the paper's figures and tables."""

from repro.stats.counters import CacheStats, LevelDistribution
from repro.stats.recall import RecallTracker, RECALL_BUCKETS
from repro.stats.report import format_table

__all__ = ["CacheStats", "LevelDistribution", "RecallTracker",
           "RECALL_BUCKETS", "format_table"]
