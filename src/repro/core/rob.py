"""Head-of-ROB stall attribution (the paper's central metric, Figs 1 & 16).

When the instruction at the head of the ROB is an incomplete load, every
cycle until its data arrives is a *head-of-ROB stall*.  For a load whose
translation missed the STLB the stall splits into two intervals:

* while the page-table walk is still pending  -> **translation** stall;
* after the walk, while the data is pending   -> **replay** stall.

Loads that hit the STLB charge their stall to **non_replay**; non-load
instructions to **other**.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class StallCategory(enum.Enum):
    TRANSLATION = "translation"
    REPLAY = "replay"
    NON_REPLAY = "non_replay"
    OTHER = "other"


@dataclass
class _CategoryStats:
    total_cycles: int = 0
    events: int = 0
    max_cycles: int = 0

    def add(self, cycles: int) -> None:
        if cycles <= 0:
            return
        self.total_cycles += cycles
        self.events += 1
        if cycles > self.max_cycles:
            self.max_cycles = cycles

    @property
    def avg_cycles(self) -> float:
        return self.total_cycles / self.events if self.events else 0.0


class StallAccounting:
    """Accumulates head-of-ROB stall cycles per category."""

    def __init__(self):
        self.by_category: Dict[StallCategory, _CategoryStats] = {
            cat: _CategoryStats() for cat in StallCategory}

    def record_load_stall(self, stall: int, is_replay: bool,
                          translation_pending: int) -> None:
        """Attribute one load's head-of-ROB stall.

        ``translation_pending`` is the portion of the stall window during
        which the page-table walk had not yet completed (0 for STLB hits).
        """
        if stall <= 0:
            return
        if is_replay:
            translation_part = max(0, min(translation_pending, stall))
            replay_part = stall - translation_part
            self.by_category[StallCategory.TRANSLATION].add(translation_part)
            self.by_category[StallCategory.REPLAY].add(replay_part)
        else:
            self.by_category[StallCategory.NON_REPLAY].add(stall)

    def record_other_stall(self, stall: int) -> None:
        self.by_category[StallCategory.OTHER].add(stall)

    # -- reporting ----------------------------------------------------
    def total(self, category: StallCategory) -> int:
        return self.by_category[category].total_cycles

    def avg(self, category: StallCategory) -> float:
        return self.by_category[category].avg_cycles

    def max(self, category: StallCategory) -> int:
        return self.by_category[category].max_cycles

    def total_stall_cycles(self) -> int:
        return sum(s.total_cycles for s in self.by_category.values())

    def translation_plus_replay(self) -> int:
        """The stall cycles the paper's mechanisms target (Fig 16)."""
        return (self.total(StallCategory.TRANSLATION)
                + self.total(StallCategory.REPLAY))

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {cat.value: {"total": s.total_cycles, "events": s.events,
                            "avg": s.avg_cycles, "max": s.max_cycles}
                for cat, s in self.by_category.items()}
