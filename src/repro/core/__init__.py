"""Core models: single-thread OOO core with ROB-stall attribution, 2-way
SMT, and multi-core with shared LLC/DRAM."""

from repro.core.rob import StallAccounting, StallCategory
from repro.core.ooo_core import OOOCore, CoreResult
from repro.core.smt import SMTCore
from repro.core.multicore import MultiCore

__all__ = ["StallAccounting", "StallCategory", "OOOCore", "CoreResult",
           "SMTCore", "MultiCore"]
