"""Trace-driven out-of-order core with in-order retirement.

Rather than a cycle-by-cycle loop, the core computes per-instruction
dispatch and retire times with O(1) recurrences -- the standard
"ROB-occupancy" approximation:

* an instruction dispatches when a ROB slot is free (the instruction
  ``rob_entries`` older has retired) and a dispatch slot (6/cycle) is free;
* loads issue to the memory system at dispatch (trace-driven addresses are
  ready), so independent misses overlap naturally (MLP);
* instructions retire strictly in order, up to 4/cycle; when the head's
  completion is in the future the gap is a head-of-ROB stall, attributed
  via :class:`repro.core.rob.StallAccounting`.

This reproduces the behaviour the paper measures: a 352-entry ROB amortizes
DTLB misses and short L2 hits, but 200+-cycle replay loads and serial page
walks stall the head.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, Optional, Tuple

from repro.core.rob import StallAccounting, StallCategory
from repro.params import SimConfig
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.trace import KIND_LOAD, KIND_NONMEM, KIND_STORE


@dataclass
class CoreResult:
    """Outcome of one core run (post-warmup region of interest)."""

    instructions: int
    cycles: int
    stalls: StallAccounting
    hierarchy: MemoryHierarchy = field(repr=False, default=None)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def execution_time(self) -> int:
        """Cycles taken for the ROI (the paper's performance metric is the
        reduction in execution time)."""
        return self.cycles

    def speedup_over(self, baseline: "CoreResult") -> float:
        """Normalized performance: baseline time / this time."""
        return baseline.cycles / self.cycles if self.cycles else 0.0


class OOOCore:
    """Single-thread core bound to one memory hierarchy."""

    def __init__(self, config: SimConfig, hierarchy: MemoryHierarchy,
                 cpu_id: int = 0):
        self.config = config
        self.hierarchy = hierarchy
        self.cpu_id = cpu_id
        core = config.core
        self.rob_entries = core.rob_entries
        self.dispatch_width = core.dispatch_width
        self.retire_width = core.retire_width
        self.nonmem_latency = core.nonmem_latency
        from repro import validate
        self.checker = validate.maybe_attach_core(self)

    # ------------------------------------------------------------------
    def run(self, trace, warmup: int = 0,
            limit: Optional[int] = None) -> CoreResult:
        """Execute ``trace``; statistics cover only the post-warmup region.

        ``trace`` is any object with parallel sequences ``ips``, ``kinds``
        and ``addrs`` (see :mod:`repro.workloads.trace`).
        """
        ips, kinds, addrs = trace.ips, trace.kinds, trace.addrs
        deps = trace.deps
        # Numpy-backed traces: convert to plain lists once.  Element-wise
        # list indexing is much faster than numpy scalar extraction, and it
        # yields native ints the memory system can use without casting.
        if hasattr(ips, "tolist"):
            ips = ips.tolist()
        if hasattr(kinds, "tolist"):
            kinds = kinds.tolist()
        if hasattr(addrs, "tolist"):
            addrs = addrs.tolist()
        if hasattr(deps, "tolist"):
            deps = deps.tolist()
        total = len(ips) if limit is None else min(limit, len(ips))
        # Completion of the most recent dependent-chain load: a load with
        # deps[i] set cannot issue before it (pointer chasing).
        chain_completion = 0

        stalls = StallAccounting()
        hierarchy = self.hierarchy
        checker = self.checker
        sampler = hierarchy.sampler
        tracer = hierarchy.tracer
        frontend = hierarchy.frontend
        fetch_hidden = frontend.hidden_latency if frontend else 0
        prev_fetch_line = -1
        rob_entries = self.rob_entries
        dispatch_width = self.dispatch_width
        retire_width = self.retire_width
        nonmem_latency = self.nonmem_latency
        hierarchy_load = hierarchy.load
        hierarchy_store = hierarchy.store
        kind_load, kind_store = KIND_LOAD, KIND_STORE

        dispatch_cycle = 0
        dispatch_slots = 0
        retire_cycle = 0
        retire_slots = 0
        retire_times: Deque[int] = deque()
        roi_start_cycle = 0
        counting = warmup == 0
        if counting and sampler is not None:
            sampler.begin(stalls, roi_start_cycle)
        if counting and tracer is not None:
            tracer.enable()

        for i in range(total):
            if not counting and i == warmup:
                counting = True
                roi_start_cycle = retire_cycle
                hierarchy.reset_stats()
                if sampler is not None:
                    sampler.begin(stalls, roi_start_cycle)
                if tracer is not None:
                    tracer.enable()
            # -- dispatch ------------------------------------------------
            dc = dispatch_cycle
            if len(retire_times) >= rob_entries:
                free_at = retire_times.popleft()
                if free_at > dc:
                    dc = free_at
                    dispatch_slots = 0
            if dc > dispatch_cycle:
                dispatch_cycle = dc
                dispatch_slots = 0
            dispatch_slots += 1
            if dispatch_slots >= dispatch_width:
                dispatch_cycle += 1
                dispatch_slots = 0

            # -- fetch (optional frontend) -------------------------------
            if frontend is not None:
                fetch_line = ips[i] >> 6
                if fetch_line != prev_fetch_line:
                    prev_fetch_line = fetch_line
                    fetch_done = frontend.fetch(ips[i], dc)
                    # An L1I hit is hidden by the fetch pipeline; misses
                    # push dispatch back by the uncovered latency.
                    if fetch_done - dc > fetch_hidden:
                        dc = fetch_done - fetch_hidden
                        dispatch_cycle = dc
                        dispatch_slots = 0

            # -- execute ---------------------------------------------------
            kind = kinds[i]
            is_replay = False
            translation_done = dc
            if kind == kind_load:
                issue_at = dc
                if deps[i] and chain_completion > issue_at:
                    issue_at = chain_completion
                res = hierarchy_load(addrs[i], issue_at, ips[i])
                completion = res.data_done
                is_replay = res.is_replay
                translation_done = res.translation_done
                if deps[i]:
                    chain_completion = completion
            elif kind == kind_store:
                hierarchy_store(addrs[i], dc, ips[i])
                completion = dc + nonmem_latency
            else:
                completion = dc + nonmem_latency

            # -- retire (in order, retire_width per cycle) ---------------
            earliest = retire_cycle
            if retire_slots >= retire_width:
                earliest += 1
            if earliest < dc + 1:
                earliest = dc + 1
            if completion > earliest:
                stall = completion - earliest
                if counting:
                    if kind == KIND_LOAD:
                        stalls.record_load_stall(
                            stall, is_replay,
                            translation_pending=translation_done - earliest)
                        if tracer is not None:
                            tracer.attach_load_stall(
                                earliest, completion, is_replay,
                                translation_done, ip=ips[i])
                    else:
                        stalls.record_other_stall(stall)
                rt = completion
            else:
                rt = earliest
            if rt > retire_cycle:
                retire_cycle = rt
                retire_slots = 1
            else:
                retire_slots += 1
            retire_times.append(rt)
            if checker is not None:
                checker.on_retire(rt, len(retire_times))
            if sampler is not None and counting:
                sampler.on_retire(rt, len(retire_times))

        instructions = total - warmup if warmup < total else 0
        cycles = max(1, retire_cycle - roi_start_cycle)
        if sampler is not None:
            sampler.finalize(retire_cycle)
        return CoreResult(instructions=instructions, cycles=cycles,
                          stalls=stalls, hierarchy=hierarchy)
