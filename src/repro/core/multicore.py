"""Multi-core model (Section V: 8-core multiprogrammed mixes).

Each core has private L1D/L2C, TLBs and page-table walker; all cores share
the LLC and the DRAM channel(s).  Address spaces are disjoint: each core
has its own page table, but all page tables draw frames from one shared
allocator so physical addresses never collide in the shared LLC.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.engine import ThreadState
from repro.core.ooo_core import CoreResult
from repro.params import SimConfig
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.page_table import FrameAllocator, PageTable


class MultiCore:
    """N cores with private L2Cs and a shared LLC/DRAM."""

    def __init__(self, config: SimConfig, num_cores: int):
        if num_cores <= 0:
            raise ValueError("need at least one core")
        import dataclasses
        # Table I: the LLC is 2MB *per slice* (per core), so the shared LLC
        # grows with the core count.  DRAM channels: the paper provisions
        # one per four cores at full scale; at reduced scale cache
        # capacities shrink but DRAM timings do not, leaving each core
        # with a proportionally higher miss *rate*, so we provision one
        # channel per two cores to keep the bandwidth-per-miss ratio
        # comparable.
        llc = dataclasses.replace(config.llc,
                                  size_bytes=config.llc.size_bytes * num_cores,
                                  mshr_entries=config.llc.mshr_entries
                                  * num_cores)
        dram = dataclasses.replace(config.dram,
                                   channels=max(1, num_cores // 2))
        config = config.with_(llc=llc, dram=dram)
        self.config = config
        self.num_cores = num_cores
        allocator = FrameAllocator(seed=config.seed)
        first = MemoryHierarchy(config, page_table=PageTable(allocator))
        self.hierarchies: List[MemoryHierarchy] = [first]
        for _ in range(1, num_cores):
            self.hierarchies.append(
                MemoryHierarchy(config, page_table=PageTable(allocator),
                                shared_llc=first.llc,
                                shared_dram=first.dram))
        self.llc = first.llc
        self.dram = first.dram

    def run(self, traces: Sequence, warmup: int = 0) -> List[CoreResult]:
        """Run one trace per core to completion; per-core results."""
        if len(traces) != self.num_cores:
            raise ValueError(f"need {self.num_cores} traces")
        core = self.config.core
        threads = [
            ThreadState(trace, hier, rob_entries=core.rob_entries,
                        dispatch_width=core.dispatch_width,
                        retire_width=core.retire_width,
                        nonmem_latency=core.nonmem_latency, warmup=warmup)
            for trace, hier in zip(traces, self.hierarchies)]

        stats_reset_done = warmup == 0
        while True:
            runnable = [t for t in threads if not t.finished]
            if not runnable:
                break
            thread = min(runnable, key=lambda t: t.dispatch_cycle)
            thread.step()
            if (not stats_reset_done
                    and all(t.crossed_warmup or t.finished for t in threads)):
                for hier in self.hierarchies:
                    hier.reset_stats()
                stats_reset_done = True

        return [CoreResult(instructions=t.roi_instructions,
                           cycles=t.roi_cycles, stalls=t.stalls,
                           hierarchy=hier)
                for t, hier in zip(threads, self.hierarchies)]
