"""Shared vocabulary of the batch backend's fallback seam.

:class:`FallbackReason` enumerates every way a run can be refused by the
vectorized fast path.  The *same* enum is the engine's
``last_fallback_reason`` type, the ``reason=`` label set of the
``repro_batch_fallback_total`` telemetry series, and the row key of the
fallback table in ``docs/performance.md`` -- one definition, three
surfaces (``tests/test_fallback_enum.py`` pins them against each other).

:class:`BatchStats` is the engine's per-run engagement record: how many
windows drained on the vector path, how much of each window took the
inlined fast path versus a scalar excursion, and -- when the whole run
was refused -- which :class:`FallbackReason` routed it to the scalar
core.  It is part of the public api surface (``repro.api.BatchStats``)
and rides run payloads (``RunSummary.batch``) into the sweep service's
telemetry registry.

This module is dependency-free on purpose: the api facade and the
service import it without pulling in numpy or the engine.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List


class FallbackReason(str, Enum):
    """Why a run executes on the scalar core instead of the batch path.

    Values are stable machine-readable slugs (telemetry label values and
    docs table keys); :data:`REASON_DETAIL` carries the human phrasing.
    """

    #: Static (config-time) refusals -- see ``vector_ineligibility``.
    FRONTEND = "frontend"
    HUGE_PAGES = "huge_pages"
    COMPARISON = "comparison"
    L1D_PREFETCHER = "l1d_prefetcher"
    L1D_POLICY = "l1d_policy"
    L1D_RECALL = "l1d_recall"
    DTLB_RECALL = "dtlb_recall"
    #: Runtime (attachment-time) refusals -- see ``_runtime_reason``.
    CHECKER = "checker"
    SAMPLER_TRACER = "sampler_tracer"
    INSTANCE_PATCH = "instance_patch"

    def __str__(self) -> str:  # reads as the slug in messages/JSON
        return self.value


#: Human-readable detail per reason (docs table, error surfaces).  Every
#: member must have an entry -- the drift test enforces it.
REASON_DETAIL: Dict[FallbackReason, str] = {
    FallbackReason.FRONTEND:
        "frontend modelled (per-instruction fetch path)",
    FallbackReason.HUGE_PAGES:
        "huge-page policy active (per-access key/sub split)",
    FallbackReason.COMPARISON:
        "comparison mode active (predictor side effects)",
    FallbackReason.L1D_PREFETCHER:
        "L1D prefetcher attached (per-hit training)",
    FallbackReason.L1D_POLICY:
        "non-LRU L1D policy (fast path models LRU stamps)",
    FallbackReason.L1D_RECALL:
        "L1D recall tracking attached",
    FallbackReason.DTLB_RECALL:
        "DTLB recall/observer attached",
    FallbackReason.CHECKER:
        "runtime checkers attached (per-event hooks)",
    FallbackReason.SAMPLER_TRACER:
        "sampler/tracer attached (per-event hooks)",
    FallbackReason.INSTANCE_PATCH:
        "instance-patched hot method (per-access shadowing)",
}


#: Miss-cohort-size histogram bounds (scalar excursions per window,
#: ``le`` semantics).  Shared verbatim with the service's
#: ``repro_batch_miss_cohort_size`` histogram so :meth:`BatchStats`
#: counts merge positionally; the trailing implicit +Inf bucket catches
#: windows wider than the default 1024.
COHORT_BUCKETS = (0, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass
class BatchStats:
    """Engagement record of one :class:`BatchCore` run (stable surface).

    All counters cover the whole run (warmup included -- engagement is a
    property of execution, not of the ROI).  ``fallbacks`` is non-empty
    exactly when the run executed on the scalar core; then every other
    field stays zero.
    """

    #: Windows drained on the vector path.
    windows: int = 0
    #: Instructions covered by those windows.
    instructions: int = 0
    #: Memory accesses completed on the inlined DTLB-hit/L1D-hit path.
    fast_hits: int = 0
    #: Fast-path completions that merged with an in-flight MSHR fill.
    fast_merges: int = 0
    #: Memory accesses drained through the full scalar hierarchy.
    scalar_excursions: int = 0
    #: Accesses classified into the page-walk cohort (DTLB-mirror miss).
    walk_cohort: int = 0
    #: Unique VPNs whose walk descent was precomputed for the cohort.
    precomputed_walks: int = 0
    #: Full-run fallback counts keyed by :class:`FallbackReason` value.
    fallbacks: Dict[str, int] = field(default_factory=dict)
    #: Miss-cohort-size histogram: one count per :data:`COHORT_BUCKETS`
    #: bound plus a trailing overflow slot (non-cumulative).
    cohort_sizes: List[int] = field(
        default_factory=lambda: [0] * (len(COHORT_BUCKETS) + 1))

    def record_fallback(self, reason: FallbackReason) -> None:
        key = str(reason)
        self.fallbacks[key] = self.fallbacks.get(key, 0) + 1

    def record_window(self, instructions: int, fast_hits: int,
                      fast_merges: int, scalar_excursions: int) -> None:
        self.windows += 1
        self.instructions += instructions
        self.fast_hits += fast_hits
        self.fast_merges += fast_merges
        self.scalar_excursions += scalar_excursions
        self.cohort_sizes[bisect_left(COHORT_BUCKETS,
                                      scalar_excursions)] += 1

    @property
    def fell_back(self) -> bool:
        """True when the run executed wholesale on the scalar core."""
        return bool(self.fallbacks)

    @property
    def excursion_fraction(self) -> float:
        """Fraction of drained memory accesses that left the fast path."""
        total = self.fast_hits + self.scalar_excursions
        return self.scalar_excursions / total if total else 0.0

    def to_dict(self) -> Dict:
        """Plain-JSON form (run payloads, bench documents)."""
        return {"windows": self.windows,
                "instructions": self.instructions,
                "fast_hits": self.fast_hits,
                "fast_merges": self.fast_merges,
                "scalar_excursions": self.scalar_excursions,
                "walk_cohort": self.walk_cohort,
                "precomputed_walks": self.precomputed_walks,
                "fallbacks": dict(self.fallbacks),
                "cohort_buckets": list(COHORT_BUCKETS),
                "cohort_sizes": list(self.cohort_sizes)}
