"""2-way SMT core (Section V, Fig 17).

Two threads share the core's structures (each gets half the ROB and half
the dispatch/retire bandwidth -- a static-partition SMT model) and the
entire memory hierarchy: TLBs, caches, page-table walker and DRAM.  The
scheduler steps whichever thread's dispatch clock is behind, so memory
accesses from the two threads interleave in approximate global time order.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.engine import ThreadState
from repro.core.ooo_core import CoreResult
from repro.params import SimConfig
from repro.uncore.hierarchy import MemoryHierarchy


class SMTCore:
    """Two hardware threads on one core, sharing one memory hierarchy."""

    def __init__(self, config: SimConfig, hierarchy: MemoryHierarchy):
        self.config = config
        self.hierarchy = hierarchy

    def run(self, traces: Sequence, warmup: int = 0) -> List[CoreResult]:
        """Run the two traces to completion; returns per-thread results."""
        if len(traces) != 2:
            raise ValueError("the SMT model is 2-way")
        core = self.config.core
        threads = [
            ThreadState(trace, self.hierarchy,
                        rob_entries=core.rob_entries // 2,
                        dispatch_width=max(1, core.dispatch_width // 2),
                        retire_width=max(1, core.retire_width // 2),
                        nonmem_latency=core.nonmem_latency,
                        warmup=warmup)
            for trace in traces]

        stats_reset_done = warmup == 0
        while True:
            runnable = [t for t in threads if not t.finished]
            if not runnable:
                break
            # Step the thread furthest behind in dispatch time.
            thread = min(runnable, key=lambda t: t.dispatch_cycle)
            thread.step()
            if (not stats_reset_done
                    and all(t.crossed_warmup or t.finished for t in threads)):
                self.hierarchy.reset_stats()
                stats_reset_done = True

        return [CoreResult(instructions=t.roi_instructions,
                           cycles=t.roi_cycles, stalls=t.stalls,
                           hierarchy=self.hierarchy)
                for t in threads]
