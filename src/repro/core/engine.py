"""Steppable per-thread execution state.

:class:`ThreadState` is the instruction-at-a-time version of the recurrence
model in :mod:`repro.core.ooo_core`, used where multiple instruction
streams must interleave in (approximate) global time order: SMT threads
sharing one core, and cores sharing an LLC.  The scheduler always steps the
thread whose dispatch clock is furthest behind, which keeps memory-system
state transitions ordered across streams.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.core.rob import StallAccounting
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.trace import KIND_LOAD, KIND_STORE


def make_core(config, hierarchy: MemoryHierarchy, cpu_id: int = 0):
    """Backend-selecting core factory (``config.backend``).

    ``"python"`` builds the reference scalar :class:`OOOCore`;
    ``"numpy"`` builds the window-draining vectorized
    :class:`repro.core.batch_engine.BatchCore`, which itself falls back
    to the scalar core whenever the configuration or attached
    instrumentation demands per-event fidelity.  Multi-stream execution
    (SMT, multicore) always uses the scalar :class:`ThreadState` path.
    """
    if config.backend == "numpy":
        from repro.core.batch_engine import BatchCore
        return BatchCore(config, hierarchy, cpu_id)
    from repro.core.ooo_core import OOOCore
    return OOOCore(config, hierarchy, cpu_id)


class ThreadState:
    """One instruction stream executing on (a partition of) a core."""

    def __init__(self, trace, hierarchy: MemoryHierarchy, rob_entries: int,
                 dispatch_width: int, retire_width: int,
                 nonmem_latency: int = 1, warmup: int = 0):
        self.trace = trace
        self.hierarchy = hierarchy
        self.rob_entries = rob_entries
        self.dispatch_width = dispatch_width
        self.retire_width = retire_width
        self.nonmem_latency = nonmem_latency
        self.warmup = warmup

        self.frontend = hierarchy.frontend
        self._fetch_hidden = (self.frontend.hidden_latency
                              if self.frontend else 0)
        self._prev_fetch_line = -1

        self.index = 0
        self.chain_completion = 0
        self.dispatch_cycle = 0
        self.dispatch_slots = 0
        self.retire_cycle = 0
        self.retire_slots = 0
        self.retire_times: Deque[int] = deque()
        self.stalls = StallAccounting()
        self.roi_start_cycle = 0
        self.counting = warmup == 0
        self.crossed_warmup = warmup == 0

    @property
    def finished(self) -> bool:
        return self.index >= len(self.trace)

    @property
    def roi_instructions(self) -> int:
        return max(0, self.index - self.warmup)

    @property
    def roi_cycles(self) -> int:
        return max(1, self.retire_cycle - self.roi_start_cycle)

    def step(self) -> None:
        """Execute the next instruction of this thread."""
        i = self.index
        trace = self.trace
        if not self.counting and i == self.warmup:
            self.counting = True
            self.crossed_warmup = True
            self.roi_start_cycle = self.retire_cycle

        dc = self.dispatch_cycle
        if len(self.retire_times) >= self.rob_entries:
            free_at = self.retire_times.popleft()
            if free_at > dc:
                dc = free_at
                self.dispatch_slots = 0
        if dc > self.dispatch_cycle:
            self.dispatch_cycle = dc
            self.dispatch_slots = 0
        self.dispatch_slots += 1
        if self.dispatch_slots >= self.dispatch_width:
            self.dispatch_cycle += 1
            self.dispatch_slots = 0

        if self.frontend is not None:
            fetch_line = trace.ips[i] >> 6
            if fetch_line != self._prev_fetch_line:
                self._prev_fetch_line = fetch_line
                fetch_done = self.frontend.fetch(int(trace.ips[i]), dc)
                if fetch_done - dc > self._fetch_hidden:
                    dc = fetch_done - self._fetch_hidden
                    self.dispatch_cycle = dc
                    self.dispatch_slots = 0

        kind = trace.kinds[i]
        is_replay = False
        translation_done = dc
        if kind == KIND_LOAD:
            issue_at = dc
            if trace.deps[i] and self.chain_completion > issue_at:
                issue_at = self.chain_completion
            res = self.hierarchy.load(int(trace.addrs[i]), issue_at,
                                      int(trace.ips[i]))
            completion = res.data_done
            is_replay = res.is_replay
            translation_done = res.translation_done
            if trace.deps[i]:
                self.chain_completion = completion
        elif kind == KIND_STORE:
            self.hierarchy.store(int(trace.addrs[i]), dc, int(trace.ips[i]))
            completion = dc + self.nonmem_latency
        else:
            completion = dc + self.nonmem_latency

        earliest = self.retire_cycle
        if self.retire_slots >= self.retire_width:
            earliest += 1
        if earliest < dc + 1:
            earliest = dc + 1
        if completion > earliest:
            stall = completion - earliest
            if self.counting:
                if kind == KIND_LOAD:
                    self.stalls.record_load_stall(
                        stall, is_replay,
                        translation_pending=translation_done - earliest)
                else:
                    self.stalls.record_other_stall(stall)
            rt = completion
        else:
            rt = earliest
        if rt > self.retire_cycle:
            self.retire_cycle = rt
            self.retire_slots = 1
        else:
            self.retire_slots += 1
        self.retire_times.append(rt)
        self.index = i + 1
