"""Instruction-side fetch path: ITLB + L1I (Table I components).

The paper's workloads are data-bound -- their code footprints live in the
L1I -- so the frontend is off by default (``SimConfig.model_frontend``).
When enabled, the core consults the frontend whenever fetch crosses into
a new instruction cache line; an L1I hit is hidden by the fetch pipeline,
while misses (and ITLB-missing walks, which share the STLB and page-table
walker with the data side) push dispatch back.
"""

from __future__ import annotations

from repro.cache.cache import Cache
from repro.memsys.request import AccessType, MemoryRequest
from repro.params import LINE_SHIFT, PAGE_SHIFT, SimConfig
from repro.vm.tlb import TLB


class Frontend:
    """Instruction fetch through ITLB -> (shared STLB/walker) -> L1I."""

    def __init__(self, config: SimConfig, mmu, l2c):
        self.itlb = TLB(config.itlb)
        self.l1i = Cache(config.l1i, l2c)
        self.mmu = mmu
        self.fetches = 0
        self.itlb_walks = 0

    def fetch(self, ip: int, cycle: int) -> int:
        """Fetch the line containing ``ip``; returns the fetch-done cycle."""
        self.fetches += 1
        vpn = ip >> PAGE_SHIFT
        t = cycle + self.itlb.latency
        pfn = self.itlb.lookup(vpn)
        if pfn is None:
            # ITLB miss: probe the unified STLB; walk on a miss (shared
            # page-table walker, code pages are real pages).
            t += self.mmu.stlb.latency
            pfn = self.mmu.stlb.lookup(vpn)
            if pfn is None:
                self.itlb_walks += 1
                walk = self.mmu.walker.walk(ip, t)
                t = walk.done_cycle + self.mmu.stlb_fill_latency
                pfn = walk.pfn
                self.mmu.stlb.fill(vpn, pfn)
            self.itlb.fill(vpn, pfn)
        paddr = (pfn << PAGE_SHIFT) | (ip & ((1 << PAGE_SHIFT) - 1))
        req = MemoryRequest(address=paddr, cycle=t,
                            access_type=AccessType.IFETCH, ip=ip)
        return self.l1i.access(req)

    @property
    def hidden_latency(self) -> int:
        """Fetch latency covered by the pipeline (an L1I hit's worth)."""
        return self.itlb.latency + self.l1i.latency
