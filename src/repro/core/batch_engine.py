"""Vectorized batch-simulation backend (``SimConfig.backend == "numpy"``).

:class:`BatchCore` is a drop-in replacement for
:class:`repro.core.ooo_core.OOOCore` that processes the trace in windows.
Each window is classified once with the numpy kernels in
:mod:`repro.cache.batch` against start-of-window snapshots of the DTLB
and L1D: set-index/VPN split, TLB probe, physical line computation and
L1D tag match all happen as array operations, yielding a *fast-path
candidate* mask plus per-access VPN/line columns.  The window then drains
through one fused scalar loop:

* a candidate access is revalidated with three O(1) probes (VPN still in
  its DTLB set, line still resident, no MSHR fill in flight) and, when
  they hold, takes an inlined hit path -- engine recurrences plus the
  exact side-effect set of the scalar DTLB-hit/L1D-hit path (LRU/TLB
  stamps, reused/dirty bits) with counters accumulated per window;
* everything else (misses, walks, MSHR conflicts, accesses invalidated
  by an earlier event in the window) goes through the *real*
  ``hierarchy.load``/``store`` -- identical by construction.

Bit-identity argument (pinned by ``tests/test_backend_parity.py`` and
the ``repro.validate`` fuzz axis):

* Page-table mappings are immutable once allocated, so the physical line
  computed at classification time stays correct for the whole window;
  only *residency* can change, and the revalidation probes check exactly
  that against live state.  A stale "candidate" therefore falls through
  to the scalar path rather than mis-simulating.
* The inlined hit path reproduces the scalar side effects exactly: the
  DTLB/LRU clocks advance by one per touch (kept in locals, synced
  around every scalar excursion), dict stamp assignment preserves
  insertion order, reused/dirty writes are idempotent, and the deferred
  counter adds are plain integer arithmetic whose total is
  order-independent.
* Configurations with per-hit side effects the fast path does not model
  (frontend, huge pages, L1D prefetchers, non-LRU L1D policy, comparison
  modes, attached checkers/samplers/tracers, instance-patched hot
  methods) are refused wholesale: :func:`vector_ineligibility` routes
  the entire run through an ordinary :class:`OOOCore`.

The engine recurrences below are verbatim copies of ``OOOCore.run`` --
divergence there is divergence in cycles, which the parity suite pins.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.cache.batch import TLBMirror, flag_view
from repro.core.ooo_core import CoreResult, OOOCore
from repro.core.rob import StallAccounting
from repro.params import LINE_SHIFT, PAGE_SHIFT, SimConfig
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.trace import KIND_LOAD, KIND_NONMEM

#: Classification window (instructions).  Large enough to amortize the
#: numpy call overhead (~tens of microseconds per window), small enough
#: that start-of-window residency snapshots stay mostly fresh.
DEFAULT_WINDOW = 1024

_PAGE_OFF_MASK = (1 << PAGE_SHIFT) - 1
_PFN_TO_LINE = PAGE_SHIFT - LINE_SHIFT


def vector_ineligibility(config: SimConfig,
                         hierarchy: MemoryHierarchy) -> Optional[str]:
    """Why this machine cannot take the vectorized fast path (or None).

    Every condition here names scalar state or a per-hit side effect the
    fast path does not model; ineligible runs execute on the scalar core
    and remain bit-identical by construction.
    """
    if config.model_frontend or hierarchy.frontend is not None:
        return "frontend modelled (per-instruction fetch path)"
    if config.huge_page_policy != "none" \
            or hierarchy.page_table.huge_page_predicate is not None:
        return "huge-page policy active (per-access key/sub split)"
    if config.comparison != "none" \
            or hierarchy.mmu.dead_page_predictor is not None:
        return "comparison mode active (predictor side effects)"
    l1d = hierarchy.l1d
    if config.l1d_prefetcher != "none" or l1d.prefetcher is not None \
            or hierarchy.ipcp is not None:
        return "L1D prefetcher attached (per-hit training)"
    if l1d.policy.name != "lru":
        return f"L1D policy {l1d.policy.name!r} (fast path models LRU)"
    if l1d.recall_translation is not None:
        return "L1D recall tracking attached"
    dtlb = hierarchy.mmu.dtlb
    if dtlb.recall is not None or dtlb.observer is not None:
        return "DTLB recall/observer attached"
    return None


class BatchCore:
    """Windowed vectorized core, bit-identical to :class:`OOOCore`."""

    backend = "numpy"

    def __init__(self, config: SimConfig, hierarchy: MemoryHierarchy,
                 cpu_id: int = 0, window: int = DEFAULT_WINDOW):
        self.config = config
        self.hierarchy = hierarchy
        self.cpu_id = cpu_id
        self.window = window
        core = config.core
        self.rob_entries = core.rob_entries
        self.dispatch_width = core.dispatch_width
        self.retire_width = core.retire_width
        self.nonmem_latency = core.nonmem_latency
        #: Why the last ``run`` fell back to the scalar core (or None).
        self.last_fallback_reason: Optional[str] = None
        self._static_reason = vector_ineligibility(config, hierarchy)
        self._scalar_core: Optional[OOOCore] = None
        self._dtlb_mirror: Optional[TLBMirror] = None

    # ------------------------------------------------------------------
    def _scalar(self) -> OOOCore:
        if self._scalar_core is None:
            self._scalar_core = OOOCore(self.config, self.hierarchy,
                                        self.cpu_id)
        return self._scalar_core

    def _runtime_reason(self) -> Optional[str]:
        h = self.hierarchy
        if h.checker is not None:
            return "runtime checkers attached (per-event hooks)"
        if h.sampler is not None or h.tracer is not None \
                or h.mmu.tracer is not None:
            return "sampler/tracer attached (per-event hooks)"
        # The oracle and some tests shadow bound methods on *instances*;
        # a shadowed hot method means per-access hooks we must honour.
        for obj, name in ((h, "load"), (h, "store"), (h.l1d, "access"),
                          (h.mmu, "translate"), (h.mmu.dtlb, "lookup")):
            if name in getattr(obj, "__dict__", {}):
                return f"instance-patched {type(obj).__name__}.{name}"
        return None

    # ------------------------------------------------------------------
    def run(self, trace, warmup: int = 0,
            limit: Optional[int] = None) -> CoreResult:
        """Execute ``trace``; same contract as :meth:`OOOCore.run`."""
        reason = self._static_reason or self._runtime_reason()
        if reason is not None:
            self.last_fallback_reason = reason
            return self._scalar().run(trace, warmup, limit)
        self.last_fallback_reason = None

        hierarchy = self.hierarchy
        trace_ips, trace_kinds = trace.ips, trace.kinds
        trace_addrs, trace_deps = trace.addrs, trace.deps
        # Kernels want arrays; the drain loop wants plain lists (native
        # ints -- np.int64 leaking into cycle arithmetic would poison
        # JSON exports downstream).
        kinds_np = np.asarray(trace_kinds, dtype=np.int8)
        addrs_np = np.asarray(trace_addrs, dtype=np.int64)
        ips_l = (trace_ips.tolist() if hasattr(trace_ips, "tolist")
                 else list(trace_ips))
        kinds_l = kinds_np.tolist()
        addrs_l = addrs_np.tolist()
        deps_l = (trace_deps.tolist() if hasattr(trace_deps, "tolist")
                  else list(trace_deps))

        l1d = hierarchy.l1d
        mmu = hierarchy.mmu
        dtlb = mmu.dtlb
        if self._dtlb_mirror is None or self._dtlb_mirror.tlb is not dtlb:
            self._dtlb_mirror = TLBMirror(dtlb)
        dtlb_mirror = self._dtlb_mirror
        store = l1d.store
        pref_view = flag_view(store.is_prefetch)
        dead_view = flag_view(store.dead_on_hit)

        # Live scalar structures the fast path touches directly.
        dtlb_sets = dtlb._sets
        dtlb_num_sets = dtlb.num_sets
        slot_of_get = store.slot_of.get
        inflight = l1d.mshr._inflight
        reused_col = store.reused
        dirty_col = store.dirty
        policy = l1d.policy
        pstamp = policy._stamp
        dtlb_lat = dtlb.latency
        l1d_lat = l1d.latency
        hierarchy_load = hierarchy.load
        hierarchy_store = hierarchy.store
        stats = l1d.stats
        resp_counts = hierarchy.response_distribution.counts["non_replay"]

        total = len(ips_l)
        if limit is not None:
            total = min(limit, total)

        stalls = StallAccounting()
        record_load = stalls.record_load_stall
        record_other = stalls.record_other_stall
        rob_entries = self.rob_entries
        dispatch_width = self.dispatch_width
        retire_width = self.retire_width
        nonmem_latency = self.nonmem_latency
        kind_load, kind_nonmem = KIND_LOAD, KIND_NONMEM

        chain_completion = 0
        dispatch_cycle = 0
        dispatch_slots = 0
        retire_cycle = 0
        retire_slots = 0
        retire_times: Deque[int] = deque()
        popleft = retire_times.popleft
        append = retire_times.append
        n_rt = 0
        roi_start_cycle = 0
        counting = warmup == 0
        window = self.window

        lo = 0
        while lo < total:
            if not counting and lo == warmup:
                counting = True
                roi_start_cycle = retire_cycle
                hierarchy.reset_stats()
                # reset_stats rebinds these objects; re-capture them.
                stats = l1d.stats
                resp_counts = hierarchy.response_distribution.counts[
                    "non_replay"]
            hi = lo + window
            if hi > total:
                hi = total
            if not counting and hi > warmup:
                hi = warmup  # windows never straddle the ROI boundary

            # -- classify window [lo, hi) with the array kernels --------
            # The DTLB probe is the workhorse: it yields both the hit
            # mask and the PFNs, letting the physical line addresses be
            # computed vectorially for the whole window.  L1D residency
            # and MSHR conflicts are *not* pre-screened here -- the drain
            # loop's O(1) dict probes decide those authoritatively, and
            # a vector pre-screen would only duplicate them against a
            # snapshot that same-window fills/evictions invalidate.
            addrs_w = addrs_np[lo:hi]
            kinds_w = kinds_np[lo:hi]
            vpns_w = addrs_w >> PAGE_SHIFT
            dhit, pfns = dtlb_mirror.probe(vpns_w)
            lines_w = (pfns << _PFN_TO_LINE) | ((addrs_w & _PAGE_OFF_MASK)
                                                >> LINE_SHIFT)
            cand = (kinds_w != kind_nonmem) & dhit
            # ATP/TEMPO-style fills would set these columns; eligible
            # configs never do, but a live check keeps the path honest.
            if pref_view.any() or dead_view.any():
                cand &= False
            cand_l = cand.tolist()
            vpns_l = vpns_w.tolist()
            lines_l = lines_w.tolist()

            # Per-window deferred counters (flushed after the loop).
            n_fast_mem = 0
            n_fast_loads = 0
            clock_d = dtlb._clock
            clock_p = policy._clock

            # -- fused drain loop ---------------------------------------
            for i in range(lo, hi):
                # dispatch (verbatim OOOCore recurrence)
                dc = dispatch_cycle
                if n_rt >= rob_entries:
                    free_at = popleft()
                    n_rt -= 1
                    if free_at > dc:
                        dc = free_at
                        dispatch_slots = 0
                if dc > dispatch_cycle:
                    dispatch_cycle = dc
                    dispatch_slots = 0
                dispatch_slots += 1
                if dispatch_slots >= dispatch_width:
                    dispatch_cycle += 1
                    dispatch_slots = 0

                kind = kinds_l[i]
                is_load = kind == kind_load
                if kind == kind_nonmem:
                    completion = dc + nonmem_latency
                    # retire (shared epilogue below)
                    earliest = retire_cycle
                    if retire_slots >= retire_width:
                        earliest += 1
                    if earliest < dc + 1:
                        earliest = dc + 1
                    if completion > earliest:
                        if counting:
                            record_other(completion - earliest)
                        rt = completion
                    else:
                        rt = earliest
                    if rt > retire_cycle:
                        retire_cycle = rt
                        retire_slots = 1
                    else:
                        retire_slots += 1
                    append(rt)
                    n_rt += 1
                    continue

                j = i - lo
                if cand_l[j]:
                    vpn = vpns_l[j]
                    line = lines_l[j]
                    entries = dtlb_sets[vpn % dtlb_num_sets]
                    slot = slot_of_get(line)
                    if vpn in entries and slot is not None \
                            and line not in inflight:
                        # -- inlined DTLB-hit/L1D-hit path --------------
                        if is_load:
                            issue_at = dc
                            if deps_l[i] and chain_completion > issue_at:
                                issue_at = chain_completion
                            translation_done = issue_at + dtlb_lat
                            completion = translation_done + l1d_lat
                            if deps_l[i]:
                                chain_completion = completion
                            n_fast_loads += 1
                        else:
                            completion = dc + nonmem_latency
                        n_fast_mem += 1
                        clock_d += 1
                        entries[vpn] = clock_d
                        reused_col[slot] = 1
                        if not is_load:
                            dirty_col[slot] = 1
                        clock_p += 1
                        pstamp[slot] = clock_p

                        earliest = retire_cycle
                        if retire_slots >= retire_width:
                            earliest += 1
                        if earliest < dc + 1:
                            earliest = dc + 1
                        if completion > earliest:
                            if counting:
                                if is_load:
                                    record_load(
                                        completion - earliest, False,
                                        translation_pending=translation_done
                                        - earliest)
                                else:
                                    record_other(completion - earliest)
                            rt = completion
                        else:
                            rt = earliest
                        if rt > retire_cycle:
                            retire_cycle = rt
                            retire_slots = 1
                        else:
                            retire_slots += 1
                        append(rt)
                        n_rt += 1
                        continue

                # -- full scalar excursion (misses, walks, conflicts,
                #    revalidation failures) ----------------------------
                dtlb._clock = clock_d
                policy._clock = clock_p
                is_replay = False
                translation_done = dc
                if is_load:
                    issue_at = dc
                    if deps_l[i] and chain_completion > issue_at:
                        issue_at = chain_completion
                    res = hierarchy_load(addrs_l[i], issue_at, ips_l[i])
                    completion = res.data_done
                    is_replay = res.is_replay
                    translation_done = res.translation_done
                    if deps_l[i]:
                        chain_completion = completion
                else:
                    hierarchy_store(addrs_l[i], dc, ips_l[i])
                    completion = dc + nonmem_latency
                clock_d = dtlb._clock
                clock_p = policy._clock

                earliest = retire_cycle
                if retire_slots >= retire_width:
                    earliest += 1
                if earliest < dc + 1:
                    earliest = dc + 1
                if completion > earliest:
                    if counting:
                        if is_load:
                            record_load(
                                completion - earliest, is_replay,
                                translation_pending=translation_done
                                - earliest)
                        else:
                            record_other(completion - earliest)
                    rt = completion
                else:
                    rt = earliest
                if rt > retire_cycle:
                    retire_cycle = rt
                    retire_slots = 1
                else:
                    retire_slots += 1
                append(rt)
                n_rt += 1

            # -- flush deferred fast-path state -------------------------
            dtlb._clock = clock_d
            policy._clock = clock_p
            if n_fast_mem:
                n_fast_stores = n_fast_mem - n_fast_loads
                hierarchy.loads += n_fast_loads
                hierarchy.stores += n_fast_stores
                if n_fast_loads:
                    # Only loads record a response-distribution sample
                    # (stores are buffered; see MemoryHierarchy.store).
                    resp_counts["L1D"] += n_fast_loads
                mmu.translations += n_fast_mem
                dtlb.accesses += n_fast_mem
                dtlb.hits += n_fast_mem
                stats.accesses["non_replay"] += n_fast_mem
                stats.hits["non_replay"] += n_fast_mem
            lo = hi

        instructions = total - warmup if warmup < total else 0
        cycles = max(1, retire_cycle - roi_start_cycle)
        return CoreResult(instructions=instructions, cycles=cycles,
                          stalls=stalls, hierarchy=hierarchy)
