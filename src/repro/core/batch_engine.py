"""Vectorized batch-simulation backend (``SimConfig.backend == "numpy"``).

:class:`BatchCore` is a drop-in replacement for
:class:`repro.core.ooo_core.OOOCore` that processes the trace in windows.
Each window is classified once with the numpy kernels in
:mod:`repro.cache.batch` against start-of-window snapshots of the DTLB
and L1D: set-index/VPN split, TLB probe, physical line computation and
L1D tag match all happen as array operations.  Classification splits the
window into two cohorts:

* the *hit cohort* (DTLB-mirror hits) carries precomputed physical line
  addresses;
* the *miss cohort* (DTLB-mirror misses) is the page-walk feed: its
  VPNs are deduplicated in first-occurrence order and their radix
  descents precomputed in one batch
  (:meth:`PageTable.walk_entries_batch`), so the walker's in-drain
  ``walk_entries`` calls become cache lookups.

The window then drains through one fused scalar loop:

* an access is revalidated with O(1) probes against *live* state -- VPN
  still (or newly) resident in its DTLB set, line resident in the L1D --
  and, when they hold, takes an inlined hit path: engine recurrences
  plus the exact side-effect set of the scalar DTLB-hit/L1D-hit path
  (LRU/TLB stamps, reused/dirty bits, the MSHR merge probe) with
  counters accumulated per window.  The live probe means accesses whose
  page was walked *earlier in the same window* still take the fast path
  even though the start-of-window mirror called them misses;
* everything else (walks, L1D misses, conflicts) goes through the
  *real* ``hierarchy.load``/``store`` -- identical by construction.

Bit-identity argument (pinned by ``tests/test_backend_parity.py`` and
the ``repro.validate`` fuzz axis):

* Page-table mappings are immutable once allocated, so a physical line
  computed at classification time stays correct for the whole window;
  only *residency* can change, and the revalidation probes check exactly
  that against live dicts.  A stale "candidate" therefore falls through
  to the scalar path rather than mis-simulating.
* Walk precompute preserves the allocation trajectory: during an
  eligible run, ``walk_entries`` is the only allocating call site, and a
  never-allocated VPN cannot be resident in any TLB -- so its first
  in-window occurrence is necessarily in the miss cohort, and the
  cohort's first-occurrence order *is* the scalar first-walk order.
  Precomputing the cohort's descents therefore performs the same
  allocations in the same order; already-allocated VPNs are pure
  lookups whose order is irrelevant.  The cache is attached to the
  walker only while an eligible ``run`` is draining (and only while no
  huge-page predicate is installed).
* The inlined hit path reproduces the scalar side effects exactly: the
  DTLB/LRU clocks advance by one per touch (kept in locals, synced
  around every scalar excursion), dict stamp assignment preserves
  insertion order, reused/dirty writes are idempotent, the MSHR merge
  probe replicates ``_handle_hit``'s inline check (including the merges
  counter and the fill-completion max), and the deferred counter adds
  are plain integer arithmetic whose total is order-independent.
* Configurations with per-hit side effects the fast path does not model
  (frontend, huge pages, L1D prefetchers, non-LRU L1D policy, comparison
  modes, attached checkers/samplers/tracers, instance-patched hot
  methods) are refused wholesale: :func:`vector_ineligibility` routes
  the entire run through an ordinary :class:`OOOCore`, recording a
  :class:`repro.core.fallback.FallbackReason`.

The engine recurrences below are verbatim copies of ``OOOCore.run`` --
divergence there is divergence in cycles, which the parity suite pins.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.cache.batch import TLBMirror, first_occurrence_unique, flag_view
from repro.core.fallback import BatchStats, FallbackReason
from repro.core.ooo_core import CoreResult, OOOCore
from repro.core.rob import StallAccounting
from repro.params import LINE_SHIFT, PAGE_SHIFT, SimConfig
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.trace import KIND_LOAD, KIND_NONMEM

#: Classification window (instructions).  Large enough to amortize the
#: numpy call overhead (~tens of microseconds per window), small enough
#: that start-of-window residency snapshots stay mostly fresh.
DEFAULT_WINDOW = 1024

_PAGE_OFF_MASK = (1 << PAGE_SHIFT) - 1
_PFN_TO_LINE = PAGE_SHIFT - LINE_SHIFT


def vector_ineligibility(config: SimConfig,
                         hierarchy: MemoryHierarchy
                         ) -> Optional[FallbackReason]:
    """Why this machine cannot take the vectorized fast path (or None).

    Every condition here names scalar state or a per-hit side effect the
    fast path does not model; ineligible runs execute on the scalar core
    and remain bit-identical by construction.
    """
    if config.model_frontend or hierarchy.frontend is not None:
        return FallbackReason.FRONTEND
    if config.huge_page_policy != "none" \
            or hierarchy.page_table.huge_page_predicate is not None:
        return FallbackReason.HUGE_PAGES
    if config.comparison != "none" \
            or hierarchy.mmu.dead_page_predictor is not None:
        return FallbackReason.COMPARISON
    l1d = hierarchy.l1d
    if config.l1d_prefetcher != "none" or l1d.prefetcher is not None \
            or hierarchy.ipcp is not None:
        return FallbackReason.L1D_PREFETCHER
    if l1d.policy.name != "lru":
        return FallbackReason.L1D_POLICY
    if l1d.recall_translation is not None:
        return FallbackReason.L1D_RECALL
    dtlb = hierarchy.mmu.dtlb
    if dtlb.recall is not None or dtlb.observer is not None:
        return FallbackReason.DTLB_RECALL
    return None


class BatchCore:
    """Windowed vectorized core, bit-identical to :class:`OOOCore`."""

    backend = "numpy"

    def __init__(self, config: SimConfig, hierarchy: MemoryHierarchy,
                 cpu_id: int = 0, window: int = DEFAULT_WINDOW):
        self.config = config
        self.hierarchy = hierarchy
        self.cpu_id = cpu_id
        self.window = window
        core = config.core
        self.rob_entries = core.rob_entries
        self.dispatch_width = core.dispatch_width
        self.retire_width = core.retire_width
        self.nonmem_latency = core.nonmem_latency
        #: Why the last ``run`` fell back to the scalar core (or None).
        self.last_fallback_reason: Optional[FallbackReason] = None
        #: Engagement record of the last ``run`` (stable api surface).
        self.batch_stats = BatchStats()
        self._static_reason = vector_ineligibility(config, hierarchy)
        self._scalar_core: Optional[OOOCore] = None
        self._dtlb_mirror: Optional[TLBMirror] = None

    # ------------------------------------------------------------------
    def _scalar(self) -> OOOCore:
        if self._scalar_core is None:
            self._scalar_core = OOOCore(self.config, self.hierarchy,
                                        self.cpu_id)
        return self._scalar_core

    def _runtime_reason(self) -> Optional[FallbackReason]:
        h = self.hierarchy
        if h.checker is not None:
            return FallbackReason.CHECKER
        if h.sampler is not None or h.tracer is not None \
                or h.mmu.tracer is not None:
            return FallbackReason.SAMPLER_TRACER
        # The oracle and some tests shadow bound methods on *instances*;
        # a shadowed hot method means per-access hooks we must honour.
        for obj, name in ((h, "load"), (h, "store"), (h.l1d, "access"),
                          (h.mmu, "translate"), (h.mmu.dtlb, "lookup")):
            if name in getattr(obj, "__dict__", {}):
                return FallbackReason.INSTANCE_PATCH
        return None

    # ------------------------------------------------------------------
    def run(self, trace, warmup: int = 0,
            limit: Optional[int] = None) -> CoreResult:
        """Execute ``trace``; same contract as :meth:`OOOCore.run`."""
        self.batch_stats = bstats = BatchStats()
        reason = self._static_reason or self._runtime_reason()
        if reason is not None:
            self.last_fallback_reason = reason
            bstats.record_fallback(reason)
            return self._scalar().run(trace, warmup, limit)
        self.last_fallback_reason = None

        hierarchy = self.hierarchy
        mmu = hierarchy.mmu
        walker = mmu.walker
        walker.entries_cache = {}
        try:
            return self._run_vector(trace, warmup, limit, bstats)
        finally:
            walker.entries_cache = None

    def _run_vector(self, trace, warmup: int, limit: Optional[int],
                    bstats: BatchStats) -> CoreResult:
        hierarchy = self.hierarchy
        trace_ips, trace_kinds = trace.ips, trace.kinds
        trace_addrs, trace_deps = trace.addrs, trace.deps
        # Kernels want arrays; the drain loop wants plain lists (native
        # ints -- np.int64 leaking into cycle arithmetic would poison
        # JSON exports downstream).
        kinds_np = np.asarray(trace_kinds, dtype=np.int8)
        addrs_np = np.asarray(trace_addrs, dtype=np.int64)
        ips_l = (trace_ips.tolist() if hasattr(trace_ips, "tolist")
                 else list(trace_ips))
        kinds_l = kinds_np.tolist()
        addrs_l = addrs_np.tolist()
        deps_l = (trace_deps.tolist() if hasattr(trace_deps, "tolist")
                  else list(trace_deps))

        l1d = hierarchy.l1d
        mmu = hierarchy.mmu
        dtlb = mmu.dtlb
        page_table = hierarchy.page_table
        entries_cache = mmu.walker.entries_cache
        if self._dtlb_mirror is None or self._dtlb_mirror.tlb is not dtlb:
            self._dtlb_mirror = TLBMirror(dtlb)
        dtlb_mirror = self._dtlb_mirror
        store = l1d.store
        pref_view = flag_view(store.is_prefetch)
        dead_view = flag_view(store.dead_on_hit)

        # Live scalar structures the fast path touches directly.
        dtlb_sets = dtlb._sets
        dtlb_frames = dtlb._frames
        dtlb_num_sets = dtlb.num_sets
        slot_of_get = store.slot_of.get
        l1d_mshr = l1d.mshr
        inflight_get = l1d_mshr._inflight.get
        reused_col = store.reused
        dirty_col = store.dirty
        policy = l1d.policy
        pstamp = policy._stamp
        dtlb_lat = dtlb.latency
        l1d_lat = l1d.latency
        hierarchy_load = hierarchy.load
        hierarchy_store = hierarchy.store
        stats = l1d.stats
        resp_counts = hierarchy.response_distribution.counts["non_replay"]

        total = len(ips_l)
        if limit is not None:
            total = min(limit, total)

        stalls = StallAccounting()
        record_load = stalls.record_load_stall
        record_other = stalls.record_other_stall
        rob_entries = self.rob_entries
        dispatch_width = self.dispatch_width
        retire_width = self.retire_width
        nonmem_latency = self.nonmem_latency
        kind_load, kind_nonmem = KIND_LOAD, KIND_NONMEM

        chain_completion = 0
        dispatch_cycle = 0
        dispatch_slots = 0
        retire_cycle = 0
        retire_slots = 0
        retire_times: Deque[int] = deque()
        popleft = retire_times.popleft
        append = retire_times.append
        n_rt = 0
        roi_start_cycle = 0
        counting = warmup == 0
        window = self.window

        lo = 0
        while lo < total:
            if not counting and lo == warmup:
                counting = True
                roi_start_cycle = retire_cycle
                hierarchy.reset_stats()
                # reset_stats rebinds these objects; re-capture them.
                stats = l1d.stats
                resp_counts = hierarchy.response_distribution.counts[
                    "non_replay"]
            hi = lo + window
            if hi > total:
                hi = total
            if not counting and hi > warmup:
                hi = warmup  # windows never straddle the ROI boundary

            # -- classify window [lo, hi) with the array kernels --------
            # The DTLB probe splits the window into the hit cohort
            # (drained below through live O(1) probes -- residency can
            # change mid-window, so the live dicts are authoritative and
            # a precomputed per-access line column would only duplicate
            # them) and the miss cohort, which feeds the batched page
            # walks.  L1D residency and MSHR conflicts are likewise left
            # to the drain loop's dict probes.
            addrs_w = addrs_np[lo:hi]
            kinds_w = kinds_np[lo:hi]
            vpns_w = addrs_w >> PAGE_SHIFT
            dhit, _pfns = dtlb_mirror.probe(vpns_w)
            mem_w = kinds_w != kind_nonmem
            # ATP/TEMPO-style fills would set these columns; eligible
            # configs never do, but a live check keeps the path honest.
            fast_ok = not (pref_view.any() or dead_view.any())

            # -- miss cohort: precompute the page-walk descents ---------
            # Never-allocated VPNs all land here (they cannot be TLB
            # resident), and their first-occurrence order is the scalar
            # first-walk order, so the batch descent replays the exact
            # allocator trajectory; see the module docstring.
            miss_vpns = vpns_w[mem_w & ~dhit]
            n_cohort = int(miss_vpns.shape[0])
            if n_cohort:
                bstats.walk_cohort += n_cohort
                bstats.precomputed_walks += page_table.walk_entries_batch(
                    first_occurrence_unique(miss_vpns).tolist(),
                    entries_cache)

            # Per-window deferred counters (flushed after the loop).
            n_fast_mem = 0
            n_fast_loads = 0
            n_fast_merges = 0
            n_excur = 0
            clock_d = dtlb._clock
            clock_p = policy._clock

            # -- fused drain loop ---------------------------------------
            # Index iteration, subscripting lazily: the nonmem branch
            # touches one column, the fast path four -- a zip over all
            # seven columns measured slower on hit-heavy traces.
            for i in range(lo, hi):
                # dispatch (verbatim OOOCore recurrence)
                dc = dispatch_cycle
                if n_rt >= rob_entries:
                    free_at = popleft()
                    n_rt -= 1
                    if free_at > dc:
                        dc = free_at
                        dispatch_slots = 0
                if dc > dispatch_cycle:
                    dispatch_cycle = dc
                    dispatch_slots = 0
                dispatch_slots += 1
                if dispatch_slots >= dispatch_width:
                    dispatch_cycle += 1
                    dispatch_slots = 0

                kind = kinds_l[i]
                is_load = kind == kind_load
                if kind == kind_nonmem:
                    completion = dc + nonmem_latency
                    # retire (shared epilogue below)
                    earliest = retire_cycle
                    if retire_slots >= retire_width:
                        earliest += 1
                    if earliest < dc + 1:
                        earliest = dc + 1
                    if completion > earliest:
                        if counting:
                            record_other(completion - earliest)
                        rt = completion
                    else:
                        rt = earliest
                    if rt > retire_cycle:
                        retire_cycle = rt
                        retire_slots = 1
                    else:
                        retire_slots += 1
                    append(rt)
                    n_rt += 1
                    continue

                addr = addrs_l[i]
                vpn = addr >> PAGE_SHIFT
                si = vpn % dtlb_num_sets
                entries = dtlb_sets[si]
                # Live revalidation against the real DTLB set: covers
                # both directions of mid-window drift (an entry evicted
                # since the window started falls to the excursion; a page
                # walked in by an earlier access of this very window
                # takes the fast path even though the classifier called
                # it a miss).  The frame dict IS the scalar TLB's pfn
                # store, so the line is exact by construction.
                if fast_ok and vpn in entries:
                    line = (dtlb_frames[si][vpn] << _PFN_TO_LINE) \
                        | ((addr & _PAGE_OFF_MASK) >> LINE_SHIFT)
                    slot = slot_of_get(line)
                    if slot is not None:
                        # -- inlined DTLB-hit/L1D-hit path --------------
                        # including the exact _handle_hit merge probe: a
                        # hit on a line whose fill is still in flight
                        # completes when the data arrives.
                        pending = inflight_get(line)
                        if is_load:
                            dep = deps_l[i]
                            issue_at = dc
                            if dep and chain_completion > issue_at:
                                issue_at = chain_completion
                            translation_done = issue_at + dtlb_lat
                            completion = translation_done + l1d_lat
                            if pending is not None \
                                    and pending > translation_done:
                                n_fast_merges += 1
                                if pending > completion:
                                    completion = pending
                            if dep:
                                chain_completion = completion
                            n_fast_loads += 1
                        else:
                            if pending is not None \
                                    and pending > dc + dtlb_lat:
                                n_fast_merges += 1
                            completion = dc + nonmem_latency
                        n_fast_mem += 1
                        clock_d += 1
                        entries[vpn] = clock_d
                        reused_col[slot] = 1
                        if not is_load:
                            dirty_col[slot] = 1
                        clock_p += 1
                        pstamp[slot] = clock_p

                        earliest = retire_cycle
                        if retire_slots >= retire_width:
                            earliest += 1
                        if earliest < dc + 1:
                            earliest = dc + 1
                        if completion > earliest:
                            if counting:
                                if is_load:
                                    record_load(
                                        completion - earliest, False,
                                        translation_pending=translation_done
                                        - earliest)
                                else:
                                    record_other(completion - earliest)
                            rt = completion
                        else:
                            rt = earliest
                        if rt > retire_cycle:
                            retire_cycle = rt
                            retire_slots = 1
                        else:
                            retire_slots += 1
                        append(rt)
                        n_rt += 1
                        continue

                # -- full scalar excursion (walks, misses, conflicts,
                #    revalidation failures) ----------------------------
                n_excur += 1
                dtlb._clock = clock_d
                policy._clock = clock_p
                is_replay = False
                translation_done = dc
                if is_load:
                    dep = deps_l[i]
                    issue_at = dc
                    if dep and chain_completion > issue_at:
                        issue_at = chain_completion
                    res = hierarchy_load(addr, issue_at, ips_l[i])
                    completion = res.data_done
                    is_replay = res.is_replay
                    translation_done = res.translation_done
                    if dep:
                        chain_completion = completion
                else:
                    hierarchy_store(addr, dc, ips_l[i])
                    completion = dc + nonmem_latency
                clock_d = dtlb._clock
                clock_p = policy._clock

                earliest = retire_cycle
                if retire_slots >= retire_width:
                    earliest += 1
                if earliest < dc + 1:
                    earliest = dc + 1
                if completion > earliest:
                    if counting:
                        if is_load:
                            record_load(
                                completion - earliest, is_replay,
                                translation_pending=translation_done
                                - earliest)
                        else:
                            record_other(completion - earliest)
                    rt = completion
                else:
                    rt = earliest
                if rt > retire_cycle:
                    retire_cycle = rt
                    retire_slots = 1
                else:
                    retire_slots += 1
                append(rt)
                n_rt += 1

            # -- flush deferred fast-path state -------------------------
            dtlb._clock = clock_d
            policy._clock = clock_p
            if n_fast_mem:
                n_fast_stores = n_fast_mem - n_fast_loads
                hierarchy.loads += n_fast_loads
                hierarchy.stores += n_fast_stores
                if n_fast_loads:
                    # Only loads record a response-distribution sample
                    # (stores are buffered; see MemoryHierarchy.store).
                    resp_counts["L1D"] += n_fast_loads
                mmu.translations += n_fast_mem
                dtlb.accesses += n_fast_mem
                dtlb.hits += n_fast_mem
                stats.accesses["non_replay"] += n_fast_mem
                stats.hits["non_replay"] += n_fast_mem
            if n_fast_merges:
                l1d_mshr.merges += n_fast_merges
            bstats.record_window(hi - lo, n_fast_mem, n_fast_merges,
                                 n_excur)
            lo = hi

        instructions = total - warmup if warmup < total else 0
        cycles = max(1, retire_cycle - roi_start_cycle)
        return CoreResult(instructions=instructions, cycles=cycles,
                          stalls=stalls, hierarchy=hierarchy)
