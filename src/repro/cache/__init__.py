"""Set-associative cache model with pluggable replacement policies."""

from repro.cache.block import CacheBlock
from repro.cache.cache import Cache
from repro.cache.opt import AccessRecorder, OPTAnalysis
from repro.cache.replacement import make_policy

__all__ = ["Cache", "CacheBlock", "make_policy", "AccessRecorder",
           "OPTAnalysis"]
