"""Numpy batch kernels and mirrors for the vectorized backend.

The ``numpy`` backend (:mod:`repro.core.batch_engine`) classifies windows
of accesses against mirrors of the scalar structures.  This module holds
the array kernels plus the mirror objects that bind them to live scalar
state:

* :class:`TLBMirror` -- key/frame arrays rebuilt from the per-set dicts
  whenever the TLB marks itself stale (``TLB._mirror_stale``), probed
  content-style exactly like ``TLB.lookup``.  This is the one mirror the
  engine's window classifier uses (the DTLB probe yields PFNs, enabling
  vectorized physical-line computation); cache residency and MSHR state
  are revalidated with O(1) dict probes inside the drain loop instead,
  where a vector pre-screen measured as pure overhead.
* :class:`StoreMirror` -- tag-match probe over a :class:`CacheStore`'s
  columns.  The line-address column gets an incrementally-maintained int64
  mirror (``CacheStore.np_line``, written by ``reset_slot``/``load_block``);
  the flag columns need no mirror because ``np.frombuffer`` over a
  ``bytearray`` is a live writable uint8 view.
* Pure kernels (:func:`probe_lines`, :func:`tlb_probe`, :func:`psc_probe`,
  :func:`rrip_age_and_victim`, :func:`lru_victim`,
  :func:`last_occurrence_stamps`) that the property tests in
  ``tests/test_batch_kernels.py`` pin against the scalar implementations.

Dtype discipline: every address-carrying array is explicitly ``int64``.
Building arrays from Python ints without a dtype lets numpy pick one per
platform, and float round-trips silently lose address bits above 2**53 --
the hazards the kernel property tests cover (see ``_as_i64``).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.vm.address import psc_tag  # noqa: F401  (scalar reference)

I64 = np.int64


def _as_i64(values) -> np.ndarray:
    """``values`` as an int64 array, refusing lossy float round-trips.

    Addresses are 64-bit integers; accepting a float array here would
    silently truncate anything above 2**53.
    """
    arr = np.asarray(values)
    if arr.dtype.kind == "f":
        raise TypeError("address arrays must be integral, not float "
                        "(float64 loses address bits above 2**53)")
    return arr.astype(I64, copy=False)


def flag_view(buf: bytearray) -> np.ndarray:
    """Live writable uint8 view over a bytearray flag column."""
    return np.frombuffer(buf, dtype=np.uint8)


# ----------------------------------------------------------------------
# Pure kernels
# ----------------------------------------------------------------------
def probe_lines(lines_2d: np.ndarray, valid_2d: np.ndarray,
                num_ways: int, lines) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized residency probe: for each line address, is it cached?

    ``lines_2d``/``valid_2d`` are ``(num_sets, num_ways)`` views of the
    store's line/valid columns.  Returns ``(hit, slots)`` where ``hit``
    is a bool mask and ``slots[i]`` is the flat slot index (meaningful
    only where ``hit``).  Matches ``store.slot_of.get(line)`` by the
    store invariant: ``valid[slot] == 1`` iff ``line[slot]`` maps to
    ``slot`` in ``slot_of``.
    """
    lines = _as_i64(lines)
    num_sets = lines_2d.shape[0]
    set_idx = lines % num_sets
    cand = lines_2d[set_idx]                     # (n, ways) gather
    match = (cand == lines[:, None]) & (valid_2d[set_idx] != 0)
    hit = match.any(axis=1)
    way = match.argmax(axis=1)                   # first (only) valid match
    slots = set_idx * num_ways + way
    return hit, slots


def tlb_probe(keys_2d: np.ndarray, frames_2d: np.ndarray,
              vpns) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized TLB probe; returns ``(hit, pfns)``.

    ``keys_2d`` holds each set's resident VPNs (``-1`` padding for empty
    ways; VPNs are non-negative so -1 never matches).  Way order within a
    set is irrelevant -- the probe is content-based, exactly like the
    dict membership test in ``TLB.lookup``.
    """
    vpns = _as_i64(vpns)
    num_sets = keys_2d.shape[0]
    set_idx = vpns % num_sets
    match = keys_2d[set_idx] == vpns[:, None]
    hit = match.any(axis=1)
    way = match.argmax(axis=1)
    pfns = frames_2d[set_idx, way]
    return hit, pfns


def psc_probe(level_keys: List[np.ndarray], level_values: List[np.ndarray],
              level_shifts: List[int],
              vas) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized paging-structure-cache probe over all levels at once.

    ``level_keys[i]``/``level_values[i]`` hold level ``i``'s resident
    tags and next-table frames (deepest level first, matching
    ``PSC_LEVELS``); ``level_shifts[i]`` is the tag shift
    (``PAGE_SHIFT + BITS_PER_LEVEL * (level - 1)``).  Returns
    ``(hit_level_index, frames)`` with ``hit_level_index == -1`` on a
    full miss -- the deepest hit wins, like
    ``PagingStructureCaches.lookup``.
    """
    vas = _as_i64(vas)
    hit_idx = np.full(vas.shape, -1, dtype=I64)
    frames = np.full(vas.shape, -1, dtype=I64)
    for i in reversed(range(len(level_keys))):   # shallow -> deep overwrite
        keys, values = level_keys[i], level_values[i]
        if keys.size == 0:
            continue
        tags = vas >> level_shifts[i]
        match = keys[None, :] == tags[:, None]   # (n, entries)
        hit = match.any(axis=1)
        pos = match.argmax(axis=1)
        hit_idx[hit] = i
        frames[hit] = values[pos[hit]]
    return hit_idx, frames


def rrip_age_and_victim(rrpv_rows: np.ndarray,
                        max_rrpv: int) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized ``RRIPBase.victim`` over a batch of full sets.

    For each row: the victim is the first way holding the row maximum,
    and the whole row ages by ``max_rrpv - max`` (applied as one delta,
    exactly like the scalar code).  Returns ``(victim_ways, aged_rows)``;
    the input is not modified.
    """
    rows = _as_i64(rrpv_rows)
    mx = rows.max(axis=1)
    victims = rows.argmax(axis=1)                # first max, like .index()
    aged = rows + (max_rrpv - mx)[:, None]
    return victims, aged


def lru_victim(stamp_rows: np.ndarray) -> np.ndarray:
    """Vectorized ``LRUPolicy.victim``: first way with the minimum stamp."""
    return _as_i64(stamp_rows).argmin(axis=1)


def last_occurrence_stamps(keys: np.ndarray,
                           clock_start: int) -> Tuple[list, list, int]:
    """Final LRU stamps after sequentially touching ``keys``.

    The scalar structures stamp every touch with an incrementing clock;
    after a window only each key's *last* touch survives.  Returns
    ``(unique_keys, final_stamps, clock_end)`` as plain Python lists/int
    so callers can scatter into dict- or list-backed scalar state without
    leaking ``np.int64``.
    """
    keys = _as_i64(keys)
    n = int(keys.shape[0])
    if n == 0:
        return [], [], clock_start
    rev = keys[::-1]
    uniq, first_in_rev = np.unique(rev, return_index=True)
    stamps = clock_start + n - first_in_rev
    return uniq.tolist(), stamps.tolist(), clock_start + n


def first_occurrence_unique(keys: np.ndarray) -> np.ndarray:
    """Unique ``keys`` in first-occurrence order.

    The batch engine's walk-cohort dedup: a window's miss-cohort VPNs
    collapse to one descent per page, but the *order* of those descents
    must match the scalar core's first-walk order (frame allocation is
    order-dependent).  ``np.unique`` sorts by value and reports each
    value's first index; re-sorting by that index restores trace order.
    """
    keys = _as_i64(keys)
    uniq, first_idx = np.unique(keys, return_index=True)
    return uniq[np.argsort(first_idx, kind="stable")]


def recall_unique_counts(stamps: np.ndarray, starts,
                         cap: int) -> np.ndarray:
    """Vectorized recall-distance computation over one tracker set.

    ``stamps`` are one :class:`RecallTracker` set's touch stamps in
    recency order (oldest first -- the order the per-set ``OrderedDict``
    yields, since re-touches move keys to the end).  For each query
    stamp in ``starts`` the scalar code walks backwards counting entries
    with touch time at or after that stamp, capped at ``cap``; because
    stamps are strictly increasing in recency order that count is just
    the number of resident stamps ``>= start`` -- ``searchsorted`` gives
    it for the whole batch at once.
    """
    stamps = _as_i64(stamps)
    starts = _as_i64(starts)
    n = int(stamps.shape[0])
    counts = n - np.searchsorted(stamps, starts, side="left")
    return np.minimum(counts, cap).astype(I64)


# ----------------------------------------------------------------------
# Mirrors binding kernels to live scalar state
# ----------------------------------------------------------------------
class StoreMirror:
    """Probe adapter over one cache's :class:`CacheStore`.

    The line mirror is maintained incrementally by the store itself; the
    valid column is viewed live.  Scalar-side fills/evictions between
    windows are therefore visible without any refresh step.
    """

    __slots__ = ("store", "num_ways", "lines_2d", "valid_2d")

    def __init__(self, store):
        self.store = store
        self.num_ways = store.num_ways
        self.lines_2d, self.valid_2d = store.as_arrays()

    def probe(self, lines) -> Tuple[np.ndarray, np.ndarray]:
        return probe_lines(self.lines_2d, self.valid_2d,
                           self.num_ways, lines)


class TLBMirror:
    """Key/frame array mirror of one :class:`repro.vm.tlb.TLB`.

    Rebuilt from the per-set dicts whenever the TLB flags
    ``_mirror_stale`` (set by ``fill``/``invalidate_all``); lookups only
    re-stamp existing entries, which the mirror doesn't carry, so hits
    never invalidate it.
    """

    __slots__ = ("tlb", "keys_2d", "frames_2d")

    def __init__(self, tlb):
        self.tlb = tlb
        shape = (tlb.num_sets, tlb.num_ways)
        self.keys_2d = np.full(shape, -1, dtype=I64)
        self.frames_2d = np.zeros(shape, dtype=I64)
        self.refresh()

    def refresh(self) -> None:
        tlb = self.tlb
        if not tlb._mirror_stale:
            return
        self.keys_2d.fill(-1)
        for s, entries in enumerate(tlb._sets):
            frames = tlb._frames[s]
            krow, frow = self.keys_2d[s], self.frames_2d[s]
            for j, vpn in enumerate(entries):
                krow[j] = vpn
                frow[j] = frames[vpn]
        tlb._mirror_stale = False

    def probe(self, vpns) -> Tuple[np.ndarray, np.ndarray]:
        self.refresh()
        return tlb_probe(self.keys_2d, self.frames_2d, vpns)
