"""Flat column-oriented storage for a set-associative cache.

The cache's per-line metadata lives in preallocated parallel columns
indexed by ``slot = set_idx * num_ways + way`` instead of per-set lists of
block objects: boolean flags are ``bytearray`` columns (so the
first-free-way scan is a C-speed ``bytearray.find``), integer state
(line address, RRPV, signature, fill cycle) are plain lists, and residency
is one interned ``{line_addr: slot}`` dict for the whole cache instead of
one dict per set.

Invariant: ``valid[slot] == 1`` exactly when ``line[slot]`` maps to
``slot`` in :attr:`slot_of` (the validate subsystem machine-checks this).

:class:`BlockView` keeps the old block-object ergonomics for tests and
debugging: a thin live view over one slot's columns.  The hot path never
creates views -- it reads and writes the columns directly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cache.block import CacheBlock


class CacheStore:
    """Parallel-column backing store for one cache level."""

    __slots__ = ("num_sets", "num_ways", "size", "line", "valid", "dirty",
                 "reused", "is_translation", "is_leaf_translation",
                 "is_replay", "is_prefetch", "dead_on_hit", "signature",
                 "rrpv", "fill_cycle", "slot_of", "np_line")

    def __init__(self, num_sets: int, num_ways: int):
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError("cache geometry must be positive")
        self.num_sets = num_sets
        self.num_ways = num_ways
        n = num_sets * num_ways
        self.size = n
        self.line: List[int] = [-1] * n
        self.valid = bytearray(n)
        self.dirty = bytearray(n)
        self.reused = bytearray(n)
        self.is_translation = bytearray(n)
        self.is_leaf_translation = bytearray(n)
        self.is_replay = bytearray(n)
        self.is_prefetch = bytearray(n)
        self.dead_on_hit = bytearray(n)
        self.signature: List[int] = [0] * n
        self.rrpv: List[int] = [0] * n
        self.fill_cycle: List[int] = [0] * n
        #: Single residency map for the whole cache: line_addr -> slot.
        #: (A line can live in exactly one set, so one dict suffices.)
        self.slot_of: Dict[int, int] = {}
        #: Optional int64 numpy mirror of :attr:`line`, kept incrementally
        #: in sync for the batch backend's tag-match kernel (the flag
        #: columns need no mirror -- ``np.frombuffer`` views a bytearray
        #: live).  ``None`` until :meth:`enable_line_mirror`.
        self.np_line = None

    def enable_line_mirror(self):
        """Build (or return) the int64 numpy mirror of :attr:`line`.

        Invalid slots may hold stale addresses in either copy; consumers
        must mask with :attr:`valid`, exactly as :attr:`slot_of` readers
        rely on the validity invariant above.
        """
        if self.np_line is None:
            import numpy as np
            self.np_line = np.asarray(self.line, dtype=np.int64)
        return self.np_line

    def as_arrays(self):
        """``(lines_2d, valid_2d)`` array views shaped ``(sets, ways)``.

        The canonical inputs to :func:`repro.cache.batch.probe_lines`:
        the incrementally-maintained int64 line mirror plus a live uint8
        view of the valid column.  Both reshape without copying, so
        scalar-side fills/evictions stay visible through them.
        """
        import numpy as np
        shape = (self.num_sets, self.num_ways)
        lines_2d = self.enable_line_mirror().reshape(shape)
        valid_2d = np.frombuffer(self.valid, dtype=np.uint8).reshape(shape)
        return lines_2d, valid_2d

    # ------------------------------------------------------------------
    def first_free(self, set_idx: int) -> int:
        """Slot of the first invalid way in ``set_idx``, or -1 when full."""
        base = set_idx * self.num_ways
        return self.valid.find(0, base, base + self.num_ways)

    def reset_slot(self, slot: int, line_addr: int, fill_cycle: int) -> None:
        """Reinitialise ``slot`` for a fresh fill (the column analogue of
        ``CacheBlock.reset_for_fill``); the caller updates :attr:`slot_of`."""
        self.line[slot] = line_addr
        if self.np_line is not None:
            self.np_line[slot] = line_addr
        self.valid[slot] = 1
        self.dirty[slot] = 0
        self.reused[slot] = 0
        self.is_translation[slot] = 0
        self.is_leaf_translation[slot] = 0
        self.is_replay[slot] = 0
        self.is_prefetch[slot] = 0
        self.dead_on_hit[slot] = 0
        self.signature[slot] = 0
        self.fill_cycle[slot] = fill_cycle

    # ------------------------------------------------------------------
    def view(self, slot: int) -> "BlockView":
        """A live block-shaped view over ``slot``'s columns."""
        return BlockView(self, slot)

    def snapshot(self, slot: int) -> CacheBlock:
        """A detached :class:`CacheBlock` copy of ``slot``'s state (safe to
        hold across later fills of the same slot)."""
        block = CacheBlock()
        block.line_addr = self.line[slot]
        block.valid = bool(self.valid[slot])
        block.dirty = bool(self.dirty[slot])
        block.reused = bool(self.reused[slot])
        block.is_translation = bool(self.is_translation[slot])
        block.is_leaf_translation = bool(self.is_leaf_translation[slot])
        block.is_replay = bool(self.is_replay[slot])
        block.is_prefetch = bool(self.is_prefetch[slot])
        block.dead_on_hit = bool(self.dead_on_hit[slot])
        block.signature = self.signature[slot]
        block.rrpv = self.rrpv[slot]
        block.fill_cycle = self.fill_cycle[slot]
        return block

    def load_block(self, slot: int, block: CacheBlock) -> None:
        """Overwrite ``slot`` from a :class:`CacheBlock` (test fixtures and
        the round-trip property test); the caller updates :attr:`slot_of`."""
        self.line[slot] = block.line_addr
        if self.np_line is not None:
            self.np_line[slot] = block.line_addr
        self.valid[slot] = 1 if block.valid else 0
        self.dirty[slot] = 1 if block.dirty else 0
        self.reused[slot] = 1 if block.reused else 0
        self.is_translation[slot] = 1 if block.is_translation else 0
        self.is_leaf_translation[slot] = 1 if block.is_leaf_translation else 0
        self.is_replay[slot] = 1 if block.is_replay else 0
        self.is_prefetch[slot] = 1 if block.is_prefetch else 0
        self.dead_on_hit[slot] = 1 if block.dead_on_hit else 0
        self.signature[slot] = block.signature
        self.rrpv[slot] = block.rrpv
        self.fill_cycle[slot] = block.fill_cycle


class BlockView:
    """Live, block-shaped window onto one store slot.

    Reads and writes go straight through to the columns, so mutating a
    view (as white-box tests do) mutates the cache.  Compare with
    :meth:`CacheStore.snapshot`, which detaches."""

    __slots__ = ("_store", "slot")

    def __init__(self, store: CacheStore, slot: int):
        self._store = store
        self.slot = slot

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "V" if self.valid else "-"
        return f"<BlockView {self.line_addr:#x} {state} rrpv={self.rrpv}>"


def _bool_column(name: str):
    def get(self: BlockView) -> bool:
        return bool(getattr(self._store, name)[self.slot])

    def set_(self: BlockView, value: bool) -> None:
        getattr(self._store, name)[self.slot] = 1 if value else 0

    return property(get, set_)


def _int_column(name: str):
    def get(self: BlockView) -> int:
        return getattr(self._store, name)[self.slot]

    def set_(self: BlockView, value: int) -> None:
        getattr(self._store, name)[self.slot] = value

    return property(get, set_)


def _line_column():
    # Like _int_column("line") but keeps the optional numpy mirror in
    # sync, so white-box tests mutating views can't desynchronise the
    # batch backend.
    def get(self: BlockView) -> int:
        return self._store.line[self.slot]

    def set_(self: BlockView, value: int) -> None:
        self._store.line[self.slot] = value
        if self._store.np_line is not None:
            self._store.np_line[self.slot] = value

    return property(get, set_)


for _name in ("valid", "dirty", "reused", "is_translation",
              "is_leaf_translation", "is_replay", "is_prefetch",
              "dead_on_hit"):
    setattr(BlockView, _name, _bool_column(_name))
BlockView.line_addr = _line_column()
BlockView.signature = _int_column("signature")
BlockView.rrpv = _int_column("rrpv")
BlockView.fill_cycle = _int_column("fill_cycle")
