"""SRRIP and BRRIP (Jaleel et al., ISCA'10).

SRRIP inserts every block with a *long* re-reference prediction
(RRPV = max-1); BRRIP inserts mostly at *distant* (RRPV = max) and only
occasionally at long, which protects the cache against thrashing patterns.
"""

from __future__ import annotations

from repro.cache.replacement.base import RRIPBase
from repro.memsys.request import MemoryRequest


class SRRIPPolicy(RRIPBase):
    """Static RRIP: insert at RRPV = max-1, promote to 0 on hit."""

    name = "srrip"
    rrpv_bits = 2

    def insertion_rrpv(self, set_idx: int, req: MemoryRequest) -> int:
        return self.max_rrpv - 1


class BRRIPPolicy(RRIPBase):
    """Bimodal RRIP: insert at RRPV = max except for 1/32 of fills."""

    name = "brrip"
    rrpv_bits = 2
    #: One in this many fills is inserted with a long (max-1) RRPV.
    LONG_INTERVAL = 32

    def __init__(self, num_sets: int, num_ways: int):
        super().__init__(num_sets, num_ways)
        self._fill_count = 0

    def insertion_rrpv(self, set_idx: int, req: MemoryRequest) -> int:
        self._fill_count += 1
        if self._fill_count % self.LONG_INTERVAL == 0:
            return self.max_rrpv - 1
        return self.max_rrpv
