"""Random replacement (sanity baseline; not in the paper's figures)."""

from __future__ import annotations

import random

from repro.cache.replacement.base import ReplacementPolicy
from repro.memsys.request import MemoryRequest


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim selection with a seeded generator."""

    name = "random"

    def __init__(self, num_sets: int, num_ways: int, seed: int = 1):
        super().__init__(num_sets, num_ways)
        self._rng = random.Random(seed)

    def victim(self, set_idx: int, req: MemoryRequest) -> int:
        return self._rng.randrange(self.num_ways)

    def on_fill(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        pass

    def on_hit(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        pass
