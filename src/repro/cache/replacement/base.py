"""Replacement-policy interface.

A policy sees three events -- fill, hit, evict -- plus victim selection.
The cache handles invalid ways itself; ``victim`` is only consulted when the
set is full.  Policies receive the full :class:`MemoryRequest` so that
translation-conscious variants can classify the incoming block.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.cache.block import CacheBlock
from repro.memsys.request import MemoryRequest


class ReplacementPolicy(abc.ABC):
    """Base class for all replacement policies."""

    #: Registry name, set by subclasses (for reporting).
    name = "base"

    def __init__(self, num_sets: int, num_ways: int):
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError("cache geometry must be positive")
        self.num_sets = num_sets
        self.num_ways = num_ways

    @abc.abstractmethod
    def victim(self, set_idx: int, req: MemoryRequest,
               blocks: Sequence[CacheBlock]) -> int:
        """Choose a way to evict from a full set."""

    @abc.abstractmethod
    def on_fill(self, set_idx: int, way: int, req: MemoryRequest,
                block: CacheBlock) -> None:
        """A new block was installed at (set, way)."""

    @abc.abstractmethod
    def on_hit(self, set_idx: int, way: int, req: MemoryRequest,
               block: CacheBlock) -> None:
        """The block at (set, way) was re-referenced."""

    def on_evict(self, set_idx: int, way: int, block: CacheBlock) -> None:
        """The block at (set, way) is about to be replaced (training hook)."""

    def record_miss(self, set_idx: int) -> None:
        """A demand miss occurred in ``set_idx`` (set-dueling hook)."""

    def demote(self, set_idx: int, way: int, block: CacheBlock) -> None:
        """Force the block to highest eviction priority (ATP prefetch fills)."""


class RRIPBase(ReplacementPolicy):
    """Shared machinery for RRPV-based policies (SRRIP family, SHiP,
    Hawkeye).  Stores one RRPV per (set, way) in the blocks themselves and
    implements the standard aging eviction loop."""

    #: RRPV bit width (2 for SRRIP/SHiP, 3 for Hawkeye).
    rrpv_bits = 2

    def __init__(self, num_sets: int, num_ways: int):
        super().__init__(num_sets, num_ways)
        self.max_rrpv = (1 << self.rrpv_bits) - 1

    def victim(self, set_idx: int, req: MemoryRequest,
               blocks: Sequence[CacheBlock]) -> int:
        """Evict the first block at max RRPV, aging the set as needed."""
        while True:
            for way, block in enumerate(blocks):
                if block.rrpv >= self.max_rrpv:
                    return way
            for block in blocks:
                block.rrpv += 1

    def insertion_rrpv(self, set_idx: int, req: MemoryRequest) -> int:
        """RRPV assigned to an incoming block (policy-specific)."""
        return self.max_rrpv - 1

    def on_fill(self, set_idx: int, way: int, req: MemoryRequest,
                block: CacheBlock) -> None:
        block.rrpv = self.insertion_rrpv(set_idx, req)

    def on_hit(self, set_idx: int, way: int, req: MemoryRequest,
               block: CacheBlock) -> None:
        block.rrpv = 0

    def demote(self, set_idx: int, way: int, block: CacheBlock) -> None:
        block.rrpv = self.max_rrpv
