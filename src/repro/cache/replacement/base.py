"""Replacement-policy interface over the column-oriented cache store.

A policy sees three events -- fill, hit, evict -- plus victim selection.
The cache handles invalid ways itself; ``victim`` is only consulted when the
set is full.  Policies receive the full :class:`MemoryRequest` so that
translation-conscious variants can classify the incoming block.

Policies are *bound* to a :class:`repro.cache.store.CacheStore` before use
(:meth:`ReplacementPolicy.bind`): per-line policy state (RRPV, signature,
reuse bit) lives in the store's flat columns, shared with the cache, and
hooks address lines by ``(set_idx, way)`` exactly as before -- the slot is
``set_idx * num_ways + way``.
"""

from __future__ import annotations

import abc

from repro.memsys.request import MemoryRequest


class ReplacementPolicy(abc.ABC):
    """Base class for all replacement policies."""

    #: Registry name, set by subclasses (for reporting).
    name = "base"

    def __init__(self, num_sets: int, num_ways: int):
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError("cache geometry must be positive")
        self.num_sets = num_sets
        self.num_ways = num_ways
        #: Bound backing store (set by the owning cache via :meth:`bind`).
        self.store = None

    def bind(self, store) -> None:
        """Attach the cache's column store this policy operates on."""
        if (store.num_sets, store.num_ways) != (self.num_sets,
                                                self.num_ways):
            raise ValueError(
                f"policy geometry {self.num_sets}x{self.num_ways} does not "
                f"match store {store.num_sets}x{store.num_ways}")
        self.store = store

    @abc.abstractmethod
    def victim(self, set_idx: int, req: MemoryRequest) -> int:
        """Choose a way to evict from a full set."""

    @abc.abstractmethod
    def on_fill(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        """A new block was installed at (set, way)."""

    @abc.abstractmethod
    def on_hit(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        """The block at (set, way) was re-referenced."""

    def on_evict(self, set_idx: int, way: int) -> None:
        """The block at (set, way) is about to be replaced (training hook)."""

    def record_miss(self, set_idx: int) -> None:
        """A demand miss occurred in ``set_idx`` (set-dueling hook)."""

    def demote(self, set_idx: int, way: int) -> None:
        """Force the block to highest eviction priority (ATP prefetch fills)."""


class RRIPBase(ReplacementPolicy):
    """Shared machinery for RRPV-based policies (SRRIP family, SHiP,
    Hawkeye).  RRPVs live in the bound store's ``rrpv`` column; eviction
    uses the standard aging scheme, applied as one delta instead of a
    rescan loop (the victim is the way whose RRPV saturates first, i.e.
    the first way holding the set's maximum RRPV)."""

    #: RRPV bit width (2 for SRRIP/SHiP, 3 for Hawkeye).
    rrpv_bits = 2

    def __init__(self, num_sets: int, num_ways: int):
        super().__init__(num_sets, num_ways)
        self.max_rrpv = (1 << self.rrpv_bits) - 1

    def victim(self, set_idx: int, req: MemoryRequest) -> int:
        """Evict the first block at max RRPV, aging the set as needed."""
        base = set_idx * self.num_ways
        rrpv = self.store.rrpv
        seg = rrpv[base:base + self.num_ways]
        mx = max(seg)
        if mx < self.max_rrpv:
            delta = self.max_rrpv - mx
            for slot in range(base, base + self.num_ways):
                rrpv[slot] += delta
        return seg.index(mx)

    def insertion_rrpv(self, set_idx: int, req: MemoryRequest) -> int:
        """RRPV assigned to an incoming block (policy-specific)."""
        return self.max_rrpv - 1

    def on_fill(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        self.store.rrpv[set_idx * self.num_ways + way] = \
            self.insertion_rrpv(set_idx, req)

    def on_hit(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        self.store.rrpv[set_idx * self.num_ways + way] = 0

    def demote(self, set_idx: int, way: int) -> None:
        self.store.rrpv[set_idx * self.num_ways + way] = self.max_rrpv
