"""Least-recently-used replacement (the paper's weakest baseline)."""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy
from repro.memsys.request import MemoryRequest


class LRUPolicy(ReplacementPolicy):
    """Classic LRU via a flat per-slot monotone timestamp column."""

    name = "lru"

    def __init__(self, num_sets: int, num_ways: int):
        super().__init__(num_sets, num_ways)
        self._stamp = [0] * (num_sets * num_ways)
        self._clock = 0

    def victim(self, set_idx: int, req: MemoryRequest) -> int:
        base = set_idx * self.num_ways
        seg = self._stamp[base:base + self.num_ways]
        return seg.index(min(seg))

    def on_fill(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        self._clock += 1
        self._stamp[set_idx * self.num_ways + way] = self._clock

    def on_hit(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        self._clock += 1
        self._stamp[set_idx * self.num_ways + way] = self._clock

    def demote(self, set_idx: int, way: int) -> None:
        self._stamp[set_idx * self.num_ways + way] = 0
