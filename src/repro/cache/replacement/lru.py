"""Least-recently-used replacement (the paper's weakest baseline)."""

from __future__ import annotations

import itertools
from typing import List, Sequence

from repro.cache.block import CacheBlock
from repro.cache.replacement.base import ReplacementPolicy
from repro.memsys.request import MemoryRequest


class LRUPolicy(ReplacementPolicy):
    """Classic LRU via a per-(set, way) monotone timestamp."""

    name = "lru"

    def __init__(self, num_sets: int, num_ways: int):
        super().__init__(num_sets, num_ways)
        self._stamp = [[0] * num_ways for _ in range(num_sets)]
        self._clock = itertools.count(1)

    def victim(self, set_idx: int, req: MemoryRequest,
               blocks: Sequence[CacheBlock]) -> int:
        stamps = self._stamp[set_idx]
        return min(range(self.num_ways), key=stamps.__getitem__)

    def on_fill(self, set_idx: int, way: int, req: MemoryRequest,
                block: CacheBlock) -> None:
        self._stamp[set_idx][way] = next(self._clock)

    def on_hit(self, set_idx: int, way: int, req: MemoryRequest,
               block: CacheBlock) -> None:
        self._stamp[set_idx][way] = next(self._clock)

    def demote(self, set_idx: int, way: int, block: CacheBlock) -> None:
        self._stamp[set_idx][way] = 0
