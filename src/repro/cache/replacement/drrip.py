"""DRRIP: dynamic RRIP via set dueling (Jaleel et al., ISCA'10).

A few *leader* sets always use SRRIP insertion and a few always use BRRIP;
misses in leader sets steer a saturating PSEL counter, and *follower* sets
use whichever policy is currently winning.
"""

from __future__ import annotations

from repro.cache.replacement.base import RRIPBase
from repro.memsys.request import MemoryRequest


class DRRIPPolicy(RRIPBase):
    """Set-dueling DRRIP (the paper's L2C baseline)."""

    name = "drrip"
    rrpv_bits = 2
    PSEL_BITS = 10
    LONG_INTERVAL = 32  # BRRIP's bimodal throttle

    def __init__(self, num_sets: int, num_ways: int, leader_sets: int = 32):
        super().__init__(num_sets, num_ways)
        leader_sets = min(leader_sets, max(1, num_sets // 2))
        self._psel_max = (1 << self.PSEL_BITS) - 1
        self._psel = self._psel_max // 2
        self._brrip_fills = 0
        # Interleave leaders: even slots SRRIP, odd slots BRRIP.
        stride = max(1, num_sets // (2 * leader_sets))
        self._srrip_leaders = set()
        self._brrip_leaders = set()
        s = 0
        for i in range(leader_sets):
            self._srrip_leaders.add(s % num_sets)
            s += stride
            self._brrip_leaders.add(s % num_sets)
            s += stride
        self._brrip_leaders -= self._srrip_leaders

    # -- set dueling ------------------------------------------------------
    def _uses_brrip(self, set_idx: int) -> bool:
        if set_idx in self._srrip_leaders:
            return False
        if set_idx in self._brrip_leaders:
            return True
        # Follower: high PSEL means SRRIP leaders are missing more.
        return self._psel > self._psel_max // 2

    def record_miss(self, set_idx: int) -> None:
        """Called by the cache on every demand miss (leader training)."""
        if set_idx in self._srrip_leaders:
            self._psel = min(self._psel_max, self._psel + 1)
        elif set_idx in self._brrip_leaders:
            self._psel = max(0, self._psel - 1)

    # -- insertion --------------------------------------------------------
    def insertion_rrpv(self, set_idx: int, req: MemoryRequest) -> int:
        if not self._uses_brrip(set_idx):
            return self.max_rrpv - 1
        self._brrip_fills += 1
        if self._brrip_fills % self.LONG_INTERVAL == 0:
            return self.max_rrpv - 1
        return self.max_rrpv
