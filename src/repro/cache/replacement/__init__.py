"""Replacement policies: baselines (LRU, Random, SRRIP, BRRIP, DRRIP, SHiP,
Hawkeye) and the paper's translation-conscious variants (T-DRRIP, T-SHiP,
T-Hawkeye, plus the signature-only "NewSign" ablation)."""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.random_policy import RandomPolicy
from repro.cache.replacement.srrip import SRRIPPolicy, BRRIPPolicy
from repro.cache.replacement.drrip import DRRIPPolicy
from repro.cache.replacement.ship import SHiPPolicy
from repro.cache.replacement.hawkeye import HawkeyePolicy
from repro.cache.replacement.translation_aware import (
    AdaptiveTDRRIPPolicy, TDRRIPPolicy, TSHiPPolicy, THawkeyePolicy,
    NewSignSHiPPolicy)

_REGISTRY = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
    "brrip": BRRIPPolicy,
    "drrip": DRRIPPolicy,
    "ship": SHiPPolicy,
    "hawkeye": HawkeyePolicy,
    "t_drrip": TDRRIPPolicy,
    "t_drrip_adaptive": AdaptiveTDRRIPPolicy,
    "t_ship": TSHiPPolicy,
    "t_hawkeye": THawkeyePolicy,
    "newsign_ship": NewSignSHiPPolicy,
}


def make_policy(name: str, num_sets: int, num_ways: int,
                **kwargs) -> ReplacementPolicy:
    """Instantiate a replacement policy by registry name.

    Deprecated spellings (hyphenated, capitalised, legacy shorthands) are
    normalised through :func:`repro.params.canonical_policy` with a
    one-time DeprecationWarning."""
    from repro.params import canonical_policy
    name = canonical_policy(name)
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"available: {sorted(_REGISTRY)}") from None
    return cls(num_sets, num_ways, **kwargs)


def available_policies():
    """Names of all registered policies."""
    return sorted(_REGISTRY)


__all__ = ["ReplacementPolicy", "LRUPolicy", "RandomPolicy", "SRRIPPolicy",
           "BRRIPPolicy", "DRRIPPolicy", "SHiPPolicy", "HawkeyePolicy",
           "TDRRIPPolicy", "AdaptiveTDRRIPPolicy", "TSHiPPolicy",
           "THawkeyePolicy", "NewSignSHiPPolicy", "make_policy",
           "available_policies"]
