"""SHiP: Signature-based Hit Predictor (Wu et al., MICRO'11).

SHiP keeps a Signature History Counter Table (SHCT) of saturating counters
indexed by a hashed signature (we use the instruction pointer, as the paper
does).  A block whose signature's counter is zero is predicted dead and
inserted at distant RRPV (max); otherwise at long (max-1).  Training: +1
when a block is re-referenced, -1 when it is evicted unreused.

The signature computation is a separate method so the translation-conscious
variants of Section IV can redefine it (``IP << IsTranslation`` etc.).
"""

from __future__ import annotations

from repro.cache.replacement.base import RRIPBase
from repro.memsys.request import MemoryRequest


class SHiPPolicy(RRIPBase):
    """SHiP-PC with a 16K-entry, 3-bit SHCT."""

    name = "ship"
    rrpv_bits = 2
    SHCT_SIZE = 16384
    SHCT_MAX = 7

    def __init__(self, num_sets: int, num_ways: int):
        super().__init__(num_sets, num_ways)
        self._shct = [1] * self.SHCT_SIZE

    # -- signatures -------------------------------------------------------
    def signature(self, req: MemoryRequest) -> int:
        """Hash of the filling IP (overridden by translation-aware variants)."""
        ip = req.ip
        return (ip ^ (ip >> 14) ^ (ip >> 28)) % self.SHCT_SIZE

    # -- insertion --------------------------------------------------------
    def insertion_rrpv(self, set_idx: int, req: MemoryRequest) -> int:
        if self._shct[self.signature(req)] == 0:
            return self.max_rrpv
        return self.max_rrpv - 1

    def on_fill(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        slot = set_idx * self.num_ways + way
        self.store.signature[slot] = self.signature(req)
        self.store.rrpv[slot] = self.insertion_rrpv(set_idx, req)

    # -- training ---------------------------------------------------------
    def on_hit(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        slot = set_idx * self.num_ways + way
        self.store.rrpv[slot] = 0
        sig = self.store.signature[slot]
        counter = self._shct[sig]
        if counter < self.SHCT_MAX:
            self._shct[sig] = counter + 1

    def on_evict(self, set_idx: int, way: int) -> None:
        slot = set_idx * self.num_ways + way
        if not self.store.reused[slot]:
            sig = self.store.signature[slot]
            counter = self._shct[sig]
            if counter > 0:
                self._shct[sig] = counter - 1

    # -- introspection (tests) ---------------------------------------------
    def shct_value(self, req: MemoryRequest) -> int:
        return self._shct[self.signature(req)]
