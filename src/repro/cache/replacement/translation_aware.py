"""The paper's translation- and replay-conscious replacement policies
(Section IV).

**T-DRRIP** (L2C): leaf-level address translations are inserted at RRPV=0
(lowest eviction priority, so they survive ~10 extra set accesses and catch
the short-recall-distance population of Fig 5), while replay loads are
inserted at RRPV=3 (they are dead, Fig 7) so they cannot age the
translation blocks out.

**T-SHiP / T-Hawkeye** (LLC): leaf translations inserted at RRPV=0, plus the
*new signatures* of Section IV that keep reuse training of translations,
replay loads and non-replay loads independent::

    signature_translations = IP << IsTranslation
    signature_replayloads  = IP << (IsReplay + IsTranslation)

**NewSignSHiP** is the signature-only ablation plotted in Fig 12.

The Fig 10 misconfiguration (replays *also* inserted at RRPV=0) is exposed
via ``replay_rrpv0=True``.
"""

from __future__ import annotations

from repro.cache.replacement.drrip import DRRIPPolicy
from repro.cache.replacement.hawkeye import HawkeyePolicy
from repro.cache.replacement.ship import SHiPPolicy
from repro.memsys.request import MemoryRequest


def _aware_ip(req: MemoryRequest) -> int:
    """Apply the paper's signature transformation to the request IP.

    Translations shift the IP by one, replay loads by two (IsReplay +
    IsTranslation occupies two flag positions), making the three request
    classes hash into disjoint signature populations.
    """
    if req.is_translation:
        return (req.ip << 1) | 1
    if req.is_replay:
        return (req.ip << 2) | 2
    return req.ip


class TDRRIPPolicy(DRRIPPolicy):
    """Address-translation-conscious DRRIP for the L2C (Fig 9)."""

    name = "t_drrip"

    def __init__(self, num_sets: int, num_ways: int, leader_sets: int = 32,
                 replay_rrpv0: bool = False):
        super().__init__(num_sets, num_ways, leader_sets)
        self.replay_rrpv0 = replay_rrpv0

    def insertion_rrpv(self, set_idx: int, req: MemoryRequest) -> int:
        if req.is_leaf_translation:
            return 0
        if req.is_demand_data and req.is_replay:
            return 0 if self.replay_rrpv0 else self.max_rrpv
        return super().insertion_rrpv(set_idx, req)


class AdaptiveTDRRIPPolicy(TDRRIPPolicy):
    """Set-dueling between T-DRRIP and plain DRRIP insertion (a design
    extension beyond the paper).

    The paper's T-DRRIP is statically enabled; on workloads with few
    translations it is naturally inert, but an adversarial pattern could
    in principle be hurt by pinning PTE lines.  This variant duels the
    translation-conscious insertion against plain DRRIP with a second
    PSEL counter and lets followers use whichever side misses less on
    demand traffic.
    """

    name = "t_drrip_adaptive"

    def __init__(self, num_sets: int, num_ways: int, leader_sets: int = 16):
        super().__init__(num_sets, num_ways, leader_sets)
        self._tpsel_max = (1 << self.PSEL_BITS) - 1
        self._tpsel = self._tpsel_max // 2
        stride = max(1, num_sets // (2 * leader_sets))
        offset = stride // 2  # interleave away from the DRRIP leaders
        self._t_leaders = set()
        self._plain_leaders = set()
        s = offset
        for _ in range(leader_sets):
            self._t_leaders.add(s % num_sets)
            s += stride
            self._plain_leaders.add(s % num_sets)
            s += stride
        self._plain_leaders -= self._t_leaders

    def _t_enabled(self, set_idx: int) -> bool:
        if set_idx in self._t_leaders:
            return True
        if set_idx in self._plain_leaders:
            return False
        # High TPSEL means the T-leaders are missing more: disable.
        return self._tpsel <= self._tpsel_max // 2

    def record_miss(self, set_idx: int) -> None:
        super().record_miss(set_idx)
        if set_idx in self._t_leaders:
            self._tpsel = min(self._tpsel_max, self._tpsel + 1)
        elif set_idx in self._plain_leaders:
            self._tpsel = max(0, self._tpsel - 1)

    def insertion_rrpv(self, set_idx: int, req: MemoryRequest) -> int:
        if self._t_enabled(set_idx):
            return super().insertion_rrpv(set_idx, req)
        return DRRIPPolicy.insertion_rrpv(self, set_idx, req)


class NewSignSHiPPolicy(SHiPPolicy):
    """SHiP with translation/replay-aware signatures only (Fig 12 ablation)."""

    name = "newsign_ship"

    def signature(self, req: MemoryRequest) -> int:
        ip = _aware_ip(req)
        return (ip ^ (ip >> 14) ^ (ip >> 28)) % self.SHCT_SIZE


class TSHiPPolicy(NewSignSHiPPolicy):
    """Address-translation-conscious SHiP for the LLC (Fig 11).

    New signatures + leaf translations pinned to RRPV=0 on insertion.  The
    promotion and eviction sub-policies are unchanged from SHiP.
    """

    name = "t_ship"

    def __init__(self, num_sets: int, num_ways: int,
                 replay_rrpv0: bool = False):
        super().__init__(num_sets, num_ways)
        self.replay_rrpv0 = replay_rrpv0

    def insertion_rrpv(self, set_idx: int, req: MemoryRequest) -> int:
        if req.is_leaf_translation:
            return 0
        if self.replay_rrpv0 and req.is_demand_data and req.is_replay:
            return 0
        return super().insertion_rrpv(set_idx, req)


class THawkeyePolicy(HawkeyePolicy):
    """Address-translation-conscious Hawkeye (evaluated alongside T-SHiP)."""

    name = "t_hawkeye"

    def signature(self, req: MemoryRequest) -> int:
        ip = _aware_ip(req)
        return (ip ^ (ip >> 13) ^ (ip >> 26)) % self.PREDICTOR_SIZE

    def insertion_rrpv(self, set_idx: int, req: MemoryRequest) -> int:
        if req.is_leaf_translation:
            return 0
        return super().insertion_rrpv(set_idx, req)

    def on_fill(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        super().on_fill(set_idx, way, req)
        if req.is_leaf_translation:
            self.store.rrpv[set_idx * self.num_ways + way] = 0
