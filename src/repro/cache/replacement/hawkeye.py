"""Hawkeye (Jain & Lin, ISCA'16).

Hawkeye reconstructs what Belady's OPT would have done on a sampled history
(OPTgen) and trains a PC-indexed predictor with the outcome: PCs whose loads
OPT would have hit are *cache-friendly* (insert at RRPV 0), the rest are
*cache-averse* (insert at RRPV 7, 3-bit RRPVs).

OPTgen uses per-set *usage intervals*: an access to line X at set-local time
``t`` with a previous access at ``t_prev`` is an OPT hit iff every time
quantum in ``[t_prev, t)`` still has spare cache capacity; on a hit the
occupancy of that interval is incremented.

The signature computation is factored into :meth:`signature` so T-Hawkeye
can make translation and replay training independent.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

from repro.cache.replacement.base import RRIPBase
from repro.memsys.request import MemoryRequest


class _SetHistory:
    """Sliding OPTgen history for one sampled set."""

    __slots__ = ("capacity", "window", "time", "base_time", "occupancy",
                 "last_access")

    def __init__(self, ways: int):
        self.capacity = ways
        self.window = 8 * ways
        self.time = 0
        self.base_time = 0
        self.occupancy: Deque[int] = deque()
        # line -> (set-local time of last access, signature of last access)
        self.last_access: Dict[int, Tuple[int, int]] = {}

    def access(self, line_addr: int, signature: int):
        """Record an access; returns (opt_hit, previous_signature) or None
        when the line has no (in-window) previous access."""
        prev = self.last_access.get(line_addr)
        result = None
        if prev is not None and prev[0] >= self.base_time:
            start = prev[0] - self.base_time
            end = self.time - self.base_time
            interval = list(self.occupancy)[start:end]
            if all(o < self.capacity for o in interval):
                occ = self.occupancy
                for i in range(start, end):
                    occ[i] += 1
                result = (True, prev[1])
            else:
                result = (False, prev[1])
        self.last_access[line_addr] = (self.time, signature)
        self.occupancy.append(0)
        self.time += 1
        while len(self.occupancy) > self.window:
            self.occupancy.popleft()
            self.base_time += 1
        if len(self.last_access) > 4 * self.window:
            cutoff = self.base_time
            self.last_access = {l: v for l, v in self.last_access.items()
                                if v[0] >= cutoff}
        return result


class HawkeyePolicy(RRIPBase):
    """Hawkeye with set sampling and a 3-bit PC predictor."""

    name = "hawkeye"
    rrpv_bits = 3
    PREDICTOR_SIZE = 8192
    COUNTER_MAX = 7
    FRIENDLY_THRESHOLD = 4
    SAMPLED_SETS = 64

    def __init__(self, num_sets: int, num_ways: int):
        super().__init__(num_sets, num_ways)
        self._predictor = [self.FRIENDLY_THRESHOLD] * self.PREDICTOR_SIZE
        step = max(1, num_sets // self.SAMPLED_SETS)
        self._histories: Dict[int, _SetHistory] = {
            s: _SetHistory(num_ways) for s in range(0, num_sets, step)}

    # -- signatures -------------------------------------------------------
    def signature(self, req: MemoryRequest) -> int:
        ip = req.ip
        return (ip ^ (ip >> 13) ^ (ip >> 26)) % self.PREDICTOR_SIZE

    def _is_friendly(self, sig: int) -> bool:
        return self._predictor[sig] >= self.FRIENDLY_THRESHOLD

    def _train(self, sig: int, positive: bool) -> None:
        c = self._predictor[sig]
        if positive:
            if c < self.COUNTER_MAX:
                self._predictor[sig] = c + 1
        elif c > 0:
            self._predictor[sig] = c - 1

    def _observe(self, set_idx: int, req: MemoryRequest) -> None:
        history = self._histories.get(set_idx)
        if history is None:
            return
        outcome = history.access(req.line_addr, self.signature(req))
        if outcome is not None:
            opt_hit, prev_sig = outcome
            self._train(prev_sig, opt_hit)

    # -- replacement ------------------------------------------------------
    def victim(self, set_idx: int, req: MemoryRequest) -> int:
        # Prefer a cache-averse block (RRPV == max); otherwise the oldest
        # friendly block (highest RRPV).  No aging loop: Hawkeye ages
        # friendly blocks on fills instead.  Either way the victim is the
        # first way holding the set's maximum RRPV.
        base = set_idx * self.num_ways
        seg = self.store.rrpv[base:base + self.num_ways]
        return seg.index(max(seg))

    def insertion_rrpv(self, set_idx: int, req: MemoryRequest) -> int:
        return 0 if self._is_friendly(self.signature(req)) else self.max_rrpv

    def on_fill(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        self._observe(set_idx, req)
        sig = self.signature(req)
        slot = set_idx * self.num_ways + way
        self.store.signature[slot] = sig
        if self._is_friendly(sig):
            self.store.rrpv[slot] = 0
            # Age other friendly blocks so older ones become victims.
            # (The cache passes fills through here one at a time; aging is
            # applied lazily on victim selection via stored RRPVs.)
        else:
            self.store.rrpv[slot] = self.max_rrpv

    def on_hit(self, set_idx: int, way: int, req: MemoryRequest) -> None:
        self._observe(set_idx, req)
        sig = self.signature(req)
        slot = set_idx * self.num_ways + way
        self.store.signature[slot] = sig
        self.store.rrpv[slot] = 0 if self._is_friendly(sig) \
            else self.max_rrpv - 1

    def on_evict(self, set_idx: int, way: int) -> None:
        # Detrain the PC of a friendly block evicted without reuse: OPT
        # would not have kept it either.
        slot = set_idx * self.num_ways + way
        if (self.store.rrpv[slot] < self.max_rrpv
                and not self.store.reused[slot]):
            self._train(self.store.signature[slot], False)

    # -- introspection ------------------------------------------------------
    def predictor_value(self, req: MemoryRequest) -> int:
        return self._predictor[self.signature(req)]
