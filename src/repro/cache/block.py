"""Cache block metadata.

Beyond tag/valid/dirty, blocks remember the classification of the request
that filled them (translation / replay / prefetch) because the paper's
policies and statistics need it at eviction time, and whether they have been
reused (SHiP trains on exactly this)."""

from __future__ import annotations


class CacheBlock:
    """One cache line's metadata."""

    __slots__ = ("line_addr", "valid", "dirty", "reused", "is_translation",
                 "is_leaf_translation", "is_replay", "is_prefetch",
                 "dead_on_hit", "signature", "rrpv", "fill_cycle")

    def __init__(self):
        self.line_addr = -1
        self.valid = False
        self.dirty = False
        self.reused = False
        self.is_translation = False
        self.is_leaf_translation = False
        self.is_replay = False
        self.is_prefetch = False
        self.dead_on_hit = False
        self.signature = 0
        self.rrpv = 0
        self.fill_cycle = 0

    def reset_for_fill(self, line_addr: int, fill_cycle: int) -> None:
        self.line_addr = line_addr
        self.valid = True
        self.dirty = False
        self.reused = False
        self.is_translation = False
        self.is_leaf_translation = False
        self.is_replay = False
        self.is_prefetch = False
        self.dead_on_hit = False
        self.signature = 0
        self.fill_cycle = fill_cycle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "V" if self.valid else "-"
        return f"<Block {self.line_addr:#x} {state} rrpv={self.rrpv}>"
