"""Offline Belady-OPT replacement analysis.

Hawkeye is trained to mimic Belady's optimal policy; this module computes
what OPT itself would have achieved on a recorded access stream -- the
lower bound that contextualizes Fig 4's policy comparison (how far from
optimal is each policy's translation MPKI?).

The analysis is set-aware and per-category: given the (line, category)
stream observed at one cache level, it replays each set with Belady's
MIN (evict the line whose next use is farthest in the future) and
reports hits/misses per category.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

#: A recorded access: (line_addr, category).
Access = Tuple[int, str]

_INFINITY = 1 << 62


class OPTAnalysis:
    """Belady's MIN over a recorded stream of one cache's accesses."""

    def __init__(self, num_sets: int, num_ways: int):
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError("cache geometry must be positive")
        self.num_sets = num_sets
        self.num_ways = num_ways
        self.hits: Dict[str, int] = defaultdict(int)
        self.misses: Dict[str, int] = defaultdict(int)

    def run(self, stream: Sequence[Access], count_from: int = 0) -> None:
        """Replay ``stream`` under OPT (two passes: next-use then MIN).

        ``count_from`` marks the warmup boundary: earlier accesses still
        warm OPT's cache but are excluded from the hit/miss counters,
        mirroring how the simulator resets its statistics."""
        per_set: Dict[int, List[Tuple[int, str, bool]]] = defaultdict(list)
        for i, (line, category) in enumerate(stream):
            per_set[line % self.num_sets].append(
                (line, category, i >= count_from))
        for accesses in per_set.values():
            self._run_set(accesses)

    def _run_set(self, accesses: List[Tuple[int, str, bool]]) -> None:
        n = len(accesses)
        next_use = [_INFINITY] * n
        last_seen: Dict[int, int] = {}
        for i in range(n - 1, -1, -1):
            line = accesses[i][0]
            next_use[i] = last_seen.get(line, _INFINITY)
            last_seen[line] = i
        resident: Dict[int, int] = {}  # line -> its next-use index
        for i, (line, category, counted) in enumerate(accesses):
            if line in resident:
                if counted:
                    self.hits[category] += 1
            else:
                if counted:
                    self.misses[category] += 1
                if len(resident) >= self.num_ways:
                    victim = max(resident, key=resident.__getitem__)
                    del resident[victim]
            resident[line] = next_use[i]

    # -- reporting -------------------------------------------------------
    def mpki(self, category: str, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses[category] / instructions

    def hit_rate(self, category: str) -> float:
        total = self.hits[category] + self.misses[category]
        return self.hits[category] / total if total else 0.0


class AccessRecorder:
    """Wraps a cache's ``access`` to record its (line, category) stream.

    Attach with :meth:`attach`; the recorded stream feeds
    :class:`OPTAnalysis`."""

    def __init__(self, cache):
        self.cache = cache
        self.stream: List[Access] = []
        self.count_from = 0
        self._original = None

    def attach(self) -> "AccessRecorder":
        original = self.cache.access
        original_reset = self.cache.reset_stats

        def recording_access(req):
            self.stream.append((req.line_addr, req.category()))
            return original(req)

        def resetting(*args, **kwargs):
            # Align OPT's counting window with the statistics window:
            # accesses so far still warm OPT's cache, but only later
            # ones are counted (the core resets stats at this boundary).
            self.count_from = len(self.stream)
            return original_reset(*args, **kwargs)

        self._original = (original, original_reset)
        self.cache.access = recording_access
        self.cache.reset_stats = resetting
        return self

    def detach(self) -> None:
        if self._original is not None:
            self.cache.access, self.cache.reset_stats = self._original
            self._original = None

    def analyze(self) -> OPTAnalysis:
        """Run Belady-OPT over the recorded stream (counting from the
        statistics-reset boundary, if one occurred)."""
        opt = OPTAnalysis(self.cache.num_sets, self.cache.num_ways)
        opt.run(self.stream, count_from=self.count_from)
        return opt
