"""Set-associative, non-inclusive cache level.

Timing model: a request arrives at ``req.cycle``; a hit responds after the
level's access latency.  A miss forwards to the next level (advancing the
request clock by the lookup latency), allocates an MSHR entry, and fills on
response.  Requests to a line already in flight merge with the MSHR entry.

Storage: per-line metadata lives in the flat parallel columns of a
:class:`repro.cache.store.CacheStore` -- one preallocated column per field,
indexed by ``set_idx * num_ways + way`` -- and residency in one
``{line_addr: slot}`` dict for the whole cache.  The replacement policy is
bound to the same store, so RRPVs and signatures are shared columns rather
than per-block attributes (see :mod:`repro.cache.replacement.base`).

Paper-specific hooks:

* ``ideal_translations`` / ``ideal_replays`` -- the Fig 2 opportunity modes:
  the matching request class is answered with the hit latency even on a
  miss, while the miss still descends to consume bandwidth.
* ``on_leaf_translation_hit`` -- fired when a leaf-level PTE read hits here;
  the ATP prefetcher subscribes at L2C and LLC.
* ``evict_priority`` fills (ATP/TEMPO prefetches) are demoted to the highest
  eviction priority right after insertion.
* Recall-distance trackers for translation and replay blocks (Figs 5/7).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cache.block import CacheBlock
from repro.cache.replacement import make_policy
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.store import BlockView, CacheStore
from repro.memsys import request as request_pool
from repro.memsys.mshr import MSHR
from repro.memsys.request import AccessType, MemoryRequest
from repro.params import CacheConfig
from repro.stats.counters import CacheStats
from repro.stats.recall import RecallPair, RecallTracker

_PREFETCH = AccessType.PREFETCH
_STORE = AccessType.STORE
_WRITEBACK = AccessType.WRITEBACK


class Cache:
    """One level of the data-cache hierarchy."""

    def __init__(self, config: CacheConfig, next_level,
                 policy: Optional[ReplacementPolicy] = None,
                 track_recall: bool = False,
                 ideal_translations: bool = False,
                 ideal_replays: bool = False):
        self.config = config
        self.name = config.name
        self.num_sets = config.num_sets
        self.num_ways = config.ways
        self.latency = config.latency
        self.next_level = next_level
        self._store = CacheStore(self.num_sets, self.num_ways)
        self._slot_of = self._store.slot_of
        self._batch_mirror = None
        self._policy = None
        self.policy = policy or make_policy(
            config.replacement, self.num_sets, self.num_ways)
        self.mshr = MSHR(config.mshr_entries)
        self.stats = CacheStats(config.name)
        self.ideal_translations = ideal_translations
        self.ideal_replays = ideal_replays

        #: Demand-triggered prefetcher operating at this level (or None).
        self.prefetcher = None
        #: Optional fill-bypass hook (CbPred-style dead-block bypassing):
        #: a callable (request) -> bool; True skips installing the block.
        self.bypass_predicate = None
        self.fills_bypassed = 0
        #: ATP hook: (request, hit_completion_cycle) on leaf-PTE hits here.
        self.on_leaf_translation_hit: Optional[
            Callable[[MemoryRequest, int], None]] = None

        self.recall_pair: Optional[RecallPair] = None
        self.recall_translation: Optional[RecallTracker] = None
        self.recall_replay: Optional[RecallTracker] = None
        if track_recall:
            self.recall_pair = RecallPair(f"{self.name}/translation",
                                          f"{self.name}/replay")
            self.recall_translation = self.recall_pair.translation
            self.recall_replay = self.recall_pair.replay
        self.writebacks_issued = 0
        #: Extra in-flight prefetch capacity on top of the demand MSHRs
        #: (a model of the separate prefetch queue).
        self._prefetch_queue = config.mshr_entries
        self.prefetches_dropped = 0
        #: Inclusive-LLC support: caches to back-invalidate on eviction.
        self.back_invalidate_targets = []
        self.back_invalidations = 0

    # ------------------------------------------------------------------
    @property
    def policy(self) -> ReplacementPolicy:
        """The replacement policy (assigning one binds it to the store)."""
        return self._policy

    @policy.setter
    def policy(self, policy: ReplacementPolicy) -> None:
        policy.bind(self._store)
        self._policy = policy

    @property
    def store(self) -> CacheStore:
        """The flat column store (shared with the bound policy)."""
        return self._store

    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def contains(self, line_addr: int) -> bool:
        """Tag probe without side effects (used by tests and prefetchers)."""
        return line_addr in self._slot_of

    def block_for(self, line_addr: int) -> Optional[BlockView]:
        """A live block view for ``line_addr`` (no side effects)."""
        slot = self._slot_of.get(line_addr)
        return self._store.view(slot) if slot is not None else None

    def batch_mirror(self):
        """The numpy probe mirror over this cache's store (batch-backend
        kernel entry point; see :mod:`repro.cache.batch`).  Built lazily
        and cached -- the store keeps it coherent incrementally."""
        mirror = self._batch_mirror
        if mirror is None:
            from repro.cache.batch import StoreMirror
            mirror = self._batch_mirror = StoreMirror(self._store)
        return mirror

    # ------------------------------------------------------------------
    def access(self, req: MemoryRequest) -> int:
        """Process one request; returns the data-ready cycle."""
        line = req.line_addr
        set_idx = line % self.num_sets
        ready = req.cycle + self.latency

        rt = self.recall_translation
        if rt is not None and (rt.pending or self.recall_replay.pending):
            self.recall_pair.on_access(set_idx, line)

        slot = self._slot_of.get(line)
        if slot is not None:
            completion = self._handle_hit(req, set_idx, slot, ready)
        else:
            completion = self._handle_miss(req, set_idx, ready)

        if self.prefetcher is not None and req.is_demand_data:
            self._run_prefetcher(req, hit=slot is not None)
        return completion

    # ------------------------------------------------------------------
    def _handle_hit(self, req: MemoryRequest, set_idx: int, slot: int,
                    ready: int) -> int:
        store = self._store
        # Counter updates and the MSHR merge probe are inlined (they match
        # CacheStats.record and MSHR.lookup): this runs once per hit on the
        # innermost path.
        stats = self.stats
        cat = req._category
        stats.accesses[cat] += 1
        stats.hits[cat] += 1
        if req.is_leaf_translation:
            stats.leaf_accesses += 1
            stats.leaf_hits += 1
        req.served_by = self.name
        # A "hit" on a line whose fill is still in flight (e.g. an ATP
        # prefetch racing the replay demand) completes when the data
        # actually arrives, not at the tag-hit latency.
        mshr = self.mshr
        pending = mshr._inflight.get(req.line_addr)
        if pending is not None and pending > req.cycle:
            mshr.merges += 1
            if mshr.tracer is not None:
                mshr.tracer.instant("mshr_merge", req.cycle, cat="mshr",
                                    component=mshr.component,
                                    line=req.line_addr, fill=pending)
            if pending > ready:
                ready = pending
        access_type = req.access_type
        if access_type is _WRITEBACK:
            store.dirty[slot] = 1
            return ready
        if access_type is _PREFETCH:
            # Prefetch hits neither promote nor train the policy.
            return ready
        if store.is_prefetch[slot] and not store.reused[slot]:
            self.stats.prefetch_useful += 1
        store.reused[slot] = 1
        if access_type is _STORE:
            store.dirty[slot] = 1
        way = slot - set_idx * self.num_ways
        self._policy.on_hit(set_idx, way, req)
        if store.dead_on_hit[slot]:
            # ATP/TEMPO replay fills are dead after their single use (Fig 7):
            # the consuming hit must not promote them.
            self._policy.demote(set_idx, way)
        if req.is_leaf_translation and self.on_leaf_translation_hit is not None:
            self.on_leaf_translation_hit(req, ready)
        return ready

    def _handle_miss(self, req: MemoryRequest, set_idx: int,
                     ready: int) -> int:
        line = req.line_addr
        # Counter updates and the MSHR merge probe are inlined (they match
        # CacheStats.record and MSHR.lookup): this runs once per miss on
        # the innermost path.
        stats = self.stats
        cat = req._category
        stats.accesses[cat] += 1
        stats.misses[cat] += 1
        if req.is_leaf_translation:
            stats.leaf_accesses += 1
            stats.leaf_misses += 1
        if req.is_demand_data:
            self._policy.record_miss(set_idx)

        mshr = self.mshr
        merged = mshr._inflight.get(line)
        if merged is not None and merged > req.cycle:
            mshr.merges += 1
            if mshr.tracer is not None:
                mshr.tracer.instant("mshr_merge", req.cycle, cat="mshr",
                                    component=mshr.component,
                                    line=line, fill=merged)
            req.served_by = self.name
            if line not in self._slot_of:
                # The line was evicted while its fill was still in flight
                # (the victim loop does not know about MSHRs).  The
                # pending fill still delivers the data, so it re-installs
                # the block -- dropping it would strand the response.
                self._fill(req, set_idx, merged)
                if req.access_type is _WRITEBACK:
                    self._store.dirty[self._slot_of[line]] = 1
            return merged if merged > ready else ready

        if req.access_type is _PREFETCH:
            # Prefetches ride a separate queue: they never steal demand
            # MSHR capacity, but a flooded queue drops them.
            if (self.mshr.occupancy(req.cycle)
                    >= self.mshr.entries + self._prefetch_queue):
                self.prefetches_dropped += 1
                req.served_by = self.name
                req.dropped = True
                return ready
            req.cycle = ready
            fill_cycle = self.next_level.access(req)
            if req.dropped:
                # A lower level dropped the prefetch: no data will ever
                # return, so installing here would manufacture a line out
                # of nothing (and break inclusion under an inclusive LLC).
                return ready
            self.mshr.allocate_prefetch(line, fill_cycle, ready)
            self._fill(req, set_idx, fill_cycle)
            return fill_cycle

        ideal = ((req.is_leaf_translation and self.ideal_translations)
                 or (req.is_demand_data and req.is_replay
                     and self.ideal_replays))

        if req.access_type is _WRITEBACK:
            # Non-inclusive: install the written-back line here.
            self._fill(req, set_idx, ready)
            self._store.dirty[self._slot_of[line]] = 1
            return ready

        # A full MSHR delays the start of the downstream access until a
        # slot frees (MLP throttling).
        req.cycle = ready + self.mshr.admission_delay(ready)
        fill_cycle = self.next_level.access(req)
        self.mshr.allocate(line, fill_cycle, req.cycle)
        if (self.bypass_predicate is not None
                and self.bypass_predicate(req)):
            self.fills_bypassed += 1
        else:
            self._fill(req, set_idx, fill_cycle)
        if ideal:
            # Fig 2 mode: answer with the hit latency; the real miss above
            # already consumed MSHR and downstream bandwidth.
            req.served_by = self.name
            return ready
        return fill_cycle

    # ------------------------------------------------------------------
    def _fill(self, req: MemoryRequest, set_idx: int, fill_cycle: int) -> None:
        store = self._store
        slot = store.first_free(set_idx)
        if slot < 0:
            way = self._policy.victim(set_idx, req)
            slot = set_idx * self.num_ways + way
            self._policy.on_evict(set_idx, way)
            self._evict(set_idx, slot, fill_cycle)
        else:
            way = slot - set_idx * self.num_ways
        line = req.line_addr
        store.reset_slot(slot, line, fill_cycle)
        if req.is_translation:
            store.is_translation[slot] = 1
            if req.is_leaf_translation:
                store.is_leaf_translation[slot] = 1
        access_type = req.access_type
        is_prefetch = access_type is _PREFETCH
        if req.is_demand_data and req.is_replay:
            store.is_replay[slot] = 1
        if is_prefetch:
            store.is_prefetch[slot] = 1
        if access_type is _STORE:
            store.dirty[slot] = 1
        self._slot_of[line] = slot
        self._policy.on_fill(set_idx, way, req)
        if req.evict_priority:
            self._policy.demote(set_idx, way)
            store.dead_on_hit[slot] = 1
        if is_prefetch:
            self.stats.prefetch_fills += 1

    def invalidate(self, line_addr: int) -> Optional[CacheBlock]:
        """Drop ``line_addr`` if resident (inclusion back-invalidation).

        Returns a detached snapshot of the dropped block (still carrying
        its dirty bit) so the inclusive parent can fold a dirty
        upper-level copy into its own eviction writeback, or None when the
        line was not resident."""
        slot = self._slot_of.pop(line_addr, None)
        if slot is None:
            return None
        self._store.valid[slot] = 0
        return self._store.snapshot(slot)

    def _evict(self, set_idx: int, slot: int, cycle: int) -> None:
        store = self._store
        victim_line = store.line[slot]
        del self._slot_of[victim_line]
        # Back-invalidation: a dirty upper-level copy holds data the LLC
        # never saw; dropping it silently would lose the only dirty copy,
        # so it upgrades this eviction to a writeback.
        upper_dirty = False
        for upper in self.back_invalidate_targets:
            dropped = upper.invalidate(victim_line)
            if dropped:
                self.back_invalidations += 1
                upper_dirty = upper_dirty or getattr(dropped, "dirty", False)
        if self.recall_translation is not None:
            if store.is_leaf_translation[slot]:
                self.recall_translation.on_evict(set_idx, victim_line)
            elif store.is_replay[slot]:
                self.recall_replay.on_evict(set_idx, victim_line)
        if store.dirty[slot] or upper_dirty:
            self.writebacks_issued += 1
            wb = request_pool.acquire(victim_line << 6, cycle,
                                      access_type=_WRITEBACK)
            self.next_level.access(wb)
            request_pool.release(wb)
        store.valid[slot] = 0

    # ------------------------------------------------------------------
    def _run_prefetcher(self, req: MemoryRequest, hit: bool) -> None:
        candidates = self.prefetcher.operate(req, hit)
        for line_addr in candidates:
            if line_addr in self._slot_of:
                continue
            pref = request_pool.acquire(line_addr << 6, req.cycle,
                                        ip=req.ip, access_type=_PREFETCH)
            self.access(pref)
            request_pool.release(pref)

    def issue_prefetch(self, line_addr: int, cycle: int,
                       evict_priority: bool = False) -> int:
        """Externally-triggered prefetch into this level (ATP path)."""
        if line_addr in self._slot_of:
            return cycle
        pref = request_pool.acquire(line_addr << 6, cycle,
                                    access_type=_PREFETCH,
                                    evict_priority=evict_priority)
        done = self.access(pref)
        request_pool.release(pref)
        return done

    def reset_stats(self) -> None:
        """Zero all counters (warmup boundary); cache contents persist."""
        self.stats = CacheStats(self.name)
        self.writebacks_issued = 0
        self.prefetches_dropped = 0
        self.fills_bypassed = 0
        self.back_invalidations = 0
        self.mshr.merges = 0
        self.mshr.allocations = 0
        self.mshr.expirations = 0
        self.mshr.peak_occupancy = 0
        self.mshr.admission_stall_cycles = 0
        if self.recall_translation is not None:
            self.recall_pair = RecallPair(f"{self.name}/translation",
                                          f"{self.name}/replay")
            self.recall_translation = self.recall_pair.translation
            self.recall_replay = self.recall_pair.replay
        if self.prefetcher is not None:
            self.prefetcher.issued = 0

    # ------------------------------------------------------------------
    def rrpv_histogram(self) -> List[int]:
        """Counts of valid blocks by RRPV value (index = RRPV).

        Policies without RRPV state (LRU, Random) leave every block at
        RRPV 0, so the histogram degenerates to one bucket."""
        max_rrpv = getattr(self._policy, "max_rrpv", 0)
        counts = [0] * (max_rrpv + 1)
        rrpv = self._store.rrpv
        for slot in self._slot_of.values():
            value = rrpv[slot]
            counts[value if value < max_rrpv else max_rrpv] += 1
        return counts

    def occupancy_by_category(self) -> Dict[str, int]:
        """Count of resident blocks per fill category (for analysis)."""
        store = self._store
        is_translation = store.is_translation
        is_replay = store.is_replay
        translation = replay = other = 0
        for slot in self._slot_of.values():
            if is_translation[slot]:
                translation += 1
            elif is_replay[slot]:
                replay += 1
            else:
                other += 1
        return {"translation": translation, "replay": replay, "other": other}
