"""Set-associative, non-inclusive cache level.

Timing model: a request arrives at ``req.cycle``; a hit responds after the
level's access latency.  A miss forwards to the next level (advancing the
request clock by the lookup latency), allocates an MSHR entry, and fills on
response.  Requests to a line already in flight merge with the MSHR entry.

Paper-specific hooks:

* ``ideal_translations`` / ``ideal_replays`` -- the Fig 2 opportunity modes:
  the matching request class is answered with the hit latency even on a
  miss, while the miss still descends to consume bandwidth.
* ``on_leaf_translation_hit`` -- fired when a leaf-level PTE read hits here;
  the ATP prefetcher subscribes at L2C and LLC.
* ``evict_priority`` fills (ATP/TEMPO prefetches) are demoted to the highest
  eviction priority right after insertion.
* Recall-distance trackers for translation and replay blocks (Figs 5/7).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cache.block import CacheBlock
from repro.cache.replacement import make_policy
from repro.cache.replacement.base import ReplacementPolicy
from repro.memsys.mshr import MSHR
from repro.memsys.request import AccessType, MemoryRequest
from repro.params import CacheConfig
from repro.stats.counters import CacheStats
from repro.stats.recall import RecallTracker


class Cache:
    """One level of the data-cache hierarchy."""

    def __init__(self, config: CacheConfig, next_level,
                 policy: Optional[ReplacementPolicy] = None,
                 track_recall: bool = False,
                 ideal_translations: bool = False,
                 ideal_replays: bool = False):
        self.config = config
        self.name = config.name
        self.num_sets = config.num_sets
        self.num_ways = config.ways
        self.latency = config.latency
        self.next_level = next_level
        self.policy = policy or make_policy(
            config.replacement, self.num_sets, self.num_ways)
        self.mshr = MSHR(config.mshr_entries)
        self.stats = CacheStats(config.name)
        self.ideal_translations = ideal_translations
        self.ideal_replays = ideal_replays

        self._sets: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(self.num_ways)]
            for _ in range(self.num_sets)]
        self._lookup: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]

        #: Demand-triggered prefetcher operating at this level (or None).
        self.prefetcher = None
        #: Optional fill-bypass hook (CbPred-style dead-block bypassing):
        #: a callable (request) -> bool; True skips installing the block.
        self.bypass_predicate = None
        self.fills_bypassed = 0
        #: ATP hook: (request, hit_completion_cycle) on leaf-PTE hits here.
        self.on_leaf_translation_hit: Optional[
            Callable[[MemoryRequest, int], None]] = None

        self.recall_translation: Optional[RecallTracker] = None
        self.recall_replay: Optional[RecallTracker] = None
        if track_recall:
            self.recall_translation = RecallTracker(f"{self.name}/translation")
            self.recall_replay = RecallTracker(f"{self.name}/replay")
        self.writebacks_issued = 0
        #: Extra in-flight prefetch capacity on top of the demand MSHRs
        #: (a model of the separate prefetch queue).
        self._prefetch_queue = config.mshr_entries
        self.prefetches_dropped = 0
        #: Inclusive-LLC support: caches to back-invalidate on eviction.
        self.back_invalidate_targets = []
        self.back_invalidations = 0

    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def contains(self, line_addr: int) -> bool:
        """Tag probe without side effects (used by tests and prefetchers)."""
        return line_addr in self._lookup[self.set_index(line_addr)]

    def block_for(self, line_addr: int) -> Optional[CacheBlock]:
        """Return the resident block for ``line_addr`` (no side effects)."""
        set_idx = self.set_index(line_addr)
        way = self._lookup[set_idx].get(line_addr)
        return self._sets[set_idx][way] if way is not None else None

    # ------------------------------------------------------------------
    def access(self, req: MemoryRequest) -> int:
        """Process one request; returns the data-ready cycle."""
        line = req.line_addr
        set_idx = self.set_index(line)
        ready = req.cycle + self.latency
        category = req.category()
        is_leaf = req.is_leaf_translation

        if self.recall_translation is not None:
            self.recall_translation.on_access(set_idx, line)
            self.recall_replay.on_access(set_idx, line)

        way = self._lookup[set_idx].get(line)
        if way is not None:
            completion = self._handle_hit(req, set_idx, way, ready,
                                          category, is_leaf)
        else:
            completion = self._handle_miss(req, set_idx, ready,
                                           category, is_leaf)

        if self.prefetcher is not None and req.is_demand_data:
            self._run_prefetcher(req, hit=way is not None)
        return completion

    # ------------------------------------------------------------------
    def _handle_hit(self, req: MemoryRequest, set_idx: int, way: int,
                    ready: int, category: str, is_leaf: bool) -> int:
        block = self._sets[set_idx][way]
        self.stats.record(category, hit=True, leaf=is_leaf)
        req.served_by = self.name
        # A "hit" on a line whose fill is still in flight (e.g. an ATP
        # prefetch racing the replay demand) completes when the data
        # actually arrives, not at the tag-hit latency.
        pending = self.mshr.lookup(req.line_addr, req.cycle)
        if pending is not None and pending > ready:
            ready = pending
        if req.access_type is AccessType.WRITEBACK:
            block.dirty = True
            return ready
        if req.access_type is AccessType.PREFETCH:
            # Prefetch hits neither promote nor train the policy.
            return ready
        if block.is_prefetch and not block.reused:
            self.stats.prefetch_useful += 1
        block.reused = True
        if req.access_type is AccessType.STORE:
            block.dirty = True
        self.policy.on_hit(set_idx, way, req, block)
        if block.dead_on_hit:
            # ATP/TEMPO replay fills are dead after their single use (Fig 7):
            # the consuming hit must not promote them.
            self.policy.demote(set_idx, way, block)
        if is_leaf and self.on_leaf_translation_hit is not None:
            self.on_leaf_translation_hit(req, ready)
        return ready

    def _handle_miss(self, req: MemoryRequest, set_idx: int,
                     ready: int, category: str, is_leaf: bool) -> int:
        line = req.line_addr
        self.stats.record(category, hit=False, leaf=is_leaf)
        if req.is_demand_data:
            self.policy.record_miss(set_idx)

        merged = self.mshr.lookup(line, req.cycle)
        if merged is not None:
            req.served_by = self.name
            if line not in self._lookup[set_idx]:
                # The line was evicted while its fill was still in flight
                # (the victim loop does not know about MSHRs).  The
                # pending fill still delivers the data, so it re-installs
                # the block -- dropping it would strand the response.
                self._fill(req, set_idx, merged)
                if req.access_type is AccessType.WRITEBACK:
                    self._sets[set_idx][self._lookup[set_idx][line]].dirty \
                        = True
            return max(ready, merged)

        if req.access_type is AccessType.PREFETCH:
            # Prefetches ride a separate queue: they never steal demand
            # MSHR capacity, but a flooded queue drops them.
            if (self.mshr.occupancy(req.cycle)
                    >= self.mshr.entries + self._prefetch_queue):
                self.prefetches_dropped += 1
                req.served_by = self.name
                req.dropped = True
                return ready
            req.cycle = ready
            fill_cycle = self.next_level.access(req)
            if req.dropped:
                # A lower level dropped the prefetch: no data will ever
                # return, so installing here would manufacture a line out
                # of nothing (and break inclusion under an inclusive LLC).
                return ready
            self.mshr.allocate_prefetch(line, fill_cycle, ready)
            self._fill(req, set_idx, fill_cycle)
            return fill_cycle

        ideal = ((is_leaf and self.ideal_translations)
                 or (req.is_demand_data and req.is_replay
                     and self.ideal_replays))

        if req.access_type is AccessType.WRITEBACK:
            # Non-inclusive: install the written-back line here.
            self._fill(req, set_idx, ready)
            block = self._sets[set_idx][self._lookup[set_idx][line]]
            block.dirty = True
            return ready

        # A full MSHR delays the start of the downstream access until a
        # slot frees (MLP throttling).
        req.cycle = ready + self.mshr.admission_delay(ready)
        fill_cycle = self.next_level.access(req)
        self.mshr.allocate(line, fill_cycle, req.cycle)
        if (self.bypass_predicate is not None
                and self.bypass_predicate(req)):
            self.fills_bypassed += 1
        else:
            self._fill(req, set_idx, fill_cycle)
        if ideal:
            # Fig 2 mode: answer with the hit latency; the real miss above
            # already consumed MSHR and downstream bandwidth.
            req.served_by = self.name
            return ready
        return fill_cycle

    # ------------------------------------------------------------------
    def _fill(self, req: MemoryRequest, set_idx: int, fill_cycle: int) -> None:
        blocks = self._sets[set_idx]
        lookup = self._lookup[set_idx]
        way = None
        for w, block in enumerate(blocks):
            if not block.valid:
                way = w
                break
        if way is None:
            way = self.policy.victim(set_idx, req, blocks)
            victim = blocks[way]
            self.policy.on_evict(set_idx, way, victim)
            self._evict(set_idx, victim, fill_cycle)
        block = blocks[way]
        block.reset_for_fill(req.line_addr, fill_cycle)
        block.is_translation = req.is_translation
        block.is_leaf_translation = req.is_leaf_translation
        block.is_replay = req.is_demand_data and req.is_replay
        block.is_prefetch = req.access_type is AccessType.PREFETCH
        if req.access_type is AccessType.STORE:
            block.dirty = True
        lookup[req.line_addr] = way
        self.policy.on_fill(set_idx, way, req, block)
        if req.evict_priority:
            self.policy.demote(set_idx, way, block)
            block.dead_on_hit = True
        if block.is_prefetch:
            self.stats.prefetch_fills += 1

    def invalidate(self, line_addr: int) -> Optional[CacheBlock]:
        """Drop ``line_addr`` if resident (inclusion back-invalidation).

        Returns the dropped block (still carrying its dirty bit) so the
        inclusive parent can fold a dirty upper-level copy into its own
        eviction writeback, or None when the line was not resident."""
        set_idx = self.set_index(line_addr)
        way = self._lookup[set_idx].pop(line_addr, None)
        if way is None:
            return None
        block = self._sets[set_idx][way]
        block.valid = False
        return block

    def _evict(self, set_idx: int, victim: CacheBlock, cycle: int) -> None:
        del self._lookup[set_idx][victim.line_addr]
        # Back-invalidation: a dirty upper-level copy holds data the LLC
        # never saw; dropping it silently would lose the only dirty copy,
        # so it upgrades this eviction to a writeback.
        upper_dirty = False
        for upper in self.back_invalidate_targets:
            dropped = upper.invalidate(victim.line_addr)
            if dropped:
                self.back_invalidations += 1
                upper_dirty = upper_dirty or getattr(dropped, "dirty", False)
        if self.recall_translation is not None:
            if victim.is_leaf_translation:
                self.recall_translation.on_evict(set_idx, victim.line_addr)
            elif victim.is_replay:
                self.recall_replay.on_evict(set_idx, victim.line_addr)
        if victim.dirty or upper_dirty:
            self.writebacks_issued += 1
            wb = MemoryRequest(address=victim.line_addr << 6, cycle=cycle,
                               access_type=AccessType.WRITEBACK)
            self.next_level.access(wb)
        victim.valid = False

    # ------------------------------------------------------------------
    def _run_prefetcher(self, req: MemoryRequest, hit: bool) -> None:
        candidates = self.prefetcher.operate(req, hit)
        for line_addr in candidates:
            if self.contains(line_addr):
                continue
            pref = MemoryRequest(address=line_addr << 6, cycle=req.cycle,
                                 ip=req.ip,
                                 access_type=AccessType.PREFETCH)
            self.access(pref)

    def issue_prefetch(self, line_addr: int, cycle: int,
                       evict_priority: bool = False) -> int:
        """Externally-triggered prefetch into this level (ATP path)."""
        if self.contains(line_addr):
            return cycle
        pref = MemoryRequest(address=line_addr << 6, cycle=cycle,
                             access_type=AccessType.PREFETCH)
        pref.evict_priority = evict_priority
        return self.access(pref)

    def reset_stats(self) -> None:
        """Zero all counters (warmup boundary); cache contents persist."""
        self.stats = CacheStats(self.name)
        self.writebacks_issued = 0
        self.prefetches_dropped = 0
        self.fills_bypassed = 0
        self.back_invalidations = 0
        self.mshr.merges = 0
        self.mshr.allocations = 0
        self.mshr.expirations = 0
        self.mshr.peak_occupancy = 0
        self.mshr.admission_stall_cycles = 0
        if self.recall_translation is not None:
            self.recall_translation = RecallTracker(f"{self.name}/translation")
            self.recall_replay = RecallTracker(f"{self.name}/replay")
        if self.prefetcher is not None:
            self.prefetcher.issued = 0

    # ------------------------------------------------------------------
    def rrpv_histogram(self) -> List[int]:
        """Counts of valid blocks by RRPV value (index = RRPV).

        Policies without RRPV state (LRU, Random) leave every block at
        RRPV 0, so the histogram degenerates to one bucket."""
        max_rrpv = getattr(self.policy, "max_rrpv", 0)
        counts = [0] * (max_rrpv + 1)
        for blocks in self._sets:
            for block in blocks:
                if block.valid:
                    counts[min(block.rrpv, max_rrpv)] += 1
        return counts

    def occupancy_by_category(self) -> Dict[str, int]:
        """Count of resident blocks per fill category (for analysis)."""
        counts = {"translation": 0, "replay": 0, "other": 0}
        for blocks in self._sets:
            for block in blocks:
                if not block.valid:
                    continue
                if block.is_translation:
                    counts["translation"] += 1
                elif block.is_replay:
                    counts["replay"] += 1
                else:
                    counts["other"] += 1
        return counts
