"""Differential oracle: a timing-free functional reference model run in
lockstep with the timed hierarchy.

The timed :class:`~repro.cache.cache.Cache` fills eagerly (a missing line
enters the tag array at miss time, with its fill cycle attached), so for a
*timing-independent* replacement policy -- true LRU with no prefetcher and
no fill bypassing -- the hit/miss outcome and final residency of every set
are fully determined by the access sequence alone.  The oracle replays
that sequence through an independent set-associative true-LRU model and
cross-checks, per access, hit vs miss, and at the end of the run, per-line
residency and total hit/miss counts.

Timing-dependent traffic disqualifies the comparison: the first PREFETCH
request (drop decisions depend on queue occupancy) or an installed bypass
predicate *taints* the oracle, which then stops comparing rather than
reporting false violations.  The exact-page-walker half of the oracle
(translations must equal a direct page-table lookup) lives in
:class:`repro.validate.invariants.MMUChecker` and is never tainted.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.memsys.request import AccessType, MemoryRequest
from repro.validate.invariants import CheckContext

#: Categories whose hits/misses the shadow model mirrors.
_MODELLED = ("translation", "replay", "non_replay", "writeback", "ifetch")


class FunctionalCache:
    """Set-associative, true-LRU, no-timing reference cache.

    Mirrors the documented functional semantics of the timed cache:
    writeback hits set the dirty bit without promoting, demand and
    translation hits promote to MRU, every miss installs at MRU and
    evicts the LRU line of a full set.
    """

    def __init__(self, num_sets: int, num_ways: int):
        self.num_sets = num_sets
        self.num_ways = num_ways
        #: Per set: line_addr -> dirty, ordered LRU-first.
        self.sets: List[OrderedDict] = [OrderedDict()
                                        for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    def set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def contains(self, line_addr: int) -> bool:
        return line_addr in self.sets[self.set_index(line_addr)]

    def access(self, req: MemoryRequest) -> bool:
        """Apply one request; returns True on a hit."""
        line = req.line_addr
        entries = self.sets[self.set_index(line)]
        if line in entries:
            self.hits += 1
            if req.access_type is AccessType.WRITEBACK:
                entries[line] = True  # dirty, no LRU promotion
            else:
                dirty = entries.pop(line)
                entries[line] = dirty or req.access_type is AccessType.STORE
            return True
        self.misses += 1
        if len(entries) >= self.num_ways:
            entries.popitem(last=False)  # true-LRU victim
        entries[line] = req.access_type in (AccessType.STORE,
                                            AccessType.WRITEBACK)
        return False

    def invalidate(self, line_addr: int) -> None:
        self.sets[self.set_index(line_addr)].pop(line_addr, None)

    def residency(self, set_idx: int) -> set:
        return set(self.sets[set_idx])


class CacheOracle:
    """Runs a :class:`FunctionalCache` in lockstep with one timed cache."""

    def __init__(self, cache, ctx: CheckContext):
        self.cache = cache
        self.ctx = ctx
        self.shadow = FunctionalCache(cache.num_sets, cache.num_ways)
        self.compared = 0
        self.taint_reason: Optional[str] = None

    # ------------------------------------------------------------------
    def attach(self) -> "CacheOracle":
        cache = self.cache
        orig_access = cache.access
        orig_invalidate = cache.invalidate
        orig_reset = cache.reset_stats

        def oracle_access(req: MemoryRequest) -> int:
            if self.taint_reason is None:
                self._check_disqualifiers(req)
            if self.taint_reason is not None:
                return orig_access(req)
            real_hit = req.line_addr in cache.store.slot_of
            done = orig_access(req)
            shadow_hit = self.shadow.access(req)
            self.compared += 1
            if shadow_hit != real_hit:
                self.ctx.fail(
                    f"{cache.name}/oracle",
                    f"line {req.line_addr:#x} ({req.category()}): timed "
                    f"cache {'hit' if real_hit else 'missed'}, reference "
                    f"model {'hit' if shadow_hit else 'missed'}")
            return done

        def oracle_invalidate(line_addr: int):
            self.shadow.invalidate(line_addr)
            return orig_invalidate(line_addr)

        def oracle_reset() -> None:
            orig_reset()
            self.shadow.hits = 0
            self.shadow.misses = 0

        cache.access = oracle_access
        cache.invalidate = oracle_invalidate
        cache.reset_stats = oracle_reset
        return self

    def _check_disqualifiers(self, req: MemoryRequest) -> None:
        if req.access_type is AccessType.PREFETCH:
            self.taint_reason = "prefetch traffic (timing-dependent drops)"
        elif self.cache.bypass_predicate is not None:
            self.taint_reason = "fill-bypass predicate installed"
        elif self.cache.policy.name != "lru":
            self.taint_reason = f"policy {self.cache.policy.name!r} swapped in"

    # ------------------------------------------------------------------
    def final_check(self) -> None:
        """Cross-check counts and per-line residency at end of run."""
        if self.taint_reason is not None:
            return
        cache = self.cache
        stats = cache.stats
        real_hits = sum(stats.hits[c] for c in _MODELLED)
        real_misses = sum(stats.misses[c] for c in _MODELLED)
        self.ctx.require(
            (self.shadow.hits, self.shadow.misses)
            == (real_hits, real_misses),
            f"{cache.name}/oracle",
            f"hit/miss totals diverge: timed ({real_hits}, {real_misses}) "
            f"vs reference ({self.shadow.hits}, {self.shadow.misses})")
        real_sets: List[set] = [set() for _ in range(cache.num_sets)]
        for line in cache.store.slot_of:
            real_sets[line % cache.num_sets].add(line)
        for set_idx in range(cache.num_sets):
            real = real_sets[set_idx]
            ref = self.shadow.residency(set_idx)
            self.ctx.require(
                real == ref, f"{cache.name}/oracle",
                f"set {set_idx} residency diverges: timed-only "
                f"{sorted(map(hex, real - ref))}, reference-only "
                f"{sorted(map(hex, ref - real))}")


# ----------------------------------------------------------------------
# Cross-backend differential comparison
# ----------------------------------------------------------------------
def hierarchy_counters(hierarchy, core_result=None) -> Dict[str, int]:
    """Flatten every architectural counter into one ``{name: int}`` dict.

    This is the comparison surface of the cross-backend oracle: two
    simulations of the same trace under different execution backends
    (``SimConfig.backend``) must produce *identical* dicts -- the batch
    backend's contract is bit-identity, not statistical closeness.  Used
    by ``tests/test_backend_parity.py`` and the ``backend`` axis of
    :mod:`repro.validate.fuzz`.

    ``core_result`` (a :class:`repro.core.ooo_core.CoreResult`) extends
    the dict with retired-instruction/cycle counts and per-category
    stall accounting.
    """
    out: Dict[str, int] = {
        "loads": hierarchy.loads,
        "stores": hierarchy.stores,
        "mmu.translations": hierarchy.mmu.translations,
        "mmu.walk_cycles_total": hierarchy.mmu.walk_cycles_total,
        "walker.walks": hierarchy.mmu.walker.walks,
        "walker.pte_reads": hierarchy.mmu.walker.pte_reads,
        "dram.accesses": hierarchy.dram.accesses,
        "dram.row_hits": hierarchy.dram.row_hits,
        "dram.row_misses": hierarchy.dram.row_misses,
    }
    for tlb_name in ("dtlb", "stlb"):
        tlb = getattr(hierarchy.mmu, tlb_name)
        for ctr in ("accesses", "hits", "misses", "evictions"):
            out[f"{tlb_name}.{ctr}"] = getattr(tlb, ctr)
    for level in ("l1d", "l2c", "llc"):
        cache = getattr(hierarchy, level)
        stats = cache.stats
        for table_name, table in (("accesses", stats.accesses),
                                  ("hits", stats.hits),
                                  ("misses", stats.misses)):
            for cat, value in sorted(table.items()):
                if value:
                    out[f"{level}.{table_name}.{cat}"] = value
        out[f"{level}.leaf_accesses"] = stats.leaf_accesses
        out[f"{level}.leaf_hits"] = stats.leaf_hits
        out[f"{level}.leaf_misses"] = stats.leaf_misses
        out[f"{level}.prefetch_useful"] = stats.prefetch_useful
        out[f"{level}.prefetch_fills"] = stats.prefetch_fills
        out[f"{level}.writebacks_issued"] = cache.writebacks_issued
        out[f"{level}.fills_bypassed"] = cache.fills_bypassed
        out[f"{level}.back_invalidations"] = cache.back_invalidations
        out[f"{level}.mshr.merges"] = cache.mshr.merges
        out[f"{level}.mshr.allocations"] = cache.mshr.allocations
        out[f"{level}.mshr.peak_occupancy"] = cache.mshr.peak_occupancy
    for cat, levels in hierarchy.response_distribution.counts.items():
        for lvl, value in sorted(levels.items()):
            if value:
                out[f"response.{cat}.{lvl}"] = value
    if core_result is not None:
        out["core.instructions"] = core_result.instructions
        out["core.cycles"] = core_result.cycles
        for cat, cstats in core_result.stalls.by_category.items():
            out[f"stall.{cat.value}.total"] = cstats.total_cycles
            out[f"stall.{cat.value}.events"] = cstats.events
            out[f"stall.{cat.value}.max"] = cstats.max_cycles
    return out


def diff_counters(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, tuple]:
    """Keys on which two counter dicts disagree: ``{key: (a, b)}``.

    Keys missing from one side compare against ``None``.  An empty dict
    means the two runs were bit-identical on the compared surface.
    """
    out = {}
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            out[key] = (va, vb)
    return out
