"""Runtime validation subsystem: invariant checkers, a differential
functional oracle, and a deterministic fuzz driver.

Checking is off by default and costs nothing when off -- the hierarchy and
core call :func:`maybe_attach` / :func:`maybe_attach_core`, which return
``None`` unless checking was requested, and instrumentation works by
shadowing bound methods on individual instances (never by patching
classes), so unchecked runs execute the exact original code paths.

Enable with the ``--check`` CLI flag, the ``REPRO_CHECK=1`` environment
variable (inherited by parallel worker processes), or programmatically via
:func:`enable_checking`.  See ``docs/validation.md``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.validate.invariants import CheckContext, HierarchyChecker, \
    ROBChecker, ValidationError

__all__ = [
    "CheckContext", "HierarchyChecker", "ROBChecker", "ValidationError",
    "checking_enabled", "enable_checking", "maybe_attach",
    "maybe_attach_core",
]

_FORCED = False


def enable_checking(on: bool = True) -> None:
    """Force checking on (or off) for hierarchies built after this call."""
    global _FORCED
    _FORCED = on


def checking_enabled() -> bool:
    return _FORCED or os.environ.get("REPRO_CHECK", "") not in ("", "0")


def maybe_attach(hierarchy) -> Optional[HierarchyChecker]:
    """Attach the full checker stack to ``hierarchy`` iff checking is
    enabled.  Called from ``MemoryHierarchy.__init__``."""
    if not checking_enabled():
        return None
    return HierarchyChecker(hierarchy)


def maybe_attach_core(core) -> Optional[ROBChecker]:
    """Attach a ROB checker to ``core`` iff its hierarchy carries a
    checker (i.e. checking was enabled when the hierarchy was built)."""
    checker = getattr(core.hierarchy, "checker", None)
    if checker is None:
        return None
    rob = ROBChecker(core.rob_entries, checker.ctx)
    checker.rob_checkers.append(rob)
    return rob
