"""Runtime invariant checkers for the simulated hierarchy.

Every figure in the paper rests on the simulator's internal bookkeeping
being exactly right, so this module machine-checks the conservation laws
the rest of the code relies on *while the simulation runs*:

* **Cache stats** -- hits + misses == accesses for every request category,
  and the leaf-translation (PTL1) triple is internally consistent.
* **Cache structure** -- the tag lookup table and the block array describe
  the same residency: every mapped line points at a valid block with a
  matching tag, no two lines share a way, and the valid-block count equals
  the mapped-line count.
* **RRPV bounds** -- for RRIP-family policies, every valid block's RRPV
  stays within ``[0, max_rrpv]``.
* **MSHR conservation** -- ``allocations - expirations`` equals the live
  entry count, occupancy never exceeds demand + prefetch-queue capacity,
  and neither does the recorded peak.
* **Inclusion** -- under an inclusive LLC, every line resident in a
  back-invalidation target is also resident in the LLC.
* **TLB / PSC sanity** -- per-set entry counts within associativity, tag
  and frame tables keyed identically, paging-structure caches within
  capacity (checked by :class:`MMUChecker`).
* **ROB** -- occupancy never exceeds the ROB size and retirement times
  are monotonically non-decreasing (in-order retire).

Checkers attach by wrapping *instance* methods (``cache.access``,
``mmu.translate``, ...), so an unchecked run pays nothing beyond one
``is None`` test per retired instruction.  Enable them with the
``--check`` CLI flag or ``REPRO_CHECK=1``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.memsys.request import AccessType, MemoryRequest
from repro.params import PAGE_SHIFT, PAGE_SIZE
from repro.vm.psc import PSC_LEVELS


class ValidationError(AssertionError):
    """An invariant of the simulated machine was violated."""


class CheckContext:
    """Shared violation sink for one hierarchy's checkers.

    ``strict`` (the default) raises :class:`ValidationError` at the first
    violation; non-strict mode records every violation for inspection,
    which the fuzz shrinker uses to classify failures.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.events = 0
        self.violations: List[str] = []

    def fail(self, site: str, message: str) -> None:
        record = f"[{site}] {message}"
        self.violations.append(record)
        if self.strict:
            raise ValidationError(record)

    def require(self, condition: bool, site: str, message: str) -> None:
        if not condition:
            self.fail(site, message)


class CacheChecker:
    """Per-event invariant checks for one cache level."""

    def __init__(self, cache, ctx: CheckContext, inclusion_parent=None):
        self.cache = cache
        self.ctx = ctx
        #: The inclusive LLC this cache's contents must be a subset of
        #: (None outside inclusive mode).
        self.inclusion_parent = inclusion_parent
        #: Live MSHR entries at the last stats reset (conservation base).
        self._mshr_live_base = len(cache.mshr._inflight)

    # ------------------------------------------------------------------
    def attach(self) -> "CacheChecker":
        cache = self.cache
        orig_access = cache.access
        orig_reset = cache.reset_stats

        def checked_access(req: MemoryRequest) -> int:
            start = req.cycle
            done = orig_access(req)
            self.after_access(req, start, done)
            return done

        def checked_reset() -> None:
            orig_reset()
            self._mshr_live_base = len(cache.mshr._inflight)

        cache.access = checked_access
        cache.reset_stats = checked_reset
        cache._validation_attached = True
        return self

    # ------------------------------------------------------------------
    def after_access(self, req: MemoryRequest, start: int, done: int) -> None:
        ctx = self.ctx
        ctx.events += 1
        name = self.cache.name
        if done < start and not req.dropped:
            ctx.fail(name, f"completion {done} precedes issue {start}")
        self.check_stats(req.category())
        self.check_set(self.cache.set_index(req.line_addr))
        # Probe at the *original* request cycle: admission throttling
        # mutates req.cycle forward, and a pathological delay (the leak
        # this check exists to catch) would otherwise move the probe past
        # every leaked entry's fill time.
        self.check_mshr(start)
        parent = self.inclusion_parent
        if (parent is not None and self.cache.contains(req.line_addr)
                and not parent.contains(req.line_addr)):
            ctx.fail(name, f"line {req.line_addr:#x} resident here but "
                           f"absent from inclusive {parent.name}")

    def check_stats(self, category: Optional[str] = None) -> None:
        s = self.cache.stats
        ctx = self.ctx
        cats = [category] if category else sorted(
            set(s.accesses) | set(s.hits) | set(s.misses))
        for cat in cats:
            ctx.require(s.hits[cat] + s.misses[cat] == s.accesses[cat],
                        s.name, f"{cat}: hits {s.hits[cat]} + misses "
                                f"{s.misses[cat]} != accesses {s.accesses[cat]}")
        ctx.require(s.leaf_hits + s.leaf_misses == s.leaf_accesses, s.name,
                    f"leaf hits {s.leaf_hits} + misses {s.leaf_misses} "
                    f"!= accesses {s.leaf_accesses}")
        ctx.require(s.leaf_accesses <= s.accesses["translation"], s.name,
                    f"leaf accesses {s.leaf_accesses} exceed translation "
                    f"accesses {s.accesses['translation']}")

    def check_set(self, set_idx: int) -> None:
        cache = self.cache
        ctx = self.ctx
        store = cache.store
        slot_of = store.slot_of
        base = set_idx * cache.num_ways
        max_rrpv = getattr(cache.policy, "max_rrpv", None)
        for way in range(cache.num_ways):
            slot = base + way
            if not store.valid[slot]:
                continue
            line = store.line[slot]
            mapped = slot_of.get(line)
            # Two lines cannot share a way (each slot holds one tag) and a
            # mapped line cannot point at an invalid or mistagged slot:
            # both collapse into this single bijection check.
            ctx.require(mapped == slot, cache.name,
                        f"set {set_idx} way {way}: valid line {line:#x} "
                        f"maps to slot {mapped}, expected {slot}")
            ctx.require(line % cache.num_sets == set_idx, cache.name,
                        f"set {set_idx} way {way}: line {line:#x} belongs "
                        f"in set {line % cache.num_sets}")
            if max_rrpv is not None:
                rrpv = store.rrpv[slot]
                if not 0 <= rrpv <= max_rrpv:
                    ctx.fail(cache.name, f"set {set_idx} way {way}: RRPV "
                                         f"{rrpv} outside [0, {max_rrpv}]")

    def check_mshr(self, now: int) -> None:
        cache = self.cache
        ctx = self.ctx
        mshr = cache.mshr
        # Requests arrive with non-monotonic cycles (walk and replay
        # traffic issues into the past relative to the latest admission),
        # so "entries live at an arbitrary probe cycle" can transiently
        # exceed the capacity that each admission decision respected at
        # its own time.  The exact gate is enforced at admission by
        # construction; this check is a *leak detector* -- sustained
        # growth past twice the capacity means expiry or admission broke.
        capacity = mshr.entries + cache._prefetch_queue
        bound = 2 * capacity
        occ = mshr.occupancy(now)
        ctx.require(occ <= bound, cache.name,
                    f"MSHR occupancy {occ} exceeds 2x capacity {bound} "
                    f"({mshr.entries} demand + {cache._prefetch_queue} "
                    f"prefetch): entries are leaking")
        ctx.require(mshr.peak_occupancy <= bound, cache.name,
                    f"MSHR peak occupancy {mshr.peak_occupancy} exceeds "
                    f"2x capacity {bound}: entries are leaking")
        live = len(mshr._inflight) - self._mshr_live_base
        ctx.require(mshr.allocations - mshr.expirations == live, cache.name,
                    f"MSHR conservation: {mshr.allocations} allocations - "
                    f"{mshr.expirations} expirations != {live} live entries")

    def check_full(self) -> None:
        """Exhaustive sweep (end of run / periodic)."""
        self.check_stats()
        for set_idx in range(self.cache.num_sets):
            self.check_set(set_idx)
        # Global closure of the per-slot bijection: every mapped line
        # points at a valid, matching slot, and the residency-map size
        # equals the valid-slot count (no orphaned entries either way).
        cache = self.cache
        ctx = self.ctx
        store = cache.store
        for line, slot in store.slot_of.items():
            ctx.require(
                0 <= slot < store.size and store.valid[slot]
                and store.line[slot] == line, cache.name,
                f"line {line:#x} mapped to slot {slot}, which does not "
                f"hold it")
        valid = sum(store.valid)
        ctx.require(valid == len(store.slot_of), cache.name,
                    f"{valid} valid slots vs {len(store.slot_of)} mapped "
                    f"lines")
        parent = self.inclusion_parent
        if parent is not None:
            for line in store.slot_of:
                ctx.require(
                    parent.contains(line), cache.name,
                    f"line {line:#x} resident here but absent from "
                    f"inclusive {parent.name}")


class MMUChecker:
    """Translation-path checks: TLB/PSC sanity plus the exact-page-walker
    differential check (the MMU's cached translation must equal a direct,
    timing-free page-table lookup)."""

    def __init__(self, mmu, ctx: CheckContext):
        self.mmu = mmu
        self.ctx = ctx

    def attach(self) -> "MMUChecker":
        orig = self.mmu.translate

        def checked(va: int, cycle: int, ip: int = 0,
                    count_stats: bool = True):
            result = orig(va, cycle, ip, count_stats=count_stats)
            self.after_translate(va, cycle, result)
            return result

        self.mmu.translate = checked
        return self

    def after_translate(self, va: int, cycle: int, result) -> None:
        ctx = self.ctx
        ctx.events += 1
        mmu = self.mmu
        # Differential oracle: the page table is the ground truth the
        # TLBs/PSCs merely cache (translate() is idempotent once mapped).
        expected = ((mmu.page_table.translate(va) << PAGE_SHIFT)
                    | (va & (PAGE_SIZE - 1)))
        ctx.require(result.paddr == expected, "MMU",
                    f"VA {va:#x} translated to {result.paddr:#x}, page "
                    f"table says {expected:#x}")
        ctx.require(result.done_cycle >= cycle, "MMU",
                    f"translation completes at {result.done_cycle} before "
                    f"issue {cycle}")
        ctx.require(result.stlb_hit or result.walk is not None, "MMU",
                    "STLB miss without a page-table walk")
        ctx.require(not (result.dtlb_hit and not result.stlb_hit), "MMU",
                    "DTLB hit classified as STLB miss")
        self.check_structures()

    def check_structures(self) -> None:
        ctx = self.ctx
        mmu = self.mmu
        for tlb in (mmu.dtlb, mmu.stlb):
            ctx.require(tlb.hits + tlb.misses == tlb.accesses, tlb.name,
                        f"hits {tlb.hits} + misses {tlb.misses} != "
                        f"accesses {tlb.accesses}")
            for set_idx, (entries, frames) in enumerate(
                    zip(tlb._sets, tlb._frames)):
                ctx.require(len(entries) <= tlb.num_ways, tlb.name,
                            f"set {set_idx}: {len(entries)} entries exceed "
                            f"{tlb.num_ways} ways")
                ctx.require(entries.keys() == frames.keys(), tlb.name,
                            f"set {set_idx}: tag and frame tables diverge")
        psc = mmu.psc
        for level in PSC_LEVELS:
            held = psc.entries(level)
            cap = psc.config.entries_for_level(level)
            ctx.require(held <= cap, f"PSCL{level}",
                        f"{held} entries exceed capacity {cap}")
        ctx.require(mmu.walker.walks >= mmu.stlb.misses, "PTW",
                    f"{mmu.walker.walks} walks for {mmu.stlb.misses} "
                    f"STLB misses")


class ROBChecker:
    """In-order-retire and occupancy checks for the O(1)-recurrence core."""

    def __init__(self, rob_entries: int, ctx: CheckContext):
        self.rob_entries = rob_entries
        self.ctx = ctx
        self._last_retire: Optional[int] = None

    def on_retire(self, retire_cycle: int, occupancy: int) -> None:
        ctx = self.ctx
        ctx.events += 1
        ctx.require(occupancy <= self.rob_entries, "ROB",
                    f"occupancy {occupancy} exceeds {self.rob_entries} "
                    f"entries")
        if self._last_retire is not None:
            ctx.require(retire_cycle >= self._last_retire, "ROB",
                        f"retire at {retire_cycle} after retire at "
                        f"{self._last_retire}: out-of-order retirement")
        self._last_retire = retire_cycle


class HierarchyChecker:
    """Assembles and attaches all checkers (and, where the level's policy
    is timing-independent, the differential cache oracle) for one
    :class:`~repro.uncore.hierarchy.MemoryHierarchy`."""

    def __init__(self, hierarchy, strict: bool = True):
        from repro.validate.oracle import CacheOracle

        self.hierarchy = hierarchy
        self.ctx = CheckContext(strict)
        self.cache_checkers: List[CacheChecker] = []
        self.oracles: List[CacheOracle] = []
        self.rob_checkers: List[ROBChecker] = []

        llc = hierarchy.llc
        inclusive = (hierarchy.config.llc_inclusion == "inclusive"
                     and llc.bypass_predicate is None)
        levels = [hierarchy.l1d, hierarchy.l2c, llc]
        if hierarchy.frontend is not None:
            levels.append(hierarchy.frontend.l1i)
        for cache in levels:
            if getattr(cache, "_validation_attached", False):
                continue  # shared LLC: its owner already checks it
            parent = (llc if inclusive
                      and cache in llc.back_invalidate_targets else None)
            self.cache_checkers.append(
                CacheChecker(cache, self.ctx, inclusion_parent=parent)
                .attach())
            # The oracle only models true-LRU exactly; other policies are
            # covered by the invariant checkers and golden tests.
            if cache.policy.name == "lru":
                self.oracles.append(CacheOracle(cache, self.ctx).attach())
        self.mmu_checker = MMUChecker(hierarchy.mmu, self.ctx).attach()

    # ------------------------------------------------------------------
    @property
    def events(self) -> int:
        return self.ctx.events

    @property
    def violations(self) -> List[str]:
        return self.ctx.violations

    def final_check(self) -> None:
        """Exhaustive end-of-run sweep across every structure."""
        for checker in self.cache_checkers:
            checker.check_full()
        self.mmu_checker.check_structures()
        for oracle in self.oracles:
            oracle.final_check()
