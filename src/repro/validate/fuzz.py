"""Deterministic fuzz driver for the validation subsystem.

Generates seeded mixed streams (demand loads/stores, pointer-chase
dependency chains, huge-page regions, SMT interleavings -- translations,
replays and ATP/TEMPO prefetches arise naturally from the STLB misses the
streams provoke) across a matrix of configuration variants, runs each with
the full invariant-checker + oracle stack attached, and, when a stream
fails, shrinks it to a minimal reproducer and formats that as a
ready-to-paste regression test.

Everything is seeded: the same seed always produces the same stream,
variant and outcome, so CI failures replay locally with
``python -m repro.validate.fuzz <seed>`` or by pasting the generated test.

The execution backend (``SimConfig.backend``) is a fuzzed dimension too:
every stream additionally runs as a cross-backend differential --
scalar ``python`` vs vectorized ``numpy``, checkers *off* so the vector
fast path actually engages -- and any counter divergence
(:func:`repro.validate.oracle.diff_counters`) shrinks through the same
ddmin reducer as an invariant violation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.params import PAGE_SHIFT, PAGE_SIZE, EnhancementConfig, SimConfig, \
    default_config
from repro.validate.invariants import HierarchyChecker, ValidationError
from repro.vm.address import make_va
from repro.workloads.synthetic import RANDOM_BASE
from repro.workloads.trace import KIND_LOAD, KIND_NONMEM, KIND_STORE, Trace

#: Configuration variants the fuzzer cycles through (seed % len picks one).
VARIANTS = ("baseline", "lru", "tstack", "full", "inclusive", "hugepage",
            "prefetch", "smt")

#: Capacity divisor for fuzz configs: tiny caches maximise eviction and
#: back-invalidation pressure per simulated instruction.
FUZZ_SCALE = 64

#: One op: (kind, region, page, word, ip, dep).
Op = Tuple[int, int, int, int, int, int]


@dataclass(frozen=True)
class FuzzCase:
    """One seeded stream plus the configuration variant it runs under."""

    seed: int
    variant: str
    ops: Tuple[Op, ...]


def build_config(variant: str) -> SimConfig:
    cfg = default_config(FUZZ_SCALE)
    if variant == "baseline":
        return cfg
    if variant == "lru":
        # All-LRU levels: the differential oracle shadows the whole depth.
        import dataclasses
        return cfg.with_(
            l2c=dataclasses.replace(cfg.l2c, replacement="lru"),
            llc=dataclasses.replace(cfg.llc, replacement="lru"))
    if variant == "tstack":
        return cfg.with_(enhancements=EnhancementConfig(
            t_drrip=True, t_ship=True, newsign=True))
    full = cfg.with_(enhancements=EnhancementConfig.full())
    if variant == "full" or variant == "smt":
        return full
    if variant == "inclusive":
        return full.with_(llc_inclusion="inclusive")
    if variant == "hugepage":
        return full.with_(huge_page_policy="gather_region")
    if variant == "prefetch":
        return full.with_(l2c_prefetcher="next_line")
    raise ValueError(f"unknown fuzz variant {variant!r}")


# ----------------------------------------------------------------------
def op_address(region: int, page: int, word: int) -> int:
    """VA for one op: two radix-tree regions plus the huge-page region
    (mapped with 2MB pages under the ``hugepage`` variant)."""
    offset = (word * 8) % PAGE_SIZE
    if region == 0:
        return make_va([1, 0, 0, 0, page % 512], offset)
    if region == 1:
        return make_va([1, 0, 0, 1 + page // 32, page % 32], offset)
    return RANDOM_BASE + (page << PAGE_SHIFT) + offset


def make_ops(rng: random.Random, n: int) -> List[Op]:
    ops: List[Op] = []
    for _ in range(n):
        r = rng.random()
        kind = 1 if r < 0.55 else (2 if r < 0.75 else 0)
        region = rng.choice((0, 0, 1, 1, 2))
        page = rng.randrange(64)
        word = rng.randrange(64)
        ip = rng.randrange(16)
        dep = 1 if kind == 1 and rng.random() < 0.2 else 0
        ops.append((kind, region, page, word, ip, dep))
    return ops


def make_case(seed: int) -> FuzzCase:
    """Deterministically derive one fuzz case from ``seed``."""
    rng = random.Random(seed)
    variant = VARIANTS[seed % len(VARIANTS)]
    n = rng.randint(24, 140)
    return FuzzCase(seed=seed, variant=variant, ops=tuple(make_ops(rng, n)))


def ops_to_trace(ops: Sequence[Op]) -> Trace:
    n = len(ops)
    ips = np.zeros(n, dtype=np.int64)
    kinds = np.zeros(n, dtype=np.int8)
    addrs = np.zeros(n, dtype=np.int64)
    deps = np.zeros(n, dtype=np.int8)
    for i, (kind, region, page, word, ip, dep) in enumerate(ops):
        kinds[i] = (KIND_NONMEM, KIND_LOAD, KIND_STORE)[kind]
        ips[i] = 0x400000 + ip * 4
        deps[i] = dep
        if kind:
            addrs[i] = op_address(region, page, word)
    return Trace(ips, kinds, addrs, name="fuzz", deps=deps)


# ----------------------------------------------------------------------
def run_case(case: FuzzCase) -> HierarchyChecker:
    """Run one case with the full checker + oracle stack attached.

    Violations are recorded on the returned checker rather than raised,
    so the shrinker can probe sub-streams without try/except noise."""
    from repro.core.ooo_core import OOOCore
    from repro.core.smt import SMTCore
    from repro.uncore.hierarchy import MemoryHierarchy

    cfg = build_config(case.variant)
    hierarchy = MemoryHierarchy(cfg)
    checker = hierarchy.checker or HierarchyChecker(hierarchy)
    hierarchy.checker = checker
    try:
        if case.variant == "smt":
            traces = [ops_to_trace(case.ops[0::2]),
                      ops_to_trace(case.ops[1::2])]
            if min(len(t) for t in traces) == 0:
                traces = [ops_to_trace(case.ops)] * 2
            SMTCore(cfg, hierarchy).run(traces)
        else:
            OOOCore(cfg, hierarchy).run(ops_to_trace(case.ops))
        checker.final_check()
    except ValidationError:
        pass  # already recorded in checker.violations
    return checker


def compare_backends(case: FuzzCase) -> dict:
    """Cross-backend differential: run one stream under both execution
    backends and return the counter divergence (empty dict == parity).

    Unlike :func:`run_case`, no checker stack is attached -- attached
    per-event hooks force :class:`repro.core.batch_engine.BatchCore`
    into its scalar fallback, which would reduce this comparison to
    scalar-vs-scalar.  The comparison surface is the full flattened
    counter dict of :func:`repro.validate.oracle.hierarchy_counters`
    plus retired-instruction/cycle/stall accounting.
    """
    from repro.core.engine import make_core
    from repro.uncore.hierarchy import MemoryHierarchy
    from repro.validate.oracle import diff_counters, hierarchy_counters

    trace = ops_to_trace(case.ops)
    counters = {}
    for backend in ("python", "numpy"):
        cfg = build_config(case.variant).with_(backend=backend)
        hierarchy = MemoryHierarchy(cfg)
        result = make_core(cfg, hierarchy).run(trace)
        counters[backend] = hierarchy_counters(hierarchy, result)
    return diff_counters(counters["python"], counters["numpy"])


def shrink(case: FuzzCase, max_probes: int = 400,
           fails_predicate=None) -> FuzzCase:
    """ddmin-style reduction: drop chunks of the stream while the
    failure persists, halving the chunk size until single ops remain.

    ``fails_predicate`` (FuzzCase -> bool) selects what counts as a
    failure; the default is the invariant-checker stack.  The backend
    axis passes ``lambda sub: bool(compare_backends(sub))`` so the same
    reducer shrinks cross-backend divergence."""
    ops = list(case.ops)
    probes = 0
    predicate = fails_predicate or \
        (lambda sub: bool(run_case(sub).violations))

    def fails(candidate: List[Op]) -> bool:
        nonlocal probes
        probes += 1
        sub = FuzzCase(seed=case.seed, variant=case.variant,
                       ops=tuple(candidate))
        return predicate(sub)

    if not fails(ops):
        return case  # not reproducible: return untouched for inspection
    chunk = max(1, len(ops) // 2)
    while True:
        i = 0
        while i < len(ops) and probes < max_probes:
            candidate = ops[:i] + ops[i + chunk:]
            if candidate and fails(candidate):
                ops = candidate
            else:
                i += chunk
        if chunk == 1 or probes >= max_probes:
            break
        chunk = max(1, chunk // 2)
    return FuzzCase(seed=case.seed, variant=case.variant, ops=tuple(ops))


def format_regression(case: FuzzCase, violations: Sequence[str]) -> str:
    """A ready-to-paste pytest regression test for a failing case."""
    ops_lines = "\n".join(f"        {op!r}," for op in case.ops)
    summary = "; ".join(violations[:3]) or "unreproduced"
    return f'''
# --- auto-generated minimal reproducer (paste into tests/) -------------
def test_fuzz_regression_seed_{case.seed}():
    """Shrunk from fuzz seed {case.seed} ({case.variant} variant).

    Original violation(s): {summary}
    """
    from repro.validate.fuzz import FuzzCase, run_case

    case = FuzzCase(seed={case.seed}, variant={case.variant!r}, ops=(
{ops_lines}
    ))
    checker = run_case(case)
    assert not checker.violations, checker.violations
# ----------------------------------------------------------------------
'''


def format_divergence(case: FuzzCase, diff: dict) -> str:
    """A ready-to-paste pytest regression test for a backend divergence."""
    ops_lines = "\n".join(f"        {op!r}," for op in case.ops)
    keys = "; ".join(f"{k}: python={a} numpy={b}"
                     for k, (a, b) in list(diff.items())[:3])
    return f'''
# --- auto-generated minimal reproducer (paste into tests/) -------------
def test_fuzz_backend_divergence_seed_{case.seed}():
    """Shrunk from fuzz seed {case.seed} ({case.variant} variant).

    Diverging counter(s): {keys}
    """
    from repro.validate.fuzz import FuzzCase, compare_backends

    case = FuzzCase(seed={case.seed}, variant={case.variant!r}, ops=(
{ops_lines}
    ))
    assert compare_backends(case) == {{}}
# ----------------------------------------------------------------------
'''


def fuzz_range(first_seed: int, count: int,
               shrink_failures: bool = True) -> List[str]:
    """Run ``count`` seeded streams; returns formatted reproducers for
    every failure (empty list when all streams are clean).

    Each seed runs twice: once through the invariant-checker + oracle
    stack, and once as a scalar-vs-vectorized backend differential."""
    reports: List[str] = []
    for seed in range(first_seed, first_seed + count):
        case = make_case(seed)
        checker = run_case(case)
        if checker.violations:
            violations = list(checker.violations)
            shrunk = shrink(case) if shrink_failures else case
            reports.append(format_regression(shrunk, violations))
        diff = compare_backends(case)
        if diff:
            shrunk = case
            if shrink_failures:
                shrunk = shrink(
                    case,
                    fails_predicate=lambda sub: bool(compare_backends(sub)))
            reports.append(format_divergence(shrunk, diff))
    return reports


def main(argv: Sequence[str] = None) -> int:  # pragma: no cover - CLI aid
    import sys
    args = list(sys.argv[1:] if argv is None else argv)
    seed = int(args[0]) if args else 0
    count = int(args[1]) if len(args) > 1 else 1
    reports = fuzz_range(seed, count)
    for report in reports:
        print(report)
    print(f"{count} stream(s), {len(reports)} failure(s)")
    return 1 if reports else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
