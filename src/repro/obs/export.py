"""Machine-readable exporters for observed runs and figure batches.

Two document kinds share the ``repro.obs/v1`` schema:

* ``run``   -- manifest + interval time-series + end-of-run summary
  (produced by ``python -m repro run ... --metrics out.json``);
* ``batch`` -- batch manifest + per-run heartbeat events
  (produced by ``python -m repro figure ... --metrics out.json``).

:func:`validate` is a dependency-free structural validator (the container
has no ``jsonschema``); it returns a list of human-readable problems, empty
when the document conforms.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Optional

from repro.obs.manifest import SCHEMA


class ExportSchemaError(ValueError):
    """An export document does not conform to the repro.obs schema."""


def run_document(manifest: Dict, intervals: List[Dict],
                 summary: Optional[Dict] = None) -> Dict:
    return {"schema": SCHEMA, "kind": "run", "manifest": manifest,
            "intervals": intervals, "summary": summary or {}}


def batch_document(manifest: Dict, events: List[Dict]) -> Dict:
    return {"schema": SCHEMA, "kind": "batch", "manifest": manifest,
            "events": events}


def export_json(path, doc: Dict) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def load(path) -> Dict:
    """Read an export and check its schema identity."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        raise ExportSchemaError(
            f"{path}: not a {SCHEMA} export "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})")
    return doc


# ----------------------------------------------------------------------
# Structural validation
# ----------------------------------------------------------------------
_RUN_MANIFEST_KEYS = {
    "benchmark": str, "config_hash": str, "seed": int, "instructions": int,
    "warmup": int, "scale": int, "enhancements": dict, "geometry": dict,
    "version": str, "created_unix": (int, float),
}
_INTERVAL_KEYS = {
    "index": int, "instructions": int, "cycle_start": int, "cycle_end": int,
    "ipc": (int, float), "rob": dict, "levels": dict, "rrpv": dict,
    "occupancy": dict, "tlb": dict, "psc": dict, "dram": dict,
    "walks": dict, "stalls": dict,
}
_EVENT_KEYS = {
    "done": int, "total": int, "benchmark": str, "source": str,
    "wall_time": (int, float),
}


def _check_keys(obj: Dict, spec: Dict, where: str, errors: List[str]) -> None:
    for key, types in spec.items():
        if key not in obj:
            errors.append(f"{where}: missing key {key!r}")
        elif not isinstance(obj[key], types):
            errors.append(f"{where}: {key!r} has type "
                          f"{type(obj[key]).__name__}")


def validate(doc: Dict) -> List[str]:
    """Structurally validate an export; returns a list of problems."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    kind = doc.get("kind")
    if kind == "run":
        _validate_run(doc, errors)
    elif kind == "batch":
        _validate_batch(doc, errors)
    else:
        errors.append(f"kind is {kind!r}, expected 'run' or 'batch'")
    return errors


def _validate_run(doc: Dict, errors: List[str]) -> None:
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        errors.append("manifest missing or not an object")
    else:
        _check_keys(manifest, _RUN_MANIFEST_KEYS, "manifest", errors)
    intervals = doc.get("intervals")
    if not isinstance(intervals, list):
        errors.append("intervals missing or not a list")
        return
    prev_end = None
    for i, interval in enumerate(intervals):
        where = f"intervals[{i}]"
        if not isinstance(interval, dict):
            errors.append(f"{where}: not an object")
            continue
        _check_keys(interval, _INTERVAL_KEYS, where, errors)
        if interval.get("index") != i:
            errors.append(f"{where}: index {interval.get('index')!r} != {i}")
        if isinstance(interval.get("instructions"), int) \
                and interval["instructions"] <= 0:
            errors.append(f"{where}: empty interval")
        end = interval.get("cycle_end")
        if prev_end is not None and isinstance(end, int) and end < prev_end:
            errors.append(f"{where}: cycle_end {end} goes backwards")
        if isinstance(end, int):
            prev_end = end
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        errors.append("summary missing or not an object")


def _validate_batch(doc: Dict, errors: List[str]) -> None:
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        errors.append("manifest missing or not an object")
    elif "figures" not in manifest:
        errors.append("manifest: missing key 'figures'")
    events = doc.get("events")
    if not isinstance(events, list):
        errors.append("events missing or not a list")
        return
    for i, event in enumerate(events):
        where = f"events[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        _check_keys(event, _EVENT_KEYS, where, errors)


def validate_strict(doc: Dict) -> Dict:
    """Raise :class:`ExportSchemaError` on the first problem."""
    errors = validate(doc)
    if errors:
        raise ExportSchemaError("; ".join(errors[:5]))
    return doc


# ----------------------------------------------------------------------
# CSV (one row per interval, flattened headline columns)
# ----------------------------------------------------------------------
#: Flattened per-interval columns exported to CSV (a stable, headline
#: subset of the JSON record; the JSON remains the complete export).
CSV_COLUMNS = [
    "index", "instructions", "cycle_start", "cycle_end", "ipc",
    "rob_avg_occupancy", "rob_max_occupancy",
    "l1d_hit_rate", "l2c_hit_rate", "llc_hit_rate",
    "l2c_leaf_misses", "llc_leaf_misses",
    "dtlb_hit_rate", "stlb_hit_rate", "psc_hit_rate",
    "walks", "walk_cycles", "dram_accesses",
    "stall_translation", "stall_replay", "stall_non_replay", "stall_other",
]


def _flatten(interval: Dict) -> Dict:
    row = {key: interval[key] for key in
           ("index", "instructions", "cycle_start", "cycle_end", "ipc")}
    row["rob_avg_occupancy"] = interval["rob"]["avg_occupancy"]
    row["rob_max_occupancy"] = interval["rob"]["max_occupancy"]
    for level in ("l1d", "l2c", "llc"):
        row[f"{level}_hit_rate"] = interval["levels"][level]["hit_rate"]
    for level in ("l2c", "llc"):
        row[f"{level}_leaf_misses"] = interval["levels"][level]["leaf_misses"]
    for tlb in ("dtlb", "stlb"):
        row[f"{tlb}_hit_rate"] = interval["tlb"][tlb]["hit_rate"]
    row["psc_hit_rate"] = interval["psc"]["hit_rate"]
    row["walks"] = interval["walks"]["walks"]
    row["walk_cycles"] = interval["walks"]["walk_cycles"]
    row["dram_accesses"] = interval["dram"]["accesses"]
    for cat in ("translation", "replay", "non_replay", "other"):
        row[f"stall_{cat}"] = interval["stalls"][cat]
    return row


def export_csv(path, intervals: List[Dict]) -> None:
    """Write the flattened interval time-series as CSV."""
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        for interval in intervals:
            writer.writerow(_flatten(interval))
