"""`python -m repro trace` -- render, summarise and diff span traces.

Three sub-subcommands over ``repro.obs/trace-v1`` exports::

    repro trace render t.json [--limit N] [--perfetto out.json]
    repro trace summary t.json
    repro trace diff baseline.json enhanced.json

``render`` prints the span tree (and optionally converts to Chrome
Trace Event Format for Perfetto); ``summary`` prints the latency
breakdown, hotspot tables and the walk-depth x hit-level matrix;
``diff`` aligns two runs of the same trace and attributes the cycle
delta (see :mod:`repro.obs.trace.diff`).
"""

from __future__ import annotations

import sys

from repro.obs.export import ExportSchemaError
from repro.obs.trace.analysis import render_trace, summarize
from repro.obs.trace.diff import render_trace_diff, trace_diff
from repro.obs.trace.export import (export_perfetto, load_trace,
                                    validate_trace)


def _load_checked(path):
    doc = load_trace(path)
    errors = validate_trace(doc)
    if errors:
        raise ExportSchemaError(
            f"{path}: invalid trace export: " + "; ".join(errors[:5]))
    return doc


def cmd_trace(args) -> int:
    """Entry point for the ``trace`` subcommand."""
    try:
        if args.trace_cmd == "render":
            doc = _load_checked(args.path)
            if args.perfetto:
                export_perfetto(args.perfetto, doc)
                print(f"wrote {args.perfetto} "
                      f"(open in https://ui.perfetto.dev)",
                      file=sys.stderr)
            print(render_trace(doc, limit=args.limit))
        elif args.trace_cmd == "summary":
            print(summarize(_load_checked(args.path)))
        elif args.trace_cmd == "diff":
            diff = trace_diff(_load_checked(args.baseline),
                              _load_checked(args.enhanced))
            print(render_trace_diff(diff))
    except BrokenPipeError:
        raise  # downstream pager closed the pipe; main() handles it
    except (OSError, ExportSchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0
