"""``repro.obs/trace-v1`` documents: build, validate, load, convert.

A trace document is a flat span list plus the run manifest::

    {"schema": "repro.obs/trace-v1", "kind": "trace",
     "manifest": {...},                 # same manifest as repro.obs/v1
     "sample_every": N,                 # 1-in-N request sampling
     "requests_seen": .., "requests_sampled": .., "requests_dropped": ..,
     "spans": [{"id", "parent", "name", "cat", "start", "end", "args"}]}

Spans appear in completion order (children before their parent within a
request group); consumers reconstruct the tree from ``parent`` links.
:func:`validate_trace` is the dependency-free structural validator
(the container has no ``jsonschema``); :func:`perfetto_document`
converts a trace into Chrome Trace Event Format JSON that loads
directly in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.export import ExportSchemaError, export_json
from repro.obs.trace.spans import SpanTracer

#: Trace export identifier; bump on breaking layout changes.
TRACE_SCHEMA = "repro.obs/trace-v1"

#: Perfetto lane reserved for head-of-ROB stall spans.
_STALL_LANE = 0


def trace_document(manifest: Dict, tracer: SpanTracer) -> Dict:
    """Assemble the ``trace-v1`` document for one traced run."""
    return {
        "schema": TRACE_SCHEMA,
        "kind": "trace",
        "manifest": manifest,
        "sample_every": tracer.sample_every,
        "requests_seen": tracer.seq,
        "requests_sampled": tracer.sampled_requests,
        "requests_dropped": tracer.dropped_requests,
        "spans": [span.to_dict() for span in tracer.iter_spans()],
    }


def export_trace(path, doc: Dict) -> Dict:
    """Validate ``doc`` and write it as JSON; returns the document."""
    validate_trace_strict(doc)
    export_json(path, doc)
    return doc


def load_trace(path) -> Dict:
    """Read a trace export and check its schema identity."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or doc.get("schema") != TRACE_SCHEMA:
        got = doc.get("schema") if isinstance(doc, dict) else None
        raise ExportSchemaError(
            f"{path}: not a {TRACE_SCHEMA} export (schema={got!r})")
    return doc


# ----------------------------------------------------------------------
# Structural validation
# ----------------------------------------------------------------------
_DOC_KEYS = {
    "manifest": dict, "sample_every": int, "requests_seen": int,
    "requests_sampled": int, "requests_dropped": int, "spans": list,
}
_SPAN_KEYS = {
    "id": int, "name": str, "cat": str, "start": int, "end": int,
    "args": dict,
}


def validate_trace(doc: Dict) -> List[str]:
    """Structurally validate a trace export; returns a problem list."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != TRACE_SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, "
                      f"expected {TRACE_SCHEMA!r}")
    if doc.get("kind") != "trace":
        errors.append(f"kind is {doc.get('kind')!r}, expected 'trace'")
    for key, types in _DOC_KEYS.items():
        if key not in doc:
            errors.append(f"missing key {key!r}")
        elif not isinstance(doc[key], types):
            errors.append(f"{key!r} has type {type(doc[key]).__name__}")
    if isinstance(doc.get("sample_every"), int) and doc["sample_every"] < 1:
        errors.append("sample_every must be >= 1")
    spans = doc.get("spans")
    if not isinstance(spans, list):
        return errors
    ids: Dict[int, Dict] = {}
    for i, span in enumerate(spans):
        where = f"spans[{i}]"
        if not isinstance(span, dict):
            errors.append(f"{where}: not an object")
            continue
        for key, types in _SPAN_KEYS.items():
            if key not in span:
                errors.append(f"{where}: missing key {key!r}")
            elif not isinstance(span[key], types):
                errors.append(f"{where}: {key!r} has type "
                              f"{type(span[key]).__name__}")
        parent = span.get("parent", "absent")
        if parent == "absent":
            errors.append(f"{where}: missing key 'parent'")
        elif parent is not None and not isinstance(parent, int):
            errors.append(f"{where}: 'parent' has type "
                          f"{type(parent).__name__}")
        sid = span.get("id")
        if isinstance(sid, int):
            if sid in ids:
                errors.append(f"{where}: duplicate id {sid}")
            else:
                ids[sid] = span
        if isinstance(span.get("start"), int) \
                and isinstance(span.get("end"), int) \
                and span["end"] < span["start"]:
            errors.append(f"{where}: end {span['end']} before start "
                          f"{span['start']}")
    # Referential pass: every parent must exist (sampling keeps request
    # groups whole) and a child cannot begin before its parent did.
    for i, span in enumerate(spans):
        if not isinstance(span, dict):
            continue
        parent = span.get("parent")
        if parent is None or not isinstance(parent, int):
            continue
        ps = ids.get(parent)
        if ps is None:
            errors.append(f"spans[{i}]: parent {parent} not in document")
        elif isinstance(span.get("start"), int) \
                and isinstance(ps.get("start"), int) \
                and span["start"] < ps["start"]:
            errors.append(f"spans[{i}]: starts at {span['start']}, before "
                          f"its parent ({ps['start']})")
    return errors


def validate_trace_strict(doc: Dict) -> Dict:
    """Raise :class:`ExportSchemaError` on the first problem."""
    errors = validate_trace(doc)
    if errors:
        raise ExportSchemaError("; ".join(errors[:5]))
    return doc


# ----------------------------------------------------------------------
# Chrome Trace Event Format / Perfetto
# ----------------------------------------------------------------------
def _roots_of(spans: List[Dict]) -> Dict[int, Dict]:
    """Map every span id to its request's root span."""
    by_id = {s["id"]: s for s in spans}
    roots: Dict[int, Dict] = {}

    def resolve(span: Dict) -> Dict:
        chain = []
        while span["parent"] is not None and span["id"] not in roots:
            chain.append(span)
            span = by_id[span["parent"]]
        root = roots.get(span["id"], span)
        for s in chain:
            roots[s["id"]] = root
        roots[root["id"]] = root
        return root

    for span in spans:
        resolve(span)
    return roots


def perfetto_document(doc: Dict) -> Dict:
    """Convert a trace-v1 document into Chrome Trace Event Format.

    Each request group gets a timeline lane (``tid``); concurrent
    requests land on different lanes (greedy interval colouring) so
    overlapping lifecycles render side by side.  Head-of-ROB stall
    spans share one dedicated lane.  One simulated cycle maps to one
    microsecond of trace time (``ts``/``dur`` are in us in the format).
    """
    spans = doc["spans"]
    roots = _roots_of(spans)
    # Assign lanes to roots in start order; a lane is reusable once its
    # previous occupant's subtree has fully completed.
    subtree_end: Dict[int, int] = {}
    for span in spans:
        rid = roots[span["id"]]["id"]
        subtree_end[rid] = max(subtree_end.get(rid, 0), span["end"])
    lane_of: Dict[int, int] = {}
    lane_free: List[int] = []  # lane index -> free-at cycle
    ordered = sorted({r["id"]: r for r in roots.values()}.values(),
                     key=lambda r: (r["start"], r["id"]))
    for root in ordered:
        for lane, free_at in enumerate(lane_free):
            if free_at <= root["start"]:
                lane_free[lane] = subtree_end[root["id"]]
                lane_of[root["id"]] = lane + 1  # lane 0 is the stall lane
                break
        else:
            lane_free.append(subtree_end[root["id"]])
            lane_of[root["id"]] = len(lane_free)

    events: List[Dict] = [
        {"ph": "M", "pid": 0, "tid": _STALL_LANE, "name": "thread_name",
         "args": {"name": "head-of-ROB stalls"}},
    ]
    for lane in range(1, len(lane_free) + 1):
        events.append({"ph": "M", "pid": 0, "tid": lane,
                       "name": "thread_name",
                       "args": {"name": f"requests (lane {lane})"}})
    for span in spans:
        is_stall = span["name"] == "stall"
        tid = _STALL_LANE if is_stall \
            else lane_of[roots[span["id"]]["id"]]
        args = dict(span["args"], span_id=span["id"])
        if span["parent"] is not None:
            args["parent"] = span["parent"]
        if span["end"] > span["start"]:
            events.append({"name": span["name"], "cat": span["cat"] or "sim",
                           "ph": "X", "ts": span["start"],
                           "dur": span["end"] - span["start"],
                           "pid": 0, "tid": tid, "args": args})
        else:
            events.append({"name": span["name"], "cat": span["cat"] or "sim",
                           "ph": "i", "s": "t", "ts": span["start"],
                           "pid": 0, "tid": tid, "args": args})
    events.sort(key=lambda e: (e.get("ts", -1), e["tid"]))
    manifest = doc.get("manifest", {})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "benchmark": manifest.get("benchmark"),
            "config_hash": manifest.get("config_hash"),
            "sample_every": doc.get("sample_every"),
        },
    }


def export_perfetto(path, doc: Dict) -> None:
    """Write the Perfetto/Chrome JSON conversion of a trace document."""
    with open(path, "w") as f:
        json.dump(perfetto_document(doc), f, indent=None,
                  separators=(",", ":"), sort_keys=True)
        f.write("\n")


def load_perfetto(path) -> Dict:
    with open(path) as f:
        return json.load(f)
