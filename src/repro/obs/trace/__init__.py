"""Request-level causal tracing (``repro.obs.trace``).

A span-based tracer that follows every sampled memory access through
its full lifecycle -- TLB/PSC lookup, each page-walk level, per-level
cache probes, MSHR wait/merge, DRAM service, ATP/TEMPO prefetch
triggers, and the head-of-ROB stall the access caused -- as nested
spans with deterministic ids and parent links encoding causality.

Three consumers ship on top of the raw spans:

* :mod:`~repro.obs.trace.export` -- the ``repro.obs/trace-v1`` schema
  (validator included) and a Chrome Trace Event Format / Perfetto
  converter;
* :mod:`~repro.obs.trace.analysis` -- latency breakdowns, per-PC and
  per-page hotspot tables, walk-depth x hit-level matrices, critical
  paths, ASCII rendering;
* :mod:`~repro.obs.trace.diff` -- ``repro trace diff A B``: aligns two
  runs of the same trace and attributes the cycle delta to walk
  shortening, replay prefetch release and insertion-policy effects.

Enable per run with ``--trace PATH [--trace-sample N]`` (CLI) or
``repro.api.run(..., trace=...)`` / ``repro.api.trace(...)``.  Off by
default; when off every instrumented component pays one ``is None``
test (the validate/sampler cost model) and no wrapper objects exist.
See ``docs/observability.md``.
"""

from repro.obs.trace.analysis import (TraceIndex, category_breakdown,
                                      critical_path, hotspots,
                                      latency_breakdown, render_trace,
                                      summarize, walk_hit_matrix)
from repro.obs.trace.diff import (TraceAlignmentError, render_trace_diff,
                                  trace_diff)
from repro.obs.trace.export import (TRACE_SCHEMA, export_perfetto,
                                    export_trace, load_perfetto,
                                    load_trace, perfetto_document,
                                    trace_document, validate_trace,
                                    validate_trace_strict)
from repro.obs.trace.instrument import attach, detach
from repro.obs.trace.spans import DEFAULT_RING_CAPACITY, Span, SpanTracer

__all__ = [
    "DEFAULT_RING_CAPACITY", "Span", "SpanTracer", "TRACE_SCHEMA",
    "TraceAlignmentError", "TraceIndex", "attach", "category_breakdown",
    "critical_path", "detach", "export_perfetto", "export_trace",
    "hotspots", "latency_breakdown", "load_perfetto", "load_trace",
    "perfetto_document", "render_trace", "render_trace_diff", "summarize",
    "trace_diff", "trace_document", "validate_trace",
    "validate_trace_strict", "walk_hit_matrix",
]
