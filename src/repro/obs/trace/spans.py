"""Span-based request tracer: the event model behind ``repro.obs.trace``.

Every traced memory access becomes one *request group*: a root span
(``load``/``store``) plus nested child spans for each stage of its
lifecycle -- the TLB/walk phase (``translate`` -> ``walk`` ->
``pte_L5``..``pte_L1``), the data phase (``data`` -> ``L1D``/``L2C``/
``LLC``/``DRAM`` probes), MSHR waits and merges, prefetch triggers
(ATP/TEMPO) and the head-of-ROB stall the access eventually caused.
Categories follow the paper's request taxonomy (``translation`` /
``replay`` / ``non_replay`` / ``prefetch`` / ``mshr`` / stall buckets);
parent links encode causality (a walk's leaf hit *releases* the replay
prefetch issued underneath it).

Design constraints, in priority order:

* **Zero overhead when off** -- components guard every trace site with
  one ``tracer is None`` test (the validate/sampler pattern); no wrapper
  objects exist on an untraced hierarchy.
* **Read-only when on** -- spans record cycles the simulator computed
  anyway; attaching a tracer never perturbs simulated timing.
* **Deterministic** -- span ids are a simple creation-order counter, so
  the same seed and config produce byte-identical traces.
* **Bounded** -- completed request groups live in a ring buffer
  (:attr:`SpanTracer.max_requests`); long figure runs stay bounded in
  memory and the export records how many groups were dropped.

Sampling is per *request*: a 1-in-N tracer keeps every span of a sampled
request and no span of an unsampled one, so parent/child structure is
always complete.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

#: Default ring-buffer capacity, in completed request groups.
DEFAULT_RING_CAPACITY = 50_000


@dataclass
class Span:
    """One stage of one request's lifecycle (half-open cycle interval)."""

    id: int
    parent: Optional[int]
    name: str
    cat: str
    start: int
    end: int
    args: Dict = field(default_factory=dict)

    @property
    def duration(self) -> int:
        return self.end - self.start

    def to_dict(self) -> Dict:
        return {"id": self.id, "parent": self.parent, "name": self.name,
                "cat": self.cat, "start": self.start, "end": self.end,
                "args": self.args}


class SpanTracer:
    """Records nested spans for sampled requests into a bounded ring.

    Components call :meth:`begin`/:meth:`end` (or :meth:`complete` /
    :meth:`instant`) while a request group opened by
    :meth:`begin_request` is active; calls outside a group -- tracer
    disabled (warmup), request sampled out, or instrumentation firing
    with no demand access in flight -- are cheap no-ops returning
    ``None``.  The call stack of the single-threaded simulator provides
    parent/child nesting for free.
    """

    def __init__(self, sample_every: int = 1,
                 max_requests: int = DEFAULT_RING_CAPACITY,
                 enabled: bool = True):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.sample_every = sample_every
        self.max_requests = max_requests
        #: False while the run is still in warmup; the core enables the
        #: tracer at the ROI boundary (mirroring the interval sampler).
        self.enabled = enabled
        #: Completed request groups, oldest first (bounded ring).
        self.requests: Deque[List[Span]] = deque()
        #: Groups evicted from the ring (the export records this).
        self.dropped_requests = 0
        #: Requests seen while enabled (sampled or not); doubles as the
        #: deterministic per-run request sequence number.
        self.seq = 0
        #: Requests actually recorded.
        self.sampled_requests = 0
        self._next_id = 1
        self._stack: List[Span] = []
        self._group: Optional[List[Span]] = None
        self._last_group: Optional[List[Span]] = None
        self._last_root: Optional[Span] = None

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> None:
        """Start recording (called by the core at the ROI boundary)."""
        self.enabled = True

    @property
    def span_count(self) -> int:
        return sum(len(group) for group in self.requests)

    # -- request groups ------------------------------------------------
    def begin_request(self, name: str, cycle: int, **args) -> Optional[Span]:
        """Open a root span; returns ``None`` when disabled/sampled out."""
        if not self.enabled:
            return None
        seq = self.seq
        self.seq = seq + 1
        self._last_group = None
        self._last_root = None
        if self.sample_every > 1 and seq % self.sample_every:
            return None
        args["seq"] = seq
        root = Span(self._next_id, None, name, "", cycle, cycle, args)
        self._next_id += 1
        self._group = []
        self._stack = [root]
        self.sampled_requests += 1
        return root

    def end_request(self, root: Optional[Span], cycle: int,
                    cat: str = "", **args) -> None:
        """Close the root span and commit its group to the ring."""
        if root is None:
            return
        root.end = cycle
        if cat:
            root.cat = cat
        if args:
            root.args.update(args)
        self._stack.clear()
        group = self._group
        group.append(root)
        self._group = None
        self.requests.append(group)
        if len(self.requests) > self.max_requests:
            self.requests.popleft()
            self.dropped_requests += 1
        self._last_group = group
        self._last_root = root

    # -- child spans ---------------------------------------------------
    def begin(self, name: str, cycle: int, cat: str = "",
              **args) -> Optional[Span]:
        """Open a child span nested under the current stack top."""
        if self._group is None:
            return None
        parent = self._stack[-1].id if self._stack else None
        span = Span(self._next_id, parent, name, cat, cycle, cycle, args)
        self._next_id += 1
        self._stack.append(span)
        return span

    def end(self, span: Optional[Span], cycle: int, **args) -> None:
        """Close ``span`` at ``cycle`` and record it."""
        if span is None:
            return
        span.end = cycle
        if args:
            span.args.update(args)
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:  # defensive: unwinding out of order must not corrupt state
            try:
                stack.remove(span)
            except ValueError:
                pass
        if self._group is not None:
            self._group.append(span)

    def complete(self, name: str, start: int, end: int, cat: str = "",
                 **args) -> Optional[Span]:
        """Record an already-finished span (no stack push)."""
        if self._group is None:
            return None
        parent = self._stack[-1].id if self._stack else None
        span = Span(self._next_id, parent, name, cat, start, end, args)
        self._next_id += 1
        self._group.append(span)
        return span

    def instant(self, name: str, cycle: int, cat: str = "",
                **args) -> Optional[Span]:
        """Record a zero-duration marker (prefetch triggers, merges)."""
        return self.complete(name, cycle, cycle, cat, **args)

    # -- retire-side attribution ---------------------------------------
    def attach_load_stall(self, start: int, end: int, is_replay: bool,
                          translation_done: int, ip: int = 0) -> None:
        """Attach the head-of-ROB stall window of the request that just
        committed, split exactly like
        :meth:`repro.core.rob.StallAccounting.record_load_stall`:
        the portion while the walk was pending is a ``translation``
        stall, the remainder a ``replay`` stall; STLB hits charge
        ``non_replay``."""
        root = self._last_root
        if root is None or end <= start:
            return
        group = self._last_group
        if is_replay:
            t_end = min(max(translation_done, start), end)
            if t_end > start:
                group.append(Span(self._next_id, root.id, "stall",
                                  "translation", start, t_end, {"ip": ip}))
                self._next_id += 1
            if end > t_end:
                group.append(Span(self._next_id, root.id, "stall",
                                  "replay", t_end, end, {"ip": ip}))
                self._next_id += 1
        else:
            group.append(Span(self._next_id, root.id, "stall",
                              "non_replay", start, end, {"ip": ip}))
            self._next_id += 1
        self._last_root = None  # one stall window per request

    # -- access --------------------------------------------------------
    def iter_spans(self):
        """All recorded spans, group by group (creation order within)."""
        for group in self.requests:
            yield from group

    def clear(self) -> None:
        self.requests.clear()
        self.dropped_requests = 0
        self.seq = 0
        self.sampled_requests = 0
        self._next_id = 1
        self._stack = []
        self._group = None
        self._last_group = None
        self._last_root = None
