"""Wiring a :class:`~repro.obs.trace.spans.SpanTracer` into a hierarchy.

Two complementary mechanisms:

* **Inline guards** -- the hierarchy, MMU, walker, MSHRs, DRAM, ATP,
  TEMPO and the core each carry a ``tracer`` attribute that is ``None``
  by default; their hot paths pay one ``is None`` test when untraced
  (the validate/sampler cost model).  :func:`attach` points them all at
  the same tracer.
* **Cache wrappers** -- per-level probe spans (L1D/L2C/LLC) come from
  wrapping ``Cache.access`` at attach time, so the cache hot path
  carries no permanent instrumentation at all.  The wrappers record the
  request's category, page-table level and serving component; nesting
  falls out of the recursive ``next_level.access`` call structure.

:func:`detach` restores every wrapped method exactly (including the
case where ``access`` was already an instance attribute) and resets all
``tracer`` attributes to ``None``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.obs.trace.spans import SpanTracer

#: Per-hierarchy bookkeeping for detach: (object, original, had_attr).
_ATTACH_STATE = "_trace_attach_state"


def _wrap_cache(cache, tracer: SpanTracer, saved: List[Tuple]) -> None:
    original = cache.access
    had_instance_attr = "access" in cache.__dict__
    name = cache.name
    begin = tracer.begin
    end = tracer.end

    def traced_access(req):
        span = begin(name, req.cycle, cat=req.category(),
                     line=req.line_addr)
        if span is not None and req.pt_level:
            span.args["level"] = req.pt_level
            span.args["leaf"] = req.is_leaf_translation
        done = original(req)
        end(span, done, served_by=req.served_by,
            hit=req.served_by == name)
        return done

    saved.append((cache, original, had_instance_attr))
    cache.access = traced_access


def attach(hierarchy, tracer: SpanTracer) -> SpanTracer:
    """Point every instrumented component of ``hierarchy`` at ``tracer``.

    Raises ``RuntimeError`` when a tracer is already attached (nesting
    tracers would double-record every span).
    """
    if getattr(hierarchy, "tracer", None) is not None:
        raise RuntimeError("a tracer is already attached; detach() first")
    saved: List[Tuple] = []
    for cache in (hierarchy.l1d, hierarchy.l2c, hierarchy.llc):
        _wrap_cache(cache, tracer, saved)
        cache.mshr.tracer = tracer
        cache.mshr.component = cache.name
    setattr(hierarchy, _ATTACH_STATE, saved)
    hierarchy.tracer = tracer
    hierarchy.mmu.tracer = tracer
    hierarchy.mmu.walker.tracer = tracer
    hierarchy.dram.tracer = tracer
    if hierarchy.atp is not None:
        hierarchy.atp.tracer = tracer
    if hierarchy.tempo is not None:
        hierarchy.tempo.tracer = tracer
    return tracer


def detach(hierarchy) -> None:
    """Undo :func:`attach`: restore wrapped methods, clear tracer refs."""
    saved = getattr(hierarchy, _ATTACH_STATE, None)
    if saved is not None:
        for obj, original, had_instance_attr in saved:
            if had_instance_attr:
                obj.access = original
            else:
                obj.__dict__.pop("access", None)
        delattr(hierarchy, _ATTACH_STATE)
    for cache in (hierarchy.l1d, hierarchy.l2c, hierarchy.llc):
        cache.mshr.tracer = None
    hierarchy.tracer = None
    hierarchy.mmu.tracer = None
    hierarchy.mmu.walker.tracer = None
    hierarchy.dram.tracer = None
    if hierarchy.atp is not None:
        hierarchy.atp.tracer = None
    if hierarchy.tempo is not None:
        hierarchy.tempo.tracer = None
