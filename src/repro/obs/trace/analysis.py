"""Latency-breakdown and critical-path analyses over trace documents.

Consumes ``repro.obs/trace-v1`` dicts (see
:mod:`repro.obs.trace.export`) and produces the per-request evidence the
aggregate counters cannot: where each category of span spends its
cycles, which PCs and pages dominate walk/replay traffic, how walk
depth correlates with the level that served the leaf PTE, and -- for a
single request -- the chain of spans that determined its completion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.params import PAGE_SHIFT
from repro.stats.report import format_table

#: Span names that represent component probes (vs. structural phases).
_COMPONENT_NAMES = ("L1D", "L2C", "LLC", "DRAM")


class TraceIndex:
    """Id/parent/root indexes over a trace document's span list."""

    def __init__(self, doc: Dict):
        self.doc = doc
        self.spans: List[Dict] = doc["spans"]
        self.by_id: Dict[int, Dict] = {s["id"]: s for s in self.spans}
        self.children: Dict[int, List[Dict]] = {}
        self.roots: List[Dict] = []
        for span in self.spans:
            parent = span["parent"]
            if parent is None:
                self.roots.append(span)
            else:
                self.children.setdefault(parent, []).append(span)
        self.roots.sort(key=lambda s: (s["start"], s["id"]))

    def children_of(self, span_id: int) -> List[Dict]:
        return sorted(self.children.get(span_id, []),
                      key=lambda s: (s["start"], s["id"]))

    def named_child(self, span_id: int, name: str) -> Optional[Dict]:
        for child in self.children.get(span_id, ()):
            if child["name"] == name:
                return child
        return None

    def root_of(self, span: Dict) -> Dict:
        while span["parent"] is not None:
            span = self.by_id[span["parent"]]
        return span


def _stats(durations: List[int]) -> Dict[str, float]:
    if not durations:
        return {"count": 0, "total": 0, "mean": 0.0, "p50": 0, "p95": 0,
                "max": 0}
    ordered = sorted(durations)
    n = len(ordered)
    return {
        "count": n,
        "total": sum(ordered),
        "mean": sum(ordered) / n,
        "p50": ordered[n // 2],
        "p95": ordered[min(n - 1, (95 * n) // 100)],
        "max": ordered[-1],
    }


def latency_breakdown(doc: Dict) -> Dict[str, Dict[str, float]]:
    """Per-span-name duration statistics (count/total/mean/p50/p95/max)."""
    buckets: Dict[str, List[int]] = {}
    for span in doc["spans"]:
        buckets.setdefault(span["name"], []).append(
            span["end"] - span["start"])
    return {name: _stats(durs) for name, durs in sorted(buckets.items())}


def category_breakdown(doc: Dict) -> Dict[str, Dict[str, float]]:
    """Duration statistics of component probes, bucketed by category
    (``translation`` / ``replay`` / ``non_replay`` / ``prefetch`` / ...)."""
    buckets: Dict[str, List[int]] = {}
    for span in doc["spans"]:
        if span["name"] not in _COMPONENT_NAMES:
            continue
        cat = span["cat"] or "other"
        buckets.setdefault(cat, []).append(span["end"] - span["start"])
    return {cat: _stats(durs) for cat, durs in sorted(buckets.items())}


def hotspots(doc: Dict, top: int = 10) -> Dict[str, List[Dict]]:
    """Per-PC and per-page hotspot tables over request root spans.

    ``by_ip`` rows: requests, replays, walks, total/mean request cycles.
    ``by_page`` rows: the same, keyed on the virtual page number.
    """
    index = TraceIndex(doc)

    def accumulate(key_of) -> List[Dict]:
        acc: Dict[int, Dict] = {}
        for root in index.roots:
            key = key_of(root)
            if key is None:
                continue
            row = acc.setdefault(key, {
                "requests": 0, "replays": 0, "walks": 0, "cycles": 0})
            row["requests"] += 1
            row["cycles"] += root["end"] - root["start"]
            if root["cat"] == "replay":
                row["replays"] += 1
            translate = index.named_child(root["id"], "translate")
            if translate is not None \
                    and index.named_child(translate["id"], "walk") is not None:
                row["walks"] += 1
        rows = [dict(row, key=key,
                     mean_cycles=row["cycles"] / row["requests"])
                for key, row in acc.items()]
        rows.sort(key=lambda r: (-r["cycles"], r["key"]))
        return rows[:top]

    return {
        "by_ip": accumulate(lambda r: r["args"].get("ip")),
        "by_page": accumulate(
            lambda r: (r["args"]["vaddr"] >> PAGE_SHIFT)
            if "vaddr" in r["args"] else None),
    }


def walk_hit_matrix(doc: Dict) -> Dict[str, Dict[str, int]]:
    """Walk depth x leaf-hit-level counts.

    Rows are ``levels_walked`` (how many PTE reads the walk issued after
    PSC filtering); columns are the component that served the leaf PTE.
    The paper's T-* enhancements shift mass from the DRAM column into
    L2C/LLC -- this matrix is the per-walk version of Fig 3.
    """
    matrix: Dict[str, Dict[str, int]] = {}
    for span in doc["spans"]:
        if span["name"] != "walk":
            continue
        depth = str(span["args"].get("levels_walked", "?"))
        served = span["args"].get("leaf_served_by") or "DRAM"
        row = matrix.setdefault(depth, {})
        row[served] = row.get(served, 0) + 1
    return matrix


def critical_path(doc: Dict, root_id: int) -> List[Dict]:
    """The chain of spans that determined ``root_id``'s completion:
    from the root down, always descend into the child whose subtree
    completes last."""
    index = TraceIndex(doc)
    span = index.by_id[root_id]
    path = [span]
    while True:
        children = index.children_of(span["id"])
        children = [c for c in children if c["name"] != "stall"]
        if not children:
            return path
        span = max(children, key=lambda c: (c["end"], c["start"]))
        path.append(span)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
_RENDER_ARGS = ("served_by", "level", "leaf", "psc_hit_level",
                "levels_walked", "leaf_served_by", "row_hit", "component")


def _span_line(span: Dict, depth: int) -> str:
    bits = [f"{'  ' * depth}{span['name']}",
            f"[{span['start']}..{span['end']}]"]
    if span["cat"]:
        bits.append(span["cat"])
    detail = [f"{k}={span['args'][k]}" for k in _RENDER_ARGS
              if k in span["args"]]
    if detail:
        bits.append(" ".join(detail))
    return " ".join(bits)


def render_trace(doc: Dict, limit: Optional[int] = None) -> str:
    """Human-readable span tree, one block per request, in issue order."""
    index = TraceIndex(doc)
    out: List[str] = []
    roots = index.roots[:limit] if limit else index.roots
    for root in roots:
        args = root["args"]
        header = (f"#{args.get('seq', '?')} {root['name']} "
                  f"[{root['start']}..{root['end']}] "
                  f"{root['cat'] or 'demand'}")
        if "vaddr" in args:
            header += f" va={args['vaddr']:#x}"
        if args.get("ip"):
            header += f" ip={args['ip']:#x}"
        out.append(header)

        def walk(span_id: int, depth: int) -> None:
            for child in index.children_of(span_id):
                out.append(_span_line(child, depth))
                walk(child["id"], depth + 1)

        walk(root["id"], 1)
    if limit and len(index.roots) > limit:
        out.append(f"... {len(index.roots) - limit} more requests")
    return "\n".join(out)


def _fmt(value) -> str:
    return f"{value:.1f}" if isinstance(value, float) else str(value)


def summarize(doc: Dict) -> str:
    """The ``repro trace summary`` report: breakdowns + hotspots +
    walk matrix, as aligned text tables."""
    m = doc.get("manifest", {})
    out = [f"benchmark      : {m.get('benchmark', '?')} "
           f"(seed {m.get('seed', '?')})",
           f"config         : {str(m.get('config_hash', ''))[:12]}",
           f"requests       : {doc['requests_sampled']} sampled of "
           f"{doc['requests_seen']} (1/{doc['sample_every']}), "
           f"{doc['requests_dropped']} dropped from the ring",
           f"spans          : {len(doc['spans'])}", ""]

    headers = ["span", "count", "total", "mean", "p50", "p95", "max"]
    rows = [[name, s["count"], s["total"], _fmt(s["mean"]), s["p50"],
             s["p95"], s["max"]]
            for name, s in latency_breakdown(doc).items()]
    out.append(format_table("latency by span name (cycles)", headers, rows))

    rows = [[cat, s["count"], s["total"], _fmt(s["mean"]), s["p50"],
             s["p95"], s["max"]]
            for cat, s in category_breakdown(doc).items()]
    out.append("")
    out.append(format_table("component probes by category (cycles)",
                            ["category"] + headers[1:], rows))

    hot = hotspots(doc)
    for key, title in (("by_ip", "hottest PCs"),
                       ("by_page", "hottest pages")):
        rows = [[f"{r['key']:#x}", r["requests"], r["replays"], r["walks"],
                 r["cycles"], _fmt(r["mean_cycles"])]
                for r in hot[key]]
        out.append("")
        out.append(format_table(
            title, [key[3:], "reqs", "replays", "walks", "cycles", "mean"],
            rows))

    matrix = walk_hit_matrix(doc)
    if matrix:
        levels = sorted({served for row in matrix.values()
                         for served in row})
        rows = [[depth] + [matrix[depth].get(level, 0) for level in levels]
                for depth in sorted(matrix)]
        out.append("")
        out.append(format_table("walk depth x leaf hit level",
                                ["levels walked"] + levels, rows))
    return "\n".join(out)
