"""Cycle-attribution diff between two traced runs of the same trace.

``repro trace diff baseline enhanced`` answers the paper's causal
question quantitatively: *where did the saved cycles come from?*  Both
runs execute the identical instruction stream (same benchmark, seed,
scale, instruction count), so their request sequences align one-to-one
by sequence number.  Three attribution channels map head-of-ROB stall
deltas onto the paper's mechanisms:

* **walk_latency** -- translation-stall delta: leaf PTEs now hit at
  L2C/LLC instead of DRAM, so walks complete sooner (T-DRRIP / T-SHiP
  keeping PTL1 lines on chip; PSC coverage);
* **replay_release** -- replay-stall delta: the walk's leaf hit
  triggered an ATP/TEMPO prefetch that was in flight (or resident) when
  the replayed demand arrived;
* **insertion_policy** -- non-replay-stall delta: side effects of the
  changed insertion/eviction mix on ordinary demand misses.

Because head-of-ROB stall windows are disjoint by construction
(in-order retirement), the three channels plus the untraced remainder
account for the whole execution-time delta; with 1-in-1 sampling the
attribution coverage is typically well above the 80% the acceptance
bar requires.  Sampled traces scale each channel by ``sample_every``
(an unbiased estimate, flagged in the report).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.export import ExportSchemaError
from repro.obs.trace.analysis import TraceIndex, walk_hit_matrix
from repro.stats.report import format_table

#: Stall category -> attribution channel.
_CHANNELS = (
    ("translation", "walk_latency"),
    ("replay", "replay_release"),
    ("non_replay", "insertion_policy"),
)


class TraceAlignmentError(ExportSchemaError):
    """The two traces cannot be aligned request-for-request."""


def _check_alignable(ma: Dict, mb: Dict, sa: int, sb: int) -> None:
    for key in ("benchmark", "seed", "instructions", "warmup", "scale"):
        if ma.get(key) != mb.get(key):
            raise TraceAlignmentError(
                f"traces disagree on {key}: {ma.get(key)!r} vs "
                f"{mb.get(key)!r} -- diff needs two runs of the same "
                f"trace")
    if sa != sb:
        raise TraceAlignmentError(
            f"traces disagree on sample_every: 1/{sa} vs 1/{sb}")


def _stall_totals(doc: Dict) -> Dict[str, int]:
    totals = {cat: 0 for cat, _ in _CHANNELS}
    totals["other"] = 0
    for span in doc["spans"]:
        if span["name"] != "stall":
            continue
        cat = span["cat"] if span["cat"] in totals else "other"
        totals[cat] += span["end"] - span["start"]
    return totals


def _roots_by_seq(doc: Dict) -> Dict[int, Dict]:
    return {span["args"]["seq"]: span for span in doc["spans"]
            if span["parent"] is None and "seq" in span["args"]}


def _request_detail(index: TraceIndex, root: Dict) -> Dict:
    detail = {
        "latency": root["end"] - root["start"],
        "cat": root["cat"],
        "served_by": None,
        "walk": 0,
    }
    translate = index.named_child(root["id"], "translate")
    if translate is not None:
        walk = index.named_child(translate["id"], "walk")
        if walk is not None:
            detail["walk"] = walk["end"] - walk["start"]
    data = index.named_child(root["id"], "data")
    if data is not None:
        detail["served_by"] = data["args"].get("served_by")
    return detail


def trace_diff(doc_a: Dict, doc_b: Dict, top: int = 10) -> Dict:
    """Align two trace documents and attribute their cycle delta.

    ``doc_a`` is the baseline, ``doc_b`` the enhanced run; positive
    deltas mean B saved cycles.  Returns a plain dict (see
    :func:`render_trace_diff` for the human rendering).
    """
    ma, mb = doc_a.get("manifest", {}), doc_b.get("manifest", {})
    sample = doc_a.get("sample_every", 1)
    _check_alignable(ma, mb, sample, doc_b.get("sample_every", 1))

    cycles_a = ma.get("simulated", {}).get("cycles")
    cycles_b = mb.get("simulated", {}).get("cycles")
    if cycles_a is None or cycles_b is None:
        raise TraceAlignmentError(
            "trace manifests carry no simulated cycle totals")
    delta_cycles = cycles_a - cycles_b

    stalls_a = _stall_totals(doc_a)
    stalls_b = _stall_totals(doc_b)
    attribution = {channel: (stalls_a[cat] - stalls_b[cat]) * sample
                   for cat, channel in _CHANNELS}
    attributed = sum(attribution.values())
    coverage = attributed / delta_cycles if delta_cycles else 0.0

    # Request-level alignment: the drill-down table of biggest movers.
    index_a, index_b = TraceIndex(doc_a), TraceIndex(doc_b)
    roots_a, roots_b = _roots_by_seq(doc_a), _roots_by_seq(doc_b)
    shared = sorted(set(roots_a) & set(roots_b))
    movers: List[Dict] = []
    latency_delta_total = 0
    for seq in shared:
        da = _request_detail(index_a, roots_a[seq])
        db = _request_detail(index_b, roots_b[seq])
        delta = da["latency"] - db["latency"]
        latency_delta_total += delta
        if delta:
            movers.append({
                "seq": seq,
                "ip": roots_a[seq]["args"].get("ip", 0),
                "vaddr": roots_a[seq]["args"].get("vaddr", 0),
                "delta": delta,
                "latency_a": da["latency"], "latency_b": db["latency"],
                "walk_a": da["walk"], "walk_b": db["walk"],
                "served_a": da["served_by"], "served_b": db["served_by"],
            })
    movers.sort(key=lambda r: (-abs(r["delta"]), r["seq"]))

    return {
        "a": {"benchmark": ma.get("benchmark"),
              "config_hash": ma.get("config_hash"),
              "cycles": cycles_a, "stalls": stalls_a},
        "b": {"benchmark": mb.get("benchmark"),
              "config_hash": mb.get("config_hash"),
              "cycles": cycles_b, "stalls": stalls_b},
        "sample_every": sample,
        "delta_cycles": delta_cycles,
        "attribution": attribution,
        "attributed": attributed,
        "coverage": coverage,
        "requests": {
            "aligned": len(shared),
            "only_a": len(roots_a) - len(shared),
            "only_b": len(roots_b) - len(shared),
            "latency_delta_total": latency_delta_total,
            "top_movers": movers[:top],
        },
        "walk_matrix": {"a": walk_hit_matrix(doc_a),
                        "b": walk_hit_matrix(doc_b)},
    }


def render_trace_diff(diff: Dict) -> str:
    """Human rendering of a :func:`trace_diff` result."""
    a, b = diff["a"], diff["b"]
    out = [
        f"A (baseline) : {a['benchmark']} cfg={str(a['config_hash'])[:12]} "
        f"{a['cycles']} cycles",
        f"B (enhanced) : {b['benchmark']} cfg={str(b['config_hash'])[:12]} "
        f"{b['cycles']} cycles",
        f"delta        : {diff['delta_cycles']:+d} cycles "
        f"(positive = B faster)",
    ]
    if diff["sample_every"] > 1:
        out.append(f"sampling     : 1/{diff['sample_every']} -- "
                   f"attribution is scaled (estimate)")
    out.append("")

    rows = []
    for cat, channel in _CHANNELS:
        delta = diff["attribution"][channel]
        share = (delta / diff["delta_cycles"]
                 if diff["delta_cycles"] else 0.0)
        rows.append([channel, cat, a["stalls"][cat], b["stalls"][cat],
                     f"{delta:+d}", f"{100.0 * share:.1f}%"])
    rows.append(["total attributed", "", "", "", f"{diff['attributed']:+d}",
                 f"{100.0 * diff['coverage']:.1f}%"])
    out.append(format_table(
        "cycle-delta attribution (head-of-ROB stall deltas)",
        ["channel", "stall cat", "A", "B", "delta", "share"], rows))

    req = diff["requests"]
    out.append("")
    out.append(f"aligned requests: {req['aligned']} "
               f"(A-only {req['only_a']}, B-only {req['only_b']}); "
               f"summed latency delta {req['latency_delta_total']:+d}")
    if req["top_movers"]:
        rows = [[m["seq"], f"{m['ip']:#x}", f"{m['vaddr']:#x}",
                 f"{m['delta']:+d}", m["latency_a"], m["latency_b"],
                 m["walk_a"], m["walk_b"],
                 f"{m['served_a'] or '?'}->{m['served_b'] or '?'}"]
                for m in req["top_movers"]]
        out.append("")
        out.append(format_table(
            "biggest per-request movers (cycles)",
            ["seq", "ip", "va", "delta", "lat A", "lat B", "walk A",
             "walk B", "served"], rows))
    return "\n".join(out)
