"""Structured run manifests and lightweight profiling hooks.

A manifest answers "what exactly produced this export?": workload,
config identity (a stable hash of the full :class:`~repro.params.SimConfig`),
enhancement flags, the structures actually built (replacement policies,
prefetchers), run geometry, and where the wall-clock time went
(:class:`Profiler` phases) next to the simulated time the run produced.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from contextlib import contextmanager
from typing import Dict, Optional

from repro.params import SimConfig

#: Export format identifier; bump the version on breaking layout changes.
SCHEMA = "repro.obs/v1"


def config_digest(config: SimConfig) -> str:
    """Stable hash of a simulation configuration."""
    blob = json.dumps(dataclasses.asdict(config), sort_keys=True,
                      default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


class Profiler:
    """Wall-clock phase attribution with near-zero instrumentation cost.

    Usage::

        prof = Profiler()
        with prof.phase("trace"):
            trace = make_trace(...)

    ``phases`` maps phase name to accumulated seconds.  Nested phases are
    attributed to both scopes (the outer scope is not paused).
    """

    def __init__(self):
        self.phases: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def snapshot(self) -> Dict[str, float]:
        return dict(self.phases, total=self.total)


def build_manifest(benchmark: str, config: SimConfig, *,
                   instructions: int, warmup: int, scale: int, seed: int,
                   sample_interval: Optional[int] = None,
                   hierarchy=None, result=None,
                   profiler: Optional[Profiler] = None) -> Dict:
    """Assemble the manifest dict for one observed run.

    ``hierarchy`` (if given) contributes the *built* component names --
    the replacement policies and prefetchers actually instantiated, which
    the enhancement flags alone do not determine.  ``result`` (a
    :class:`~repro.core.ooo_core.CoreResult`) contributes simulated-time
    totals; ``profiler`` contributes wall-time per phase.
    """
    from repro import __version__

    manifest: Dict = {
        "benchmark": benchmark,
        "config_hash": config_digest(config),
        "seed": seed,
        "instructions": instructions,
        "warmup": warmup,
        "scale": scale,
        "sample_interval": sample_interval,
        "enhancements": dataclasses.asdict(config.enhancements),
        "geometry": {
            "l1d": {"sets": config.l1d.num_sets, "ways": config.l1d.ways},
            "l2c": {"sets": config.l2c.num_sets, "ways": config.l2c.ways},
            "llc": {"sets": config.llc.num_sets, "ways": config.llc.ways},
            "stlb": {"sets": config.stlb.num_sets, "ways": config.stlb.ways},
        },
        "llc_inclusion": config.llc_inclusion,
        "comparison": config.comparison,
        "version": __version__,
        "created_unix": time.time(),
    }
    if hierarchy is not None:
        manifest["components"] = {
            "l2c_policy": hierarchy.l2c.policy.name,
            "llc_policy": hierarchy.llc.policy.name,
            "l1d_prefetcher": config.l1d_prefetcher,
            "l2c_prefetcher": config.l2c_prefetcher,
            "atp": hierarchy.atp is not None,
            "tempo": hierarchy.tempo is not None,
            "frontend": hierarchy.frontend is not None,
            "checker": hierarchy.checker is not None,
        }
    if result is not None:
        manifest["simulated"] = {
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ipc": result.ipc,
            "stall_cycles": result.stalls.total_stall_cycles(),
        }
        h = getattr(result, "hierarchy", None)
        if h is not None:
            manifest["simulated"]["walks"] = h.mmu.walker.walks
            manifest["simulated"]["walk_cycles"] = h.mmu.walk_cycles_total
    if profiler is not None:
        manifest["wall_time"] = profiler.snapshot()
    scenario = _describe_scenario(benchmark)
    if scenario is not None:
        manifest["scenario"] = scenario
    return manifest


def _describe_scenario(benchmark: str) -> Optional[Dict]:
    """Scenario provenance block when ``benchmark`` names a scenario.

    Imported lazily so plain-benchmark manifests never pull in the
    scenario engine; any lookup failure degrades to "not a scenario".
    """
    try:
        from repro.scenarios.engine import describe_scenario
        return describe_scenario(benchmark)
    except Exception:
        return None


def build_batch_manifest(figures, runner_metrics=None,
                         profiler: Optional[Profiler] = None) -> Dict:
    """Manifest for a figure-batch export (the heartbeat channel)."""
    from repro import __version__

    manifest: Dict = {
        "figures": list(figures),
        "version": __version__,
        "created_unix": time.time(),
    }
    if runner_metrics is not None:
        manifest["runner"] = {
            "jobs_done": runner_metrics.jobs_done,
            "executed": runner_metrics.executed,
            "cache_hits": runner_metrics.cache_hits,
            "retries": runner_metrics.retries,
            "failures": runner_metrics.failures,
            "total_wall_time": runner_metrics.total_wall_time,
        }
    if profiler is not None:
        manifest["wall_time"] = profiler.snapshot()
    return manifest
