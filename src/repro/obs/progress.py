"""Progress / heartbeat channel for long figure batches.

A :class:`Heartbeat` subscribes to the parallel runner's per-job progress
events, keeps the full event list in memory (for the batch export), and
optionally streams each event as one JSON line to a file -- so an external
watcher (CI, a dashboard, ``tail -f``) can see a multi-minute batch making
progress without parsing stderr.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional


class Heartbeat:
    """Collects (and optionally streams) batch progress events."""

    def __init__(self, path=None):
        self.events: List[Dict] = []
        self._started = time.time()
        self._file = open(path, "w") if path is not None else None

    def emit(self, event) -> None:
        """Record one :class:`~repro.experiments.parallel.ProgressEvent`."""
        record = {
            "t": round(time.time() - self._started, 3),
            "done": event.done,
            "total": event.total,
            "benchmark": event.key.benchmark,
            "config": event.key.config_hash[:12],
            "seed": event.key.seed,
            "source": event.source,
            "wall_time": event.wall_time,
        }
        self.events.append(record)
        if self._file is not None:
            self._file.write(json.dumps(record) + "\n")
            self._file.flush()

    def close(self, runner_metrics=None) -> None:
        """Write a terminating summary line and release the stream."""
        if self._file is not None:
            summary = {"t": round(time.time() - self._started, 3),
                       "done": len(self.events), "final": True}
            if runner_metrics is not None:
                summary["executed"] = runner_metrics.executed
                summary["cache_hits"] = runner_metrics.cache_hits
                summary["failures"] = runner_metrics.failures
            self._file.write(json.dumps(summary) + "\n")
            self._file.close()
            self._file = None

    def __enter__(self) -> "Heartbeat":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None
