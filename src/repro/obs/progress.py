"""Progress / heartbeat channel for long figure batches and jobs.

A :class:`Heartbeat` subscribes to the parallel runner's per-job progress
events, keeps the full event list in memory (for the batch export), and
optionally streams each event as one JSON line to a file -- so an external
watcher (CI, a dashboard, ``tail -f``) can see a multi-minute batch making
progress without parsing stderr.

An :class:`EventStream` is the subscribable generalisation the sweep
service (:mod:`repro.service`) hangs off every job: an append-only,
thread-safe sequence of dict events that consumers can snapshot or
block-follow from any sequence number.  ``GET /jobs/<id>/events`` streams
one, and a :class:`Heartbeat` can mirror into one (``stream=...``) so
batch progress is visible over the same channel.

The backlog is bounded (:data:`DEFAULT_BACKLOG` events): a stream that is
emitted into but never drained -- a forgotten subscriber, a job streaming
thousands of ``job-progress`` intervals -- discards its oldest events
rather than growing without bound.  Sequence numbers are global (they
keep counting across drops), :attr:`EventStream.dropped` counts the
discards, and an ``on_drop`` callback lets the service surface them in
telemetry (``repro_events_dropped_total``).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional

#: Default per-stream backlog bound.  Large enough to replay the full
#: lifecycle plus hundreds of interval rows; small enough that a
#: never-drained stream stays a few hundred KB.
DEFAULT_BACKLOG = 4096


class EventStream:
    """Append-only, subscribable, bounded sequence of progress events.

    Producers call :meth:`emit` (from any thread, including the asyncio
    loop thread of the sweep service); consumers either :meth:`snapshot`
    the retained history or :meth:`follow` it -- a blocking iterator
    that yields every retained event exactly once, in order, until the
    stream is :meth:`close`'d.  Events are plain dicts stamped with a
    monotonically increasing ``seq``.

    ``seq`` numbers every event ever emitted; at most ``maxlen`` of the
    newest are retained.  A consumer that falls more than ``maxlen``
    events behind resumes at the oldest retained event (use the ``seq``
    gap to detect the loss); :attr:`dropped` counts discarded events and
    ``on_drop(n)`` fires for each batch of ``n`` discards.
    """

    def __init__(self, maxlen: int = DEFAULT_BACKLOG,
                 on_drop: Optional[Callable[[int], None]] = None):
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.maxlen = maxlen
        self.on_drop = on_drop
        self._events: deque = deque()
        self._base = 0       # seq of the oldest retained event
        self._next = 0       # seq the next emit will get
        self._dropped = 0
        self._cond = threading.Condition()
        self._closed = False

    def emit(self, **fields) -> Dict:
        """Append one event; returns the stamped record."""
        with self._cond:
            record = dict(fields)
            record["seq"] = self._next
            self._next += 1
            self._events.append(record)
            dropped = 0
            while len(self._events) > self.maxlen:
                self._events.popleft()
                self._base += 1
                self._dropped += 1
                dropped += 1
            self._cond.notify_all()
        if dropped and self.on_drop is not None:
            try:
                self.on_drop(dropped)
            except Exception:
                pass
        return record

    def close(self) -> None:
        """No further events; wakes every follower."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def dropped(self) -> int:
        """Events discarded from the backlog so far."""
        with self._cond:
            return self._dropped

    def __len__(self) -> int:
        """Total events ever emitted (including dropped ones)."""
        with self._cond:
            return self._next

    def snapshot(self, start: int = 0) -> List[Dict]:
        """Retained events with ``seq >= start``, as a copy."""
        with self._cond:
            offset = max(0, start - self._base)
            if offset >= len(self._events):
                return []
            return [self._events[i]
                    for i in range(offset, len(self._events))]

    def wait_for(self, index: int, timeout: Optional[float] = None) -> bool:
        """Block until event ``index`` has been emitted or the stream
        closes.

        Returns ``True`` when the event has been emitted (it may since
        have been dropped from the backlog -- :meth:`snapshot` tells),
        ``False`` on close-before-available or timeout.
        """
        with self._cond:
            return self._cond.wait_for(
                lambda: self._next > index or self._closed,
                timeout=timeout) and self._next > index

    def follow(self, start: int = 0,
               timeout: Optional[float] = None) -> Iterator[Dict]:
        """Yield events with ``seq >= start`` until the stream closes.

        Advances by each event's own ``seq``, so a backlog drop skips
        forward rather than re-yielding or stalling.  ``timeout`` bounds
        each individual wait (the iterator stops quietly when it
        expires -- callers polling a live service can loop around
        :meth:`snapshot` instead if they need to distinguish)."""
        index = start
        while True:
            for event in self.snapshot(index):
                index = event["seq"] + 1
                yield event
            with self._cond:
                if self._closed and self._next <= index:
                    return
                if not self._cond.wait_for(
                        lambda: self._next > index or self._closed,
                        timeout=timeout):
                    return


class Heartbeat:
    """Collects (and optionally streams) batch progress events."""

    def __init__(self, path=None, stream: Optional[EventStream] = None):
        self.events: List[Dict] = []
        self.stream = stream
        self._started = time.time()
        self._file = open(path, "w") if path is not None else None

    def emit(self, event) -> None:
        """Record one :class:`~repro.experiments.parallel.ProgressEvent`."""
        record = {
            "t": round(time.time() - self._started, 3),
            "done": event.done,
            "total": event.total,
            "benchmark": event.key.benchmark,
            "config": event.key.config_hash[:12],
            "seed": event.key.seed,
            "source": event.source,
            "wall_time": event.wall_time,
        }
        self.events.append(record)
        if self.stream is not None:
            self.stream.emit(kind="heartbeat", **record)
        if self._file is not None:
            self._file.write(json.dumps(record) + "\n")
            self._file.flush()

    def close(self, runner_metrics=None) -> None:
        """Write a terminating summary line and release the stream."""
        if self._file is not None:
            summary = {"t": round(time.time() - self._started, 3),
                       "done": len(self.events), "final": True}
            if runner_metrics is not None:
                summary["executed"] = runner_metrics.executed
                summary["cache_hits"] = runner_metrics.cache_hits
                summary["failures"] = runner_metrics.failures
            self._file.write(json.dumps(summary) + "\n")
            self._file.close()
            self._file = None

    def __enter__(self) -> "Heartbeat":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None
