"""Progress / heartbeat channel for long figure batches and jobs.

A :class:`Heartbeat` subscribes to the parallel runner's per-job progress
events, keeps the full event list in memory (for the batch export), and
optionally streams each event as one JSON line to a file -- so an external
watcher (CI, a dashboard, ``tail -f``) can see a multi-minute batch making
progress without parsing stderr.

An :class:`EventStream` is the subscribable generalisation the sweep
service (:mod:`repro.service`) hangs off every job: an append-only,
thread-safe sequence of dict events that consumers can snapshot or
block-follow from any index.  ``GET /jobs/<id>/events`` streams one, and
a :class:`Heartbeat` can mirror into one (``stream=...``) so batch
progress is visible over the same channel.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Iterator, List, Optional


class EventStream:
    """Append-only, subscribable sequence of progress events.

    Producers call :meth:`emit` (from any thread, including the asyncio
    loop thread of the sweep service); consumers either :meth:`snapshot`
    the history or :meth:`follow` it -- a blocking iterator that yields
    every event exactly once, in order, until the stream is
    :meth:`close`'d.  Events are plain dicts stamped with a
    monotonically increasing ``seq``.
    """

    def __init__(self):
        self._events: List[Dict] = []
        self._cond = threading.Condition()
        self._closed = False

    def emit(self, **fields) -> Dict:
        """Append one event; returns the stamped record."""
        with self._cond:
            record = dict(fields)
            record["seq"] = len(self._events)
            self._events.append(record)
            self._cond.notify_all()
        return record

    def close(self) -> None:
        """No further events; wakes every follower."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._events)

    def snapshot(self, start: int = 0) -> List[Dict]:
        """The events from index ``start`` onward, as a copy."""
        with self._cond:
            return list(self._events[start:])

    def wait_for(self, index: int, timeout: Optional[float] = None) -> bool:
        """Block until event ``index`` exists or the stream closes.

        Returns ``True`` when the event is available, ``False`` on
        close-before-available or timeout.
        """
        with self._cond:
            return self._cond.wait_for(
                lambda: len(self._events) > index or self._closed,
                timeout=timeout) and len(self._events) > index

    def follow(self, start: int = 0,
               timeout: Optional[float] = None) -> Iterator[Dict]:
        """Yield events from ``start`` until the stream closes.

        ``timeout`` bounds each individual wait (the iterator stops
        quietly when it expires -- callers polling a live service can
        loop around :meth:`snapshot` instead if they need to
        distinguish)."""
        index = start
        while True:
            for event in self.snapshot(index):
                index += 1
                yield event
            with self._cond:
                if self._closed and len(self._events) <= index:
                    return
                if not self._cond.wait_for(
                        lambda: len(self._events) > index or self._closed,
                        timeout=timeout):
                    return


class Heartbeat:
    """Collects (and optionally streams) batch progress events."""

    def __init__(self, path=None, stream: Optional[EventStream] = None):
        self.events: List[Dict] = []
        self.stream = stream
        self._started = time.time()
        self._file = open(path, "w") if path is not None else None

    def emit(self, event) -> None:
        """Record one :class:`~repro.experiments.parallel.ProgressEvent`."""
        record = {
            "t": round(time.time() - self._started, 3),
            "done": event.done,
            "total": event.total,
            "benchmark": event.key.benchmark,
            "config": event.key.config_hash[:12],
            "seed": event.key.seed,
            "source": event.source,
            "wall_time": event.wall_time,
        }
        self.events.append(record)
        if self.stream is not None:
            self.stream.emit(kind="heartbeat", **record)
        if self._file is not None:
            self._file.write(json.dumps(record) + "\n")
            self._file.flush()

    def close(self, runner_metrics=None) -> None:
        """Write a terminating summary line and release the stream."""
        if self._file is not None:
            summary = {"t": round(time.time() - self._started, 3),
                       "done": len(self.events), "final": True}
            if runner_metrics is not None:
                summary["executed"] = runner_metrics.executed
                summary["cache_hits"] = runner_metrics.cache_hits
                summary["failures"] = runner_metrics.failures
            self._file.write(json.dumps(summary) + "\n")
            self._file.close()
            self._file = None

    def __enter__(self) -> "Heartbeat":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None
