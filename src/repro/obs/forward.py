"""Worker-side progress forwarding: interval sampler → service bridge.

A service-submitted run is a black box between SUBMITTED and DONE unless
the worker tells the parent what the simulator is doing.  This module is
that bridge: :class:`ForwardingSampler` is an
:class:`~repro.obs.sampler.IntervalSampler` that, besides collecting the
full interval time-series, condenses each interval into one small
``job-progress`` row (cycle, IPC, L2/LLC MPKI, walk cycles, % complete
against the instruction budget) and hands it to a sink callable -- in
the sweep service that sink is a ``multiprocessing`` queue back to the
parent (pool workers) or a direct callback (inline mode), and the
service re-emits the rows on the job's
:class:`~repro.obs.progress.EventStream`.

Forwarding is strictly observational: :class:`ForwardingSampler` only
*reads* the interval records the base sampler already produces, and a
sink failure (queue gone, parent dead) silently stops forwarding rather
than killing the run -- simulation results stay bit-identical whether
rows reach anyone or not.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.obs.sampler import DEFAULT_SAMPLE_INTERVAL, IntervalSampler

#: Keys every forwarded ``job-progress`` row carries.
PROGRESS_ROW_KEYS = ("interval", "instructions", "cycle", "ipc",
                     "l2_mpki", "llc_mpki", "walk_cycles", "pct")


def progress_row(interval: Dict, retired: int,
                 total_instructions: Optional[int]) -> Dict:
    """Condense one sampler interval record into a forwardable row.

    ``retired`` is the cumulative ROI instruction count including this
    interval; ``total_instructions`` is the run's budget (drives
    ``pct``; unknown → ``pct`` is 0.0).
    """
    kilo = max(interval["instructions"], 1) / 1000.0
    l2 = sum(interval["levels"]["l2c"]["misses"].values())
    llc = sum(interval["levels"]["llc"]["misses"].values())
    pct = 0.0
    if total_instructions:
        pct = min(1.0, retired / total_instructions)
    return {
        "interval": interval["index"],
        "instructions": retired,
        "cycle": interval["cycle_end"],
        "ipc": round(interval["ipc"], 6),
        "l2_mpki": round(l2 / kilo, 4),
        "llc_mpki": round(llc / kilo, 4),
        "walk_cycles": interval["walks"]["walk_cycles"],
        "pct": round(pct, 6),
    }


class ProgressForwarder:
    """Turns interval records into rows and pushes them at a sink.

    ``sink(row)`` is called once per interval; the first sink failure
    disables forwarding for the rest of the run (the simulation must
    never die because nobody is listening).
    """

    def __init__(self, sink: Callable[[Dict], None],
                 total_instructions: Optional[int] = None,
                 interval: int = DEFAULT_SAMPLE_INTERVAL):
        self.sink = sink
        self.total_instructions = total_instructions
        self.interval = interval
        self.rows_sent = 0
        self._retired = 0
        self._broken = False

    def on_interval(self, record: Dict) -> None:
        self._retired += record["instructions"]
        if self._broken:
            return
        row = progress_row(record, self._retired, self.total_instructions)
        try:
            self.sink(row)
            self.rows_sent += 1
        except Exception:
            self._broken = True


class ForwardingSampler(IntervalSampler):
    """An interval sampler that also forwards each interval as a row.

    Drop-in for :class:`IntervalSampler` -- the collected
    ``self.intervals`` time-series is byte-identical to the base class;
    the only addition is the post-append forward hook.
    """

    def __init__(self, hierarchy, interval: int = DEFAULT_SAMPLE_INTERVAL,
                 forwarder: Optional[ProgressForwarder] = None):
        super().__init__(hierarchy, interval)
        self.forwarder = forwarder

    def _emit(self, cycle: int) -> None:
        super()._emit(cycle)
        if self.forwarder is not None:
            self.forwarder.on_interval(self.intervals[-1])
