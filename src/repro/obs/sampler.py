"""Interval-sampling metrics engine.

Every ``interval`` retired instructions the sampler snapshots the whole
hierarchy -- per-level :class:`~repro.stats.counters.CacheStats` *deltas*,
MSHR and ROB occupancy, RRPV distributions, TLB/PSC hit rates, DRAM row
behaviour and per-category head-of-ROB stall attribution -- into one
time-series record.  Counters are cumulative inside the simulator, so the
sampler differences consecutive snapshots: each interval describes only
what happened *during* it.

Cost model: when no sampler is attached (the default) the core's retire
loop pays a single ``is None`` test per instruction, the same pattern the
validate subsystem uses.  When attached, the per-retire work is three
integer updates; the O(sets x ways) structure scans run only at interval
boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Default sampling period in retired instructions.  At the default
#: 120K-instruction ROI this yields 24 intervals.
DEFAULT_SAMPLE_INTERVAL = 5_000

_LEVELS = ("l1d", "l2c", "llc")
_STALL_CATEGORIES = ("translation", "replay", "non_replay", "other")


def _diff(now: Dict[str, int], then: Dict[str, int]) -> Dict[str, int]:
    return {k: now.get(k, 0) - then.get(k, 0) for k in now}


class IntervalSampler:
    """Snapshots per-interval hierarchy state into ``self.intervals``.

    Lifecycle (driven by :class:`~repro.core.ooo_core.OOOCore`):

    * :meth:`begin` at the ROI start (right after the warmup stat reset);
    * :meth:`on_retire` once per retired ROI instruction;
    * :meth:`finalize` at the end of the run (flushes a partial interval).
    """

    def __init__(self, hierarchy, interval: int = DEFAULT_SAMPLE_INTERVAL):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.hierarchy = hierarchy
        self.interval = interval
        self.intervals: List[Dict] = []
        self._stalls = None
        self._since = 0
        self._rob_sum = 0
        self._rob_max = 0
        self._interval_start_cycle = 0
        self._last_cycle = 0
        self._baseline: Optional[Dict] = None

    # -- lifecycle -----------------------------------------------------
    def begin(self, stalls, start_cycle: int) -> None:
        """Start sampling: ``stalls`` is the live ROI StallAccounting."""
        self._stalls = stalls
        self._interval_start_cycle = start_cycle
        self._last_cycle = start_cycle
        self._since = 0
        self._rob_sum = 0
        self._rob_max = 0
        self._baseline = self._cumulative()

    def on_retire(self, cycle: int, rob_occupancy: int) -> None:
        """One instruction retired at ``cycle`` with ``rob_occupancy``
        instructions in flight."""
        self._since += 1
        self._rob_sum += rob_occupancy
        if rob_occupancy > self._rob_max:
            self._rob_max = rob_occupancy
        self._last_cycle = cycle
        if self._since >= self.interval:
            self._emit(cycle)

    def finalize(self, cycle: int) -> None:
        """Flush the trailing partial interval (if any instruction retired
        since the last boundary)."""
        if self._since > 0 and self._baseline is not None:
            self._emit(max(cycle, self._last_cycle))

    # -- snapshotting --------------------------------------------------
    def _cumulative(self) -> Dict:
        """Copy every cumulative counter the intervals difference."""
        h = self.hierarchy
        state: Dict = {"stalls": {}, "levels": {}}
        if self._stalls is not None:
            snap = self._stalls.snapshot()
            state["stalls"] = {cat: snap[cat]["total"]
                               for cat in _STALL_CATEGORIES}
        for name in _LEVELS:
            cache = getattr(h, name)
            s = cache.stats
            state["levels"][name] = {
                "accesses": dict(s.accesses),
                "misses": dict(s.misses),
                "leaf_accesses": s.leaf_accesses,
                "leaf_misses": s.leaf_misses,
                "prefetch_useful": s.prefetch_useful,
                "prefetch_fills": s.prefetch_fills,
                "mshr_merges": cache.mshr.merges,
                "admission_stall_cycles": cache.mshr.admission_stall_cycles,
                "writebacks": cache.writebacks_issued,
            }
        state["tlb"] = {
            "dtlb": {"accesses": h.mmu.dtlb.accesses,
                     "misses": h.mmu.dtlb.misses},
            "stlb": {"accesses": h.mmu.stlb.accesses,
                     "misses": h.mmu.stlb.misses},
        }
        psc = h.mmu.psc
        state["psc"] = {"lookups": psc.lookups, "misses": psc.misses,
                        "hits_by_level": {str(lvl): n for lvl, n
                                          in psc.hits_by_level.items()}}
        state["dram"] = {"accesses": h.dram.accesses,
                         "row_hits": h.dram.row_hits}
        state["walks"] = {"walks": h.mmu.walker.walks,
                          "pte_reads": h.mmu.walker.pte_reads,
                          "walk_cycles": h.mmu.walk_cycles_total}
        return state

    @staticmethod
    def _hit_rate(accesses: int, misses: int) -> float:
        return 1.0 - misses / accesses if accesses else 0.0

    def _emit(self, cycle: int) -> None:
        now = self._cumulative()
        then = self._baseline
        h = self.hierarchy
        dcycles = max(1, cycle - self._interval_start_cycle)
        n = self._since

        levels: Dict[str, Dict] = {}
        for name in _LEVELS:
            a, b = now["levels"][name], then["levels"][name]
            accesses = _diff(a["accesses"], b["accesses"])
            misses = _diff(a["misses"], b["misses"])
            total_acc = sum(accesses.values())
            total_miss = sum(misses.values())
            cache = getattr(h, name)
            levels[name] = {
                "accesses": accesses,
                "misses": misses,
                "hit_rate": self._hit_rate(total_acc, total_miss),
                "leaf_accesses": a["leaf_accesses"] - b["leaf_accesses"],
                "leaf_misses": a["leaf_misses"] - b["leaf_misses"],
                "prefetch_useful": a["prefetch_useful"]
                - b["prefetch_useful"],
                "prefetch_fills": a["prefetch_fills"] - b["prefetch_fills"],
                "mshr_merges": a["mshr_merges"] - b["mshr_merges"],
                "admission_stall_cycles": a["admission_stall_cycles"]
                - b["admission_stall_cycles"],
                "writebacks": a["writebacks"] - b["writebacks"],
                "mshr_occupancy": cache.mshr.occupancy(cycle),
            }

        tlb = {}
        for name in ("dtlb", "stlb"):
            acc = now["tlb"][name]["accesses"] - then["tlb"][name]["accesses"]
            mis = now["tlb"][name]["misses"] - then["tlb"][name]["misses"]
            tlb[name] = {"accesses": acc, "misses": mis,
                         "hit_rate": self._hit_rate(acc, mis)}

        psc_lookups = now["psc"]["lookups"] - then["psc"]["lookups"]
        psc_misses = now["psc"]["misses"] - then["psc"]["misses"]
        record = {
            "index": len(self.intervals),
            "instructions": n,
            "cycle_start": self._interval_start_cycle,
            "cycle_end": cycle,
            "ipc": n / dcycles,
            "rob": {"avg_occupancy": self._rob_sum / n if n else 0.0,
                    "max_occupancy": self._rob_max},
            "levels": levels,
            "rrpv": {name: getattr(h, name).rrpv_histogram()
                     for name in ("l2c", "llc")},
            "occupancy": {name: getattr(h, name).occupancy_by_category()
                          for name in ("l2c", "llc")},
            "tlb": tlb,
            "psc": {
                "lookups": psc_lookups,
                "misses": psc_misses,
                "hit_rate": self._hit_rate(psc_lookups, psc_misses),
                "hits_by_level": _diff(now["psc"]["hits_by_level"],
                                       then["psc"]["hits_by_level"]),
            },
            "dram": _diff(now["dram"], then["dram"]),
            "walks": _diff(now["walks"], then["walks"]),
            "stalls": _diff(now["stalls"], then["stalls"]),
        }
        self.intervals.append(record)

        self._baseline = now
        self._interval_start_cycle = cycle
        self._since = 0
        self._rob_sum = 0
        self._rob_max = 0
