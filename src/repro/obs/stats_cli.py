"""`python -m repro stats` -- summarise, validate and diff exports.

One path renders it; two paths diff their end-of-run summaries (both must
be ``run`` exports).  ``--validate`` checks documents against the schema
and exits non-zero on problems; ``--csv`` additionally writes the interval
time-series of a run export as CSV.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.obs import export
from repro.stats.report import format_table


def _fmt_rate(x: float) -> str:
    return f"{100.0 * x:.1f}%"


def render_run(doc: Dict) -> str:
    m = doc["manifest"]
    out: List[str] = []
    enh = [k for k, v in m.get("enhancements", {}).items() if v]
    sim = m.get("simulated", {})
    wall = m.get("wall_time", {})
    out.append(f"benchmark      : {m['benchmark']} (seed {m['seed']}, "
               f"scale {m['scale']})")
    out.append(f"config         : {m['config_hash'][:12]}  "
               f"enhancements: {'+'.join(enh) or 'none'}")
    out.append(f"run            : {m['instructions']} instructions "
               f"(+{m['warmup']} warmup), sampled every "
               f"{m['sample_interval']}")
    if sim:
        out.append(f"simulated      : {sim['cycles']} cycles, "
                   f"IPC {sim['ipc']:.4f}, {sim.get('walks', 0)} walks")
    if wall:
        phases = ", ".join(f"{k} {v:.2f}s" for k, v in sorted(wall.items())
                           if k != "total")
        out.append(f"wall time      : {wall.get('total', 0.0):.2f}s "
                   f"({phases})")
    out.append("")

    headers = ["#", "instrs", "cycles", "IPC", "STLB hit", "PSC hit",
               "L2C hit", "LLC hit", "walks", "stall T", "stall R",
               "stall NR"]
    rows = []
    for iv in doc["intervals"]:
        rows.append([
            iv["index"], iv["instructions"],
            iv["cycle_end"] - iv["cycle_start"], f"{iv['ipc']:.3f}",
            _fmt_rate(iv["tlb"]["stlb"]["hit_rate"]),
            _fmt_rate(iv["psc"]["hit_rate"]),
            _fmt_rate(iv["levels"]["l2c"]["hit_rate"]),
            _fmt_rate(iv["levels"]["llc"]["hit_rate"]),
            iv["walks"]["walks"], iv["stalls"]["translation"],
            iv["stalls"]["replay"], iv["stalls"]["non_replay"]])
    out.append(format_table(
        f"[{m['benchmark']}] interval time-series "
        f"({len(doc['intervals'])} intervals)", headers, rows))

    summary = doc.get("summary") or {}
    if summary:
        out.append("")
        out.append(format_table(
            "end-of-run summary", ["metric", "value"],
            [[k, f"{v:.4f}" if isinstance(v, float) else v]
             for k, v in summary.items()]))
    return "\n".join(out)


def render_batch(doc: Dict) -> str:
    m = doc["manifest"]
    out = [f"figures        : {' '.join(m['figures'])}"]
    runner = m.get("runner", {})
    if runner:
        out.append(f"runs           : {runner['jobs_done']} done "
                   f"({runner['executed']} executed, "
                   f"{runner['cache_hits']} from cache, "
                   f"{runner['retries']} retried, "
                   f"{runner['failures']} failed)")
        out.append(f"simulated wall : {runner['total_wall_time']:.1f}s")
    rows = [[e["done"], e["benchmark"], e["config"], e["source"],
             f"{e['wall_time']:.2f}s", f"{e['t']:.1f}s"]
            for e in doc["events"]]
    out.append("")
    out.append(format_table(
        f"heartbeat ({len(rows)} events)",
        ["#", "benchmark", "config", "source", "run", "at"], rows))
    return "\n".join(out)


def render_diff(a: Dict, b: Dict) -> str:
    """Per-metric comparison of two run exports' summaries."""
    for doc in (a, b):
        if doc.get("kind") != "run":
            raise export.ExportSchemaError(
                "diff needs two 'run' exports")
    ma, mb = a["manifest"], b["manifest"]
    out = [f"A: {ma['benchmark']} cfg={ma['config_hash'][:12]} "
           f"seed={ma['seed']}",
           f"B: {mb['benchmark']} cfg={mb['config_hash'][:12]} "
           f"seed={mb['seed']}", ""]
    rows = []
    keys = sorted(set(a.get("summary", {})) | set(b.get("summary", {})))
    for key in keys:
        va = a["summary"].get(key)
        vb = b["summary"].get(key)
        if not isinstance(va, (int, float)) \
                or not isinstance(vb, (int, float)):
            continue
        delta = vb - va
        pct = f"{100.0 * delta / va:+.1f}%" if va else "n/a"
        rows.append([key, f"{va:.4f}", f"{vb:.4f}", f"{delta:+.4f}", pct])
    rows.append(["intervals", len(a["intervals"]), len(b["intervals"]),
                 len(b["intervals"]) - len(a["intervals"]), ""])
    out.append(format_table("summary diff (B vs A)",
                            ["metric", "A", "B", "delta", "%"], rows))
    return "\n".join(out)


def cmd_stats(args) -> int:
    """Entry point for the ``stats`` subcommand."""
    docs = []
    for path in args.paths:
        try:
            docs.append(export.load(path))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.validate:
        failed = False
        for path, doc in zip(args.paths, docs):
            errors = export.validate(doc)
            if errors:
                failed = True
                print(f"{path}: INVALID", file=sys.stderr)
                for error in errors:
                    print(f"  - {error}", file=sys.stderr)
            else:
                print(f"{path}: OK ({doc['kind']} export, schema "
                      f"{doc['schema']})")
        if failed:
            return 1

    if args.csv:
        if docs[0].get("kind") != "run":
            print("error: --csv needs a 'run' export", file=sys.stderr)
            return 2
        export.export_csv(args.csv, docs[0]["intervals"])
        print(f"wrote {args.csv} ({len(docs[0]['intervals'])} intervals)")

    if args.validate:
        return 0
    if len(docs) == 1:
        doc = docs[0]
        print(render_run(doc) if doc["kind"] == "run"
              else render_batch(doc))
    else:
        try:
            print(render_diff(docs[0], docs[1]))
        except export.ExportSchemaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return 0
