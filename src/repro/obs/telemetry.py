"""Telemetry registry: counters, gauges and histograms for the service.

The sweep service (:mod:`repro.service`) instruments itself through one
:class:`TelemetryRegistry` -- a small, thread-safe, dependency-free
metrics plane modelled on the Prometheus client data model:

* :class:`Counter` -- monotonically increasing totals (jobs submitted,
  store hits, requeues, dropped events);
* :class:`Gauge` -- point-in-time values, either set explicitly or
  backed by a zero-argument callback evaluated at snapshot time (queue
  depth, in-flight jobs, uptime);
* :class:`Histogram` -- fixed cumulative buckets plus sum/count (job
  wait and execution latency).

Two stable output forms:

* :meth:`TelemetryRegistry.snapshot` -- a schema-versioned
  ``repro.obs/telemetry-v1`` JSON document (embedded in ``GET /health``
  and returned by :func:`repro.api.telemetry_snapshot`), checkable with
  :func:`validate_telemetry`;
* :meth:`TelemetryRegistry.render_prometheus` -- Prometheus text
  exposition format version 0.0.4 (served as ``GET /metrics``).

Everything is stdlib; emitting a metric is a lock + integer add, cheap
enough to live on the service's submit/finish paths.  See
``docs/observability.md`` ("Telemetry").
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Schema tag of :meth:`TelemetryRegistry.snapshot` documents.
TELEMETRY_SCHEMA = "repro.obs/telemetry-v1"

#: Default histogram buckets (seconds): spans sub-10ms queue hops to
#: multi-minute paper-scale executions.  Fixed so series from different
#: service runs are comparable.
DEFAULT_BUCKETS = (0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0,
                   300.0, 1800.0)

_TYPES = ("counter", "gauge", "histogram")


class TelemetrySchemaError(ValueError):
    """A document that does not conform to ``repro.obs/telemetry-v1``."""


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared identity/locking for the three metric kinds."""

    kind = "metric"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._lock = threading.Lock()

    @property
    def label_key(self) -> Tuple[Tuple[str, str], ...]:
        return _label_key(self.labels)


class Counter(_Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None):
        super().__init__(name, help, labels)
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def series(self) -> Dict:
        return {"name": self.name, "type": self.kind,
                "labels": self.labels, "value": self.value}


class Gauge(_Metric):
    """Point-in-time value; explicit (:meth:`set`) or callback-backed."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None,
                 fn: Optional[Callable[[], float]] = None):
        super().__init__(name, help, labels)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        if self._fn is not None:
            # Callback gauges read live service state; a failing
            # callback must not take /metrics down with it.
            try:
                return float(self._fn())
            except Exception:
                return 0.0
        with self._lock:
            return self._value

    def series(self) -> Dict:
        return {"name": self.name, "type": self.kind,
                "labels": self.labels, "value": self.value}


class Histogram(_Metric):
    """Fixed-bucket cumulative histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                "histogram buckets must be non-empty, sorted, unique")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def observe_bucketed(self, counts: Sequence[int],
                         sum_: float = 0.0) -> None:
        """Merge pre-bucketed observations in one locked add.

        ``counts`` are per-bucket (non-cumulative) observation counts,
        one per bound plus the trailing overflow bucket -- the shape
        :data:`repro.core.fallback.BatchStats.cohort_sizes` accumulates.
        Bulk producers bucket at source; folding their histograms in
        element-wise costs one lock instead of one per observation.
        """
        if len(counts) != len(self._counts):
            raise ValueError(
                f"expected {len(self._counts)} bucket counts "
                f"(got {len(counts)})")
        with self._lock:
            total = 0
            for i, n in enumerate(counts):
                self._counts[i] += n
                total += n
            self._count += total
            self._sum += sum_

    def series(self) -> Dict:
        with self._lock:
            cumulative = []
            running = 0
            for bound, n in zip(self.buckets, self._counts):
                running += n
                cumulative.append([bound, running])
            cumulative.append(["+Inf", running + self._counts[-1]])
            return {"name": self.name, "type": self.kind,
                    "labels": self.labels, "buckets": cumulative,
                    "sum": self._sum, "count": self._count}


class TelemetryRegistry:
    """Get-or-create home of every metric one service instance exposes.

    ``counter``/``gauge``/``histogram`` are idempotent per
    ``(name, labels)`` pair: the first call creates the metric, later
    calls return the same object (re-registering a name under a
    different kind raises).  ``snapshot()`` and ``render_prometheus()``
    are the two read surfaces.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple, _Metric] = {}

    # -- registration ----------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str,
                       labels: Optional[Dict[str, str]], **kwargs):
        key = (name, _label_key(labels or {}))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"{name} already registered as {existing.kind}")
                return existing
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get_or_create(Gauge, name, help, labels, fn=fn)
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Dict[str, str]] = None,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    # -- read surfaces ---------------------------------------------------
    def _ordered(self) -> List[_Metric]:
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(metrics, key=lambda m: (m.name, m.label_key))

    def snapshot(self) -> Dict:
        """The ``repro.obs/telemetry-v1`` JSON document."""
        return {"schema": TELEMETRY_SCHEMA,
                "series": [m.series() for m in self._ordered()]}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        seen_header = set()
        for metric in self._ordered():
            if metric.name not in seen_header:
                seen_header.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                series = metric.series()
                for bound, count in series["buckets"]:
                    le = bound if bound == "+Inf" else _fmt(bound)
                    labels = dict(metric.labels, le=le)
                    lines.append(f"{metric.name}_bucket"
                                 f"{_labels(labels)} {count}")
                lines.append(f"{metric.name}_sum{_labels(metric.labels)} "
                             f"{_fmt(series['sum'])}")
                lines.append(f"{metric.name}_count"
                             f"{_labels(metric.labels)} "
                             f"{series['count']}")
            else:
                lines.append(f"{metric.name}{_labels(metric.labels)} "
                             f"{_fmt(metric.value)}")
        return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    """Prometheus sample formatting: integers stay integral."""
    number = float(value)
    if math.isfinite(number) and number == int(number):
        return str(int(number))
    return repr(number)


def _labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _escape(value) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


# ----------------------------------------------------------------------
# Schema validation (the CI serve-smoke acceptance surface)
# ----------------------------------------------------------------------
def validate_telemetry(doc) -> List[str]:
    """Problems with a ``repro.obs/telemetry-v1`` document ([] if ok)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document must be an object"]
    if doc.get("schema") != TELEMETRY_SCHEMA:
        problems.append(f"schema must be {TELEMETRY_SCHEMA!r}, "
                        f"got {doc.get('schema')!r}")
    series = doc.get("series")
    if not isinstance(series, list):
        return problems + ["series must be a list"]
    kinds: Dict[str, str] = {}
    for i, entry in enumerate(series):
        where = f"series[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: must be an object")
            continue
        name, kind = entry.get("name"), entry.get("type")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing name")
            continue
        if kind not in _TYPES:
            problems.append(f"{where} ({name}): bad type {kind!r}")
            continue
        if kinds.setdefault(name, kind) != kind:
            problems.append(f"{where} ({name}): type conflicts with an "
                            f"earlier series")
        if not isinstance(entry.get("labels", {}), dict):
            problems.append(f"{where} ({name}): labels must be an object")
        if kind in ("counter", "gauge"):
            value = entry.get("value")
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                problems.append(f"{where} ({name}): non-numeric value")
            elif kind == "counter" and value < 0:
                problems.append(f"{where} ({name}): negative counter")
        else:
            problems.extend(_check_histogram(entry, where, name))
    return problems


def _check_histogram(entry: Dict, where: str, name: str) -> List[str]:
    problems: List[str] = []
    buckets = entry.get("buckets")
    if not isinstance(buckets, list) or not buckets:
        return [f"{where} ({name}): missing buckets"]
    previous_bound = None
    previous_count = 0
    for j, pair in enumerate(buckets):
        if (not isinstance(pair, (list, tuple))) or len(pair) != 2:
            problems.append(f"{where} ({name}): bucket {j} must be "
                            f"[le, count]")
            continue
        bound, count = pair
        last = j == len(buckets) - 1
        if last and bound != "+Inf":
            problems.append(f"{where} ({name}): final bucket must be "
                            f"+Inf")
        if not last:
            if not isinstance(bound, (int, float)) \
                    or isinstance(bound, bool):
                problems.append(f"{where} ({name}): bucket {j} bound "
                                f"not numeric")
            elif previous_bound is not None and bound <= previous_bound:
                problems.append(f"{where} ({name}): bounds not "
                                f"increasing")
            else:
                previous_bound = bound
        if not isinstance(count, int) or isinstance(count, bool) \
                or count < previous_count:
            problems.append(f"{where} ({name}): cumulative counts must "
                            f"be non-decreasing ints")
        else:
            previous_count = count
    count = entry.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        problems.append(f"{where} ({name}): missing count")
    elif buckets and isinstance(buckets[-1], (list, tuple)) \
            and len(buckets[-1]) == 2 and buckets[-1][1] != count:
        problems.append(f"{where} ({name}): +Inf bucket must equal "
                        f"count")
    if not isinstance(entry.get("sum"), (int, float)) \
            or isinstance(entry.get("sum"), bool):
        problems.append(f"{where} ({name}): missing sum")
    return problems


def validate_telemetry_strict(doc) -> Dict:
    """Raise :class:`TelemetrySchemaError` on any problem; else the doc."""
    problems = validate_telemetry(doc)
    if problems:
        raise TelemetrySchemaError("; ".join(problems))
    return doc
