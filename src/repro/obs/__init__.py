"""Observability subsystem: interval metrics, run manifests, profiling.

Three pieces, wired through the runner/CLI and exported behind
``repro.api``:

* :class:`~repro.obs.sampler.IntervalSampler` -- snapshots per-level
  cache-stat deltas, MSHR/ROB occupancy, RRPV distributions, TLB/PSC hit
  rates and stall attribution every N retired instructions;
* :mod:`~repro.obs.manifest` -- structured run manifests (config hash,
  workload, enhancement flags, wall/simulated time via
  :class:`~repro.obs.manifest.Profiler` hooks);
* :mod:`~repro.obs.export` -- JSON/CSV exporters plus a dependency-free
  schema validator, and :class:`~repro.obs.progress.Heartbeat`, the
  progress channel for long figure batches.

Cost when off is one ``is None`` test per retired instruction -- the same
pattern :mod:`repro.validate` uses.  Enable per run with
``--metrics PATH`` / ``--sample-interval N`` (CLI) or
``repro.api.run(..., metrics=...)``.  See ``docs/observability.md``.
"""

from repro.obs.export import (CSV_COLUMNS, ExportSchemaError,
                              batch_document, export_csv, export_json,
                              load, run_document, validate,
                              validate_strict)
from repro.obs.forward import (PROGRESS_ROW_KEYS, ForwardingSampler,
                               ProgressForwarder, progress_row)
from repro.obs.log import (JsonLinesLogger, configure_logging,
                           current_run_id, get_logger, logging_enabled)
from repro.obs.manifest import (SCHEMA, Profiler, build_batch_manifest,
                                build_manifest, config_digest)
from repro.obs.progress import DEFAULT_BACKLOG, EventStream, Heartbeat
from repro.obs.sampler import DEFAULT_SAMPLE_INTERVAL, IntervalSampler
from repro.obs.telemetry import (TELEMETRY_SCHEMA, Counter, Gauge,
                                 Histogram, TelemetryRegistry,
                                 TelemetrySchemaError, validate_telemetry,
                                 validate_telemetry_strict)

__all__ = [
    "CSV_COLUMNS", "Counter", "DEFAULT_BACKLOG",
    "DEFAULT_SAMPLE_INTERVAL", "EventStream",
    "ExportSchemaError", "ForwardingSampler", "Gauge",
    "Heartbeat", "Histogram", "IntervalSampler", "JsonLinesLogger",
    "PROGRESS_ROW_KEYS", "Profiler", "ProgressForwarder", "SCHEMA",
    "TELEMETRY_SCHEMA", "TelemetryRegistry", "TelemetrySchemaError",
    "batch_document", "build_batch_manifest", "build_manifest",
    "config_digest", "configure_logging", "current_run_id",
    "export_csv", "export_json", "get_logger", "load",
    "logging_enabled", "progress_row", "run_document", "validate",
    "validate_strict", "validate_telemetry", "validate_telemetry_strict",
]
