"""Structured JSON-lines logging for the sweep service.

One record per line, machine-parseable, quiet by default: the service
core, HTTP front door and CLI all log through :func:`get_logger`, and
nothing is written until :func:`configure_logging` turns the plane on
(``python -m repro serve --log-json`` does).  Each record carries the
event name, the emitting component, a service-instance ``run_id``, and
both wall-clock and monotonic timestamps so post-hoc analysis can order
events robustly across clock adjustments:

```json
{"event": "job-submitted", "component": "service", "run_id": "svc-...",
 "t_wall": 1770000000.123, "t_mono": 12.345, "job": "job-000001-...",
 "digest": "ab12..."}
```

Loggers are cheap handles -- resolve one at import time, check nothing:
a disabled logger's :meth:`~JsonLinesLogger.emit` is a single branch.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
import uuid
from typing import IO, Dict, Optional

_lock = threading.Lock()
_state: Dict = {
    "enabled": False,
    "stream": None,       # IO[str] to write to (default stderr)
    "owns_stream": False, # close it on reconfigure?
    "run_id": None,
}


def configure_logging(enabled: bool = True, stream: Optional[IO[str]] = None,
                      path=None, run_id: Optional[str] = None) -> str:
    """Turn the structured-log plane on (or off) process-wide.

    ``stream`` and ``path`` are mutually exclusive sinks; with neither,
    records go to stderr.  Returns the ``run_id`` stamped on every
    record (generated when not supplied) so callers can correlate logs
    with manifests/artifacts.
    """
    if stream is not None and path is not None:
        raise ValueError("pass stream or path, not both")
    with _lock:
        if _state["owns_stream"] and _state["stream"] is not None:
            try:
                _state["stream"].close()
            except OSError:
                pass
        owns = False
        if path is not None:
            stream = open(path, "a", encoding="utf-8")
            owns = True
        _state.update(
            enabled=bool(enabled),
            stream=stream,
            owns_stream=owns,
            run_id=run_id or f"svc-{uuid.uuid4().hex[:12]}",
        )
        return _state["run_id"]


def logging_enabled() -> bool:
    return _state["enabled"]


def current_run_id() -> Optional[str]:
    return _state["run_id"]


class JsonLinesLogger:
    """A component-scoped handle onto the process-wide log plane."""

    def __init__(self, component: str):
        self.component = component

    def emit(self, event: str, **fields) -> Optional[Dict]:
        """Write one record if logging is on; returns it (or None)."""
        if not _state["enabled"]:
            return None
        record = {
            "event": event,
            "component": self.component,
            "run_id": _state["run_id"],
            "t_wall": round(time.time(), 6),
            "t_mono": round(time.monotonic(), 6),
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=False, default=str)
        with _lock:
            if not _state["enabled"]:
                return None
            sink = _state["stream"] or sys.stderr
            try:
                sink.write(line + "\n")
                sink.flush()
            except (OSError, ValueError, io.UnsupportedOperation):
                # A broken sink must never take the service down.
                pass
        return record


def get_logger(component: str) -> JsonLinesLogger:
    return JsonLinesLogger(component)
