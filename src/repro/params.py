"""Simulation parameters.

``paper_config`` holds Table I of the paper verbatim (Intel Sunny Cove-like
core).  ``default_config`` is a reduced-scale variant: capacities of caches
and TLBs are divided by :data:`DEFAULT_SCALE` so that Python-speed simulation
of 100K-1M instruction synthetic ROIs reproduces the paper's miss-ratio
regimes in seconds instead of hours.  Scaling capacity and footprint together
preserves the reuse-distance relationships the paper's mechanisms exploit.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Optional

#: Architectural constants (57-bit VA, 4KB pages, 64B lines, 8B PTEs).
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
LINE_SHIFT = 6
LINE_SIZE = 1 << LINE_SHIFT
PTE_SIZE = 8
PTES_PER_LINE = LINE_SIZE // PTE_SIZE
PT_LEVELS = 5
BITS_PER_LEVEL = 9
VA_BITS = 57

#: Capacity divisor used by :func:`default_config`.
DEFAULT_SCALE = 16

#: Simulation backends selectable via ``SimConfig.with_(backend=...)``.
#: ``python`` is the reference scalar interpreter loop; ``numpy`` batch-
#: processes access windows against the flat column arrays of
#: :class:`repro.cache.store.CacheStore` and is required to be
#: bit-identical (``tests/test_backend_parity.py``, ``repro.validate``).
BACKENDS = ("python", "numpy")


# ----------------------------------------------------------------------
# Public-name normalisation
# ----------------------------------------------------------------------
#: Deprecated replacement-policy spellings -> canonical registry names.
#: Canonical names are lowercase snake_case (``t_drrip``, ``newsign_ship``);
#: hyphenated / capitalised paper spellings and historical shorthands are
#: accepted with a one-time DeprecationWarning.
_POLICY_ALIASES = {
    "rand": "random",
    "tdrrip": "t_drrip",
    "tship": "t_ship",
    "thawkeye": "t_hawkeye",
    "new_sign_ship": "newsign_ship",
}

#: Deprecated :class:`EnhancementConfig` flag names -> canonical names.
_FLAG_ALIASES = {
    "t_llc": "t_ship",
    "new_signatures": "newsign",
}

_warned_names: set = set()


def _warn_once(old: str, new: str, kind: str) -> None:
    if old in _warned_names:
        return
    _warned_names.add(old)
    warnings.warn(
        f"{kind} name {old!r} is deprecated; use {new!r}",
        DeprecationWarning, stacklevel=3)


def reset_deprecation_warnings() -> None:
    """Clear the warn-once state (every deprecation warns again).

    Warn-once state is process-global; without a reset, whichever test
    touches a deprecated name first steals the warning from every later
    assertion, making ``pytest.warns`` order-dependent.  The autouse
    fixture in ``tests/conftest.py`` calls this around each test.
    """
    _warned_names.clear()


def canonical_policy(name: str) -> str:
    """Map a replacement-policy string to its canonical registry name.

    Canonical names pass through untouched.  Deprecated spellings --
    uppercase, hyphenated (``T-DRRIP``) or legacy shorthands (``rand``)
    -- are mapped to the canonical name with a one-time
    DeprecationWarning.  Unknown names pass through unchanged so the
    registry can report them with its own error.
    """
    folded = name.strip().lower().replace("-", "_")
    canon = _POLICY_ALIASES.get(folded, folded)
    if canon != name:
        _warn_once(name, canon, "replacement policy")
    return canon


@dataclass
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int
    mshr_entries: int = 32
    replacement: str = "lru"

    def __post_init__(self):
        self.replacement = canonical_policy(self.replacement)
        if self.ways <= 0 or self.size_bytes <= 0 or self.latency < 0:
            raise ValueError(f"invalid cache geometry for {self.name}")
        if self.size_bytes % (LINE_SIZE * self.ways):
            raise ValueError(
                f"{self.name}: size must be a multiple of "
                f"{LINE_SIZE} * {self.ways} ways")
        if self.mshr_entries <= 0:
            raise ValueError(f"{self.name}: need at least one MSHR")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (LINE_SIZE * self.ways)

    def scaled(self, divisor: int) -> "CacheConfig":
        """Return a copy with capacity divided by ``divisor``.

        Associativity is preserved; the number of sets shrinks.  A floor of
        one set per way group is enforced.
        """
        size = max(self.size_bytes // divisor, LINE_SIZE * self.ways)
        return dataclasses.replace(self, size_bytes=size)


@dataclass
class TLBConfig:
    """Geometry and timing of one TLB level."""

    name: str
    entries: int
    ways: int
    latency: int

    def __post_init__(self):
        if self.entries <= 0 or self.ways <= 0 or self.latency < 0:
            raise ValueError(f"invalid TLB geometry for {self.name}")
        if self.entries % self.ways:
            raise ValueError(
                f"{self.name}: entries must be a multiple of ways")

    @property
    def num_sets(self) -> int:
        return max(1, self.entries // self.ways)

    def scaled(self, divisor: int) -> "TLBConfig":
        entries = max(self.entries // divisor, self.ways)
        return dataclasses.replace(self, entries=entries)


@dataclass
class PSCConfig:
    """Paging-structure cache sizes (PSCL5 caches level-5 PTEs, etc.)."""

    pscl5_entries: int = 2
    pscl4_entries: int = 4
    pscl3_entries: int = 8
    pscl2_entries: int = 32
    latency: int = 1

    def entries_for_level(self, level: int) -> int:
        return {5: self.pscl5_entries, 4: self.pscl4_entries,
                3: self.pscl3_entries, 2: self.pscl2_entries}[level]


@dataclass
class DRAMConfig:
    """Single-channel DDR5-like timing in core cycles (4 GHz core)."""

    channels: int = 1
    banks_per_channel: int = 32
    row_buffer_bytes: int = 8192
    # Latencies in core cycles (4 GHz core, DDR5-6400-like timings).
    row_hit_latency: int = 64
    row_miss_latency: int = 190
    bus_transfer_cycles: int = 4
    queue_depth: int = 64


@dataclass
class CoreConfig:
    """Out-of-order core model (Table I: Sunny Cove-like)."""

    rob_entries: int = 352
    dispatch_width: int = 6
    retire_width: int = 4
    nonmem_latency: int = 1
    #: Cycles to re-schedule and re-issue a load from the load queue after
    #: its STLB-missing translation finally fills (pipeline replay).  This
    #: is the window in which ATP's prefetch -- launched the moment the
    #: leaf PTE *hits* at L2C/LLC -- gets ahead of the replay data request.
    replay_issue_latency: int = 24


@dataclass(init=False)
class EnhancementConfig:
    """Which of the paper's mechanisms are enabled.

    ``t_drrip``      -- T-DRRIP at L2C (translations at RRPV=0, replays at 3).
    ``t_ship``       -- T-SHiP at the LLC (translations at RRPV=0); selects
                        T-Hawkeye instead when the LLC base policy is Hawkeye.
    ``newsign``      -- translation/replay-aware SHiP/Hawkeye signatures
                        (the paper's "NewSign" scheme).
    ``atp``          -- address-translation-hit triggered replay prefetcher.
    ``tempo``        -- TEMPO-style DRAM-side replay prefetch on LLC
                        translation miss.
    ``replay_rrpv0`` -- the *misconfiguration* of Fig 10: replays also
                        inserted at RRPV=0.

    The pre-1.1 flag names ``t_llc`` and ``new_signatures`` are accepted
    as keyword arguments and readable as attributes, with a one-time
    DeprecationWarning.
    """

    t_drrip: bool = False
    t_ship: bool = False
    newsign: bool = False
    atp: bool = False
    tempo: bool = False
    replay_rrpv0: bool = False

    def __init__(self, t_drrip: bool = False, t_ship: bool = False,
                 newsign: bool = False, atp: bool = False,
                 tempo: bool = False, replay_rrpv0: bool = False,
                 **deprecated: bool):
        values = {"t_drrip": t_drrip, "t_ship": t_ship, "newsign": newsign,
                  "atp": atp, "tempo": tempo, "replay_rrpv0": replay_rrpv0}
        for old, value in deprecated.items():
            try:
                new = _FLAG_ALIASES[old]
            except KeyError:
                raise TypeError(
                    f"EnhancementConfig got an unexpected flag {old!r}"
                ) from None
            _warn_once(old, new, "enhancement flag")
            values[new] = value
        for name, value in values.items():
            setattr(self, name, value)

    # -- deprecated attribute spellings (read-only shims) ----------------
    @property
    def t_llc(self) -> bool:
        _warn_once("t_llc", "t_ship", "enhancement flag")
        return self.t_ship

    @property
    def new_signatures(self) -> bool:
        _warn_once("new_signatures", "newsign", "enhancement flag")
        return self.newsign

    @classmethod
    def none(cls) -> "EnhancementConfig":
        return cls()

    @classmethod
    def full(cls) -> "EnhancementConfig":
        """All of the paper's proposed mechanisms (the Fig 14 endpoint)."""
        return cls(t_drrip=True, t_ship=True, newsign=True,
                   atp=True, tempo=True)


#: Named enhancement stacks, in the paper's cumulative order.  This is
#: the single source the facade (``repro.api``) and ``SimConfig.with_``
#: resolve preset names against.
ENHANCEMENT_PRESETS = {
    "none": {},
    "t_drrip": dict(t_drrip=True),
    "t_ship": dict(t_drrip=True, t_ship=True, newsign=True),
    "atp": dict(t_drrip=True, t_ship=True, newsign=True, atp=True),
    "full": dict(t_drrip=True, t_ship=True, newsign=True, atp=True,
                 tempo=True),
}

ENHANCEMENT_PRESET_NAMES = tuple(ENHANCEMENT_PRESETS)


def enhancement_preset(name: str) -> EnhancementConfig:
    """A fresh :class:`EnhancementConfig` for a named preset
    (``none``/``t_drrip``/``t_ship``/``atp``/``full``)."""
    try:
        flags = ENHANCEMENT_PRESETS[name]
    except KeyError:
        raise ValueError(f"unknown enhancement preset {name!r}; known: "
                         f"{' '.join(ENHANCEMENT_PRESET_NAMES)}") from None
    return EnhancementConfig(**flags)


@dataclass
class IdealConfig:
    """Ideal-cache modes used for the Fig 2 opportunity study.

    When a flag is set, the corresponding request class is served with the
    level's hit latency even on a miss; the miss still goes to the MSHRs and
    DRAM to model bandwidth, as described in the paper.
    """

    llc_translations: bool = False
    llc_replays: bool = False
    l2c_translations: bool = False
    l2c_replays: bool = False

    @property
    def any_enabled(self) -> bool:
        return (self.llc_translations or self.llc_replays
                or self.l2c_translations or self.l2c_replays)


@dataclass(frozen=True)
class SimConfig:
    """Complete configuration of one simulated machine.

    Instances are frozen: deriving a variant goes through
    :meth:`with_`, which returns a new config with the given fields
    overridden (``enhancements`` additionally accepts a preset name).
    The pre-1.1 ``.replace(...)`` spelling was removed in api v2 and
    raises with a pointer here.  Sub-configs (:class:`CacheConfig`,
    :class:`EnhancementConfig`, ...) remain plain mutable dataclasses --
    freezing applies to the top-level field bindings that identify a
    machine, which is what result memoisation hashes.
    """

    core: CoreConfig = field(default_factory=CoreConfig)
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig("DTLB", 64, 4, 1))
    itlb: TLBConfig = field(default_factory=lambda: TLBConfig("ITLB", 64, 4, 1))
    stlb: TLBConfig = field(default_factory=lambda: TLBConfig("STLB", 2048, 16, 8))
    psc: PSCConfig = field(default_factory=PSCConfig)
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1I", 32 * 1024, 8, 4, mshr_entries=8, replacement="lru"))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1D", 48 * 1024, 12, 5, mshr_entries=24, replacement="lru"))
    l2c: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L2C", 512 * 1024, 8, 10, mshr_entries=48, replacement="drrip"))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(
        "LLC", 2 * 1024 * 1024, 16, 20, mshr_entries=96, replacement="ship"))
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    enhancements: EnhancementConfig = field(default_factory=EnhancementConfig)
    ideal: IdealConfig = field(default_factory=IdealConfig)
    #: LLC inclusion policy: "non_inclusive" (ChampSim default, the
    #: paper's setting) or "inclusive" (LLC evictions back-invalidate the
    #: L1D/L2C copies -- which also evicts retained translations early,
    #: an interesting interaction with T-DRRIP).
    llc_inclusion: str = "non_inclusive"
    #: Model the instruction side (ITLB + L1I fetch path).  Off by
    #: default: the paper's workloads are data-bound and their code
    #: footprints hit the L1I, but the structures are Table I components
    #: and xalancbmk-style code-heavy workloads can exercise them.
    model_frontend: bool = False
    #: Huge-page policy (extension study): "none" maps everything with
    #: 4KB pages (the paper's setting); "gather_region" backs the
    #: irregular gather region with 2MB pages (THP-style).
    huge_page_policy: str = "none"
    #: Prior-work comparison mode (Section V-B): "none", "cbpred"
    #: (DpPred dead-page bypass at STLB + CbPred dead-block bypass at
    #: LLC) or "csalt" (translation/data way partitioning at the LLC).
    comparison: str = "none"
    #: L1D prefetcher name ("none", "ipcp", "ip_stride", "next_line").
    l1d_prefetcher: str = "none"
    #: L2C prefetcher name ("none", "spp", "bingo", "isb", "next_line").
    l2c_prefetcher: str = "none"
    #: STLB fill latency applied after a completed page walk.
    stlb_fill_latency: int = 2
    #: Track recall distances (Figs 5/7/18); small runtime cost.
    track_recall: bool = True
    #: Simulation backend: "python" (reference scalar loop) or "numpy"
    #: (vectorized batch windows with a scalar fallback for complex
    #: events).  Both are bit-identical by construction and by test.
    backend: str = "python"
    seed: int = 1

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; known: "
                f"{' '.join(BACKENDS)}")

    def with_(self, **overrides) -> "SimConfig":
        """Return a copy with the given fields overridden.

        The canonical way to derive a config variant::

            cfg = default_config().with_(enhancements="full",
                                         l2c_prefetcher="spp")

        ``enhancements`` accepts an :class:`EnhancementConfig` or a
        preset name (see :data:`ENHANCEMENT_PRESETS`); every other
        keyword is a :class:`SimConfig` field.  Unknown fields raise
        ``TypeError``.
        """
        enh = overrides.get("enhancements")
        if isinstance(enh, str):
            overrides = dict(overrides,
                             enhancements=enhancement_preset(enh))
        return dataclasses.replace(self, **overrides)

    def replace(self, **kwargs) -> "SimConfig":
        """Removed in api v2 -- use :meth:`with_`.

        Deprecated (warn-once) through v1.1-v1.3; the v2 major bump
        retires it.  The body stays only to name the successor loudly
        instead of raising a bare ``AttributeError``.
        """
        raise RuntimeError(
            "SimConfig.replace() was removed in repro.api v2; use "
            "SimConfig.with_(...) instead (same signature, and "
            "enhancements= additionally accepts a preset name)")


def paper_config() -> SimConfig:
    """Table I of the paper, verbatim."""
    return SimConfig()


def default_config(scale: int = DEFAULT_SCALE) -> SimConfig:
    """Reduced-scale configuration for fast Python simulation.

    Cache and TLB capacities are divided by ``scale`` (default 16); the
    workload generators in :mod:`repro.workloads` shrink their footprints by
    the same factor, preserving the paper's miss-ratio regimes.
    """
    cfg = SimConfig()
    # The capacity structures under study (STLB, L2C, LLC) shrink by the
    # full factor.  The L1D and DTLB scale by scale/4: shrinking the L1D
    # 16x floods its MSHRs and makes memory-level parallelism the
    # bottleneck (a regime the paper's machine is never in), while not
    # shrinking it at all lets the whole scaled leaf-PTE working set live
    # in the L1D, which would starve the L2C/LLC mechanisms under study
    # (Fig 3: only 23% of leaf translations are served at the L1D).
    return cfg.with_(
        dtlb=cfg.dtlb.scaled(max(1, scale // 4)),
        itlb=cfg.itlb.scaled(max(1, scale // 4)),
        stlb=cfg.stlb.scaled(scale),
        l1i=cfg.l1i.scaled(max(1, scale // 4)),
        l1d=cfg.l1d.scaled(max(1, scale // 4)),
        l2c=cfg.l2c.scaled(scale),
        llc=cfg.llc.scaled(scale),
    )
