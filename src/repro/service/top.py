"""``python -m repro top`` -- live ANSI dashboard over a running service.

Polls ``GET /health`` (gauges + telemetry) and ``GET /jobs`` and redraws
a compact terminal view: queue/worker state on top, one line per job
with a progress bar fed by the forwarded ``job-progress`` rows
(pct/IPC/MPKI/walk cycles).  Pure-stdlib ANSI (no curses dependency);
``--once`` prints a single frame and exits, which is what the smoke
test drives.

Rendering is split from polling: :func:`render_dashboard` is a pure
function of the two JSON documents, so tests can exercise the layout
without a server.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional

#: Job statuses ordered most-interesting-first for the table.
_STATUS_ORDER = {"running": 0, "pending": 1, "failed": 2,
                 "cancelled": 3, "done": 4}

_STATUS_GLYPH = {"running": ">", "pending": ".", "done": "=",
                 "failed": "!", "cancelled": "x"}


def _bar(pct: float, width: int) -> str:
    pct = min(1.0, max(0.0, pct))
    filled = int(round(pct * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _job_line(job: Dict, width: int) -> str:
    status = job.get("status", "?")
    glyph = _STATUS_GLYPH.get(status, "?")
    head = (f" {glyph} {job.get('id', '?'):<24.24} "
            f"{job.get('kind', '?'):<8.8} {status:<9.9}")
    progress = job.get("progress") or {}
    if status == "done":
        progress = dict(progress, pct=1.0)
    if progress:
        bar = _bar(progress.get("pct", 0.0), 20)
        detail = (f"{bar} {progress.get('pct', 0.0) * 100:5.1f}%  "
                  f"ipc {progress.get('ipc', 0.0):5.3f}  "
                  f"l2 {progress.get('l2_mpki', 0.0):7.2f}  "
                  f"llc {progress.get('llc_mpki', 0.0):7.2f}  "
                  f"walk {progress.get('walk_cycles', 0):>8}")
    elif status == "failed":
        detail = (job.get("error") or "failed")[: max(10, width - 50)]
    else:
        detail = f"attempts {job.get('attempts', 0)}"
    return (head + " " + detail)[:width]


def _batch_line(health: Dict) -> Optional[str]:
    """Batch-backend engagement summary from the telemetry series.

    Returns ``None`` until any batch series has moved (scalar-only
    services keep the dashboard unchanged).
    """
    series = (health.get("telemetry") or {}).get("series") or []
    windows = 0
    fallbacks: Dict[str, int] = {}
    cohort_count = cohort_sum = 0
    for entry in series:
        name = entry.get("name")
        if name == "repro_batch_windows_total":
            windows = entry.get("value", 0)
        elif name == "repro_batch_fallback_total":
            value = entry.get("value", 0)
            if value:
                reason = entry.get("labels", {}).get("reason", "?")
                fallbacks[reason] = value
        elif name == "repro_batch_miss_cohort_size":
            cohort_count = entry.get("count", 0)
            cohort_sum = entry.get("sum", 0)
    if not windows and not fallbacks:
        return None
    line = f" batch windows {windows}"
    if cohort_count:
        line += f"  miss-cohort avg {cohort_sum / cohort_count:.1f}"
    if fallbacks:
        top_reason = max(fallbacks, key=fallbacks.get)
        line += (f"  fallbacks {sum(fallbacks.values())}"
                 f" (top: {top_reason})")
    return line


def render_dashboard(health: Dict, jobs: List[Dict], width: int = 100,
                     limit: int = 20, clock: Optional[float] = None) -> str:
    """One dashboard frame as a plain string (no ANSI codes).

    ``health`` is the ``GET /health`` document, ``jobs`` the list from
    ``GET /jobs``; both straight off the wire.
    """
    gauges = health.get("gauges", {})
    metrics = health.get("metrics", {})
    states = gauges.get("states", {})
    lines = []
    stamp = time.strftime("%H:%M:%S", time.localtime(clock))
    lines.append(f"repro top · {stamp} · up "
                 f"{gauges.get('uptime_seconds', 0.0):.0f}s · "
                 f"{health.get('workers', '?')} workers"[:width])
    lines.append(
        (f" queue {gauges.get('queue_depth', 0)}/"
         f"{health.get('queue_size', '?')}  "
         f"inflight {gauges.get('inflight', 0)}  "
         f"run {states.get('running', 0)}  pend {states.get('pending', 0)}"
         f"  done {states.get('done', 0)}  fail {states.get('failed', 0)}"
         )[:width])
    lines.append(
        (f" exec {metrics.get('executed', 0)}  "
         f"store-hit {metrics.get('store_hits', 0)}  "
         f"dedup {metrics.get('dedup_hits', 0)}  "
         f"requeue {metrics.get('requeues', 0)}  "
         f"rejected {metrics.get('rejected', 0)}  "
         f"progress-rows {gauges.get('progress_events', 0)}  "
         f"dropped {gauges.get('events_dropped', 0)}")[:width])
    batch = _batch_line(health)
    if batch is not None:
        lines.append(batch[:width])
    lines.append("-" * min(width, 100))
    ordered = sorted(
        jobs, key=lambda j: (_STATUS_ORDER.get(j.get("status"), 9),
                             j.get("id", "")))
    for job in ordered[:limit]:
        lines.append(_job_line(job, width))
    if len(ordered) > limit:
        lines.append(f" ... {len(ordered) - limit} more")
    if not jobs:
        lines.append(" (no jobs)")
    return "\n".join(lines)


def cmd_top(args) -> int:
    """CLI entry point (wired by ``add_service_parsers``)."""
    from repro.service.cli import ServiceClientError, request
    interval = getattr(args, "interval", 1.0)
    limit = getattr(args, "limit", 20)
    once = getattr(args, "once", False)
    width = getattr(args, "width", None) or 100
    while True:
        try:
            health = request(args.url, "/health")
            jobs = request(args.url, "/jobs").get("jobs", [])
        except (ServiceClientError, OSError) as exc:
            print(f"repro top: {args.url}: {exc}", file=sys.stderr)
            return 1
        frame = render_dashboard(health, jobs, width=width, limit=limit)
        if once:
            print(frame)
            return 0
        # Home + clear-to-end redraw (flicker-free vs full clears).
        sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
        sys.stdout.flush()
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
