"""HTTP front door for the sweep service (stdlib only).

The asyncio service runs on a dedicated loop thread; handler threads of
a ``ThreadingHTTPServer`` bridge into it with
``run_coroutine_threadsafe``.  Endpoints (see ``docs/service.md``):

=======  ==========================  =====================================
POST     /jobs                       submit (202; 400 bad spec; 503+
                                     Retry-After when the queue is full)
GET      /jobs                       all jobs, newest last
GET      /jobs/<id>                  one job's status document
GET      /jobs/<id>/result           payload (409 until DONE)
GET      /jobs/<id>/events           NDJSON progress stream (chunked;
                                     ends when the job is terminal)
POST     /jobs/<id>/cancel           cancel a pending job
GET      /store                      store manifest (the CI artifact)
GET      /store/<digest>             one stored payload
GET      /health                     service status + metrics + gauges
GET      /metrics                    Prometheus text exposition
=======  ==========================  =====================================
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.obs.log import get_logger
from repro.service.core import ServiceSaturated, SweepService
from repro.service.jobs import JobError

#: Seconds an idle event-stream read blocks before emitting a keepalive.
STREAM_TICK = 0.5

#: Content type of ``GET /metrics`` (Prometheus text format 0.0.4).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_log = get_logger("http")


class ServiceRuntime:
    """Owns the service's event-loop thread; thread-safe call bridge."""

    def __init__(self, service: SweepService):
        self.service = service
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def start(self) -> "ServiceRuntime":
        self._thread.start()
        self.call(self.service.start())
        return self

    def call(self, coro, timeout: Optional[float] = 60.0):
        """Run a coroutine on the service loop; block for its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout)

    def sync(self, fn, *args, timeout: Optional[float] = 60.0):
        """Run a plain callable on the service loop thread."""
        future: concurrent.futures.Future = concurrent.futures.Future()

        def _invoke() -> None:
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # propagated to the caller
                future.set_exception(exc)

        self.loop.call_soon_threadsafe(_invoke)
        return future.result(timeout)

    def stop(self) -> None:
        try:
            self.call(self.service.close(), timeout=10.0)
        except Exception:
            pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10.0)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service/2.0"

    # The server instance carries the runtime (set by build_server).
    @property
    def runtime(self) -> ServiceRuntime:
        return self.server.runtime  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # -- plumbing --------------------------------------------------------
    def _send_json(self, code: int, document: Dict,
                   extra_headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        body = json.dumps(document, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _not_found(self, what: str) -> None:
        self._send_json(404, {"error": f"{what} not found"})

    def _job_or_404(self, job_id: str):
        job = self.runtime.sync(self.runtime.service.get_job, job_id)
        if job is None:
            self._not_found(f"job {job_id}")
        return job

    # -- GET -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path, _, query = self.path.partition("?")
        parts = [p for p in path.split("/") if p]
        service = self.runtime.service
        _log.emit("http-get", path=path)
        if parts == ["health"]:
            self._send_json(200, self.runtime.sync(service.describe))
        elif parts == ["metrics"]:
            # Registry reads are thread-safe; no loop hop needed.
            body = service.render_metrics().encode()
            self.send_response(200)
            self.send_header("Content-Type", METRICS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif parts == ["store"]:
            self._send_json(200, service.store.manifest())
        elif len(parts) == 2 and parts[0] == "store":
            payload = service.store.get_payload(parts[1])
            if payload is None:
                self._not_found(f"digest {parts[1]}")
            else:
                self._send_json(200, payload)
        elif parts == ["jobs"]:
            jobs = self.runtime.sync(service.jobs)
            self._send_json(200,
                            {"jobs": [j.describe() for j in jobs]})
        elif len(parts) == 2 and parts[0] == "jobs":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._send_json(200, job.describe())
        elif len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] == "result":
            job = self._job_or_404(parts[1])
            if job is None:
                return
            if job.payload is None:
                self._send_json(409, {"error": "no result",
                                      "status": job.status.value})
            else:
                self._send_json(200, job.payload)
        elif len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] == "events":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._stream_events(job, query)
        else:
            self._not_found(path)

    def _stream_events(self, job, query: str) -> None:
        start = 0
        for pair in query.split("&"):
            if pair.startswith("start="):
                try:
                    start = max(0, int(pair[6:]))
                except ValueError:
                    pass
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def chunk(line: str) -> None:
            data = line.encode()
            self.wfile.write(f"{len(data):x}\r\n".encode()
                             + data + b"\r\n")
            self.wfile.flush()

        try:
            index = start
            while True:
                for event in job.events.snapshot(index):
                    # Advance by the event's own seq: a bounded-backlog
                    # drop skips forward instead of under-counting.
                    index = event["seq"] + 1
                    chunk(json.dumps(event, sort_keys=True) + "\n")
                if job.events.closed and len(job.events) <= index:
                    break
                job.events.wait_for(index, timeout=STREAM_TICK)
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream

    # -- POST ------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["jobs"]:
            self._submit()
        elif len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] == "cancel":
            job = self._job_or_404(parts[1])
            if job is not None:
                ok = self.runtime.sync(self.runtime.service.cancel, job)
                self._send_json(200, {"id": job.id, "cancelled": ok,
                                      "status": job.status.value})
        else:
            self._not_found(self.path)

    def do_DELETE(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            job = self._job_or_404(parts[1])
            if job is not None:
                ok = self.runtime.sync(self.runtime.service.cancel, job)
                self._send_json(200, {"id": job.id, "cancelled": ok,
                                      "status": job.status.value})
        else:
            self._not_found(self.path)

    def _submit(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", 0))
            document = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, TypeError):
            self._send_json(400, {"error": "body must be JSON"})
            return
        if not isinstance(document, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return
        kind = document.pop("kind", None)
        priority = document.pop("priority", None)
        if priority is not None and (isinstance(priority, bool)
                                     or not isinstance(priority, int)):
            self._send_json(400, {"error": "priority must be an "
                                           f"integer, got {priority!r}"})
            return
        kwargs = dict(document)
        if priority is not None:
            kwargs["priority"] = priority
        try:
            job = self.runtime.call(
                self.runtime.service.submit(kind or "run", wait=False,
                                            **kwargs))
        except JobError as exc:
            self._send_json(400, {"error": str(exc)})
        except ServiceSaturated as exc:
            self._send_json(503, {"error": str(exc)},
                            extra_headers=(("Retry-After", "1"),))
        else:
            self._send_json(202, job.describe())


def build_server(service: SweepService, host: str = "127.0.0.1",
                 port: int = 0,
                 verbose: bool = False) -> Tuple[ThreadingHTTPServer,
                                                 ServiceRuntime]:
    """A started runtime + bound (not yet serving) HTTP server."""
    runtime = ServiceRuntime(service).start()
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.runtime = runtime  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server, runtime


def serve(host: str = "127.0.0.1", port: int = 8765, *, store=None,
          workers: Optional[int] = None,
          queue_size: Optional[int] = None,
          progress_interval: Optional[int] = "default",
          log_json: bool = False,
          verbose: bool = False, ready=None) -> None:
    """Blocking server entry point (``python -m repro serve``).

    ``progress_interval=None`` disables worker progress forwarding;
    ``log_json=True`` turns the structured JSON-lines log plane on
    (stderr)."""
    import os

    from repro.service.store import JobStore
    if log_json:
        from repro.obs.log import configure_logging
        configure_logging(True)
    kwargs: Dict = {}
    if queue_size is not None:
        kwargs["queue_size"] = queue_size
    if progress_interval != "default":
        kwargs["progress_interval"] = progress_interval
    service = SweepService(
        store=store if store is not None else JobStore(),
        workers=(os.cpu_count() or 2) if workers is None else workers,
        **kwargs)
    server, runtime = build_server(service, host, port, verbose=verbose)
    actual_host, actual_port = server.server_address[:2]
    _log.emit("serve-start", host=str(actual_host), port=actual_port,
              workers=service.workers, store=str(service.store.dir))
    print(f"repro service listening on http://{actual_host}:{actual_port} "
          f"(store {service.store.dir}, {service.workers} workers)",
          flush=True)
    if ready is not None:
        ready(actual_host, actual_port, runtime)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        runtime.stop()
