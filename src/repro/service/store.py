"""Sharded, content-addressed on-disk job store.

Grown from :class:`~repro.experiments.parallel.ResultCache` (which now
shards its entries by digest prefix): the service stores every
completed job payload as one JSON document at
``<root>/v<schema>-<code>/<digest[:2]>/<digest>.json``.  Run and
scenario payloads are :class:`~repro.experiments.parallel.RunSummary`
dicts addressed by their :class:`RunKey` digest -- byte-compatible with
what the parallel runner memoises, so a figure batch warmed through
``--jobs``/``ResultCache`` and a sweep submitted to the service share
results.  Coarse kinds (figure/bench/trace) store their own documents
under the spec digest.

The store is the dedupe horizon across service restarts: a resubmitted
digest is served from disk (a *store hit*) without executing anything,
and a resumed partial sweep skips every digest already present.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.parallel import (CACHE_SCHEMA_VERSION, ResultCache,
                                        SHARD_WIDTH)

#: Schema tag of the manifest document (``GET /store``).
MANIFEST_SCHEMA = "repro.service.store/v1"


class JobStore(ResultCache):
    """A :class:`ResultCache` with digest-level access and a manifest.

    The base class provides sharded atomic reads/writes keyed by
    ``RunKey`` *or* raw digest (``get_raw``/``put_raw``/``contains``);
    this adds the service-facing surface: payload storage with a kind
    envelope and the manifest the smoke test and CI artifact use.
    """

    def get_payload(self, digest: str) -> Optional[Dict]:
        """The stored payload for a digest (``None`` when absent)."""
        return self.get_raw(digest)

    def put_payload(self, digest: str, payload: Dict) -> None:
        self.put_raw(digest, payload)

    def manifest(self) -> Dict:
        """Store inventory + counters (uploaded as a CI artifact)."""
        digests: List[str] = self.digests()
        return {
            "schema": MANIFEST_SCHEMA,
            "root": str(self.root),
            "dir": str(self.dir),
            "cache_schema_version": CACHE_SCHEMA_VERSION,
            "code_fingerprint": self.fingerprint,
            "shard_width": SHARD_WIDTH,
            "entries": len(digests),
            "digests": digests,
            "counters": {"hits": self.hits, "misses": self.misses,
                         "stores": self.stores},
        }
