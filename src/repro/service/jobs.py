"""Job model for the sweep service.

A :class:`JobSpec` is the declarative description of one unit of work
-- a simulation run, a scenario, a whole sweep, a figure, a bench
matrix or a span trace.  Specs are plain data (JSON round-trippable,
picklable) so they can cross the HTTP API and the worker-pool boundary
unchanged.  Every spec has a stable content digest:

* ``run`` / ``scenario`` specs reduce to the existing
  :class:`~repro.experiments.parallel.RunKey` and reuse *its* digest,
  so service-store entries, ``ResultCache`` memo entries and dedupe all
  agree on run identity;
* other kinds hash their canonical JSON form.

A :class:`Job` is one accepted spec inside the service: status,
priority, attempt counter, event stream and (eventually) the digest of
its stored payload.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.experiments.parallel import RunKey, RunSummary
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.obs.progress import EventStream
from repro.params import DEFAULT_SCALE, default_config

JOB_KINDS = ("run", "scenario", "sweep", "figure", "bench", "trace")

#: Default job priority; smaller numbers run sooner.
DEFAULT_PRIORITY = 10


class JobStatus(str, Enum):
    """Lifecycle of one job (see ``docs/service.md``)."""

    PENDING = "pending"      # accepted, waiting in the queue
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED,
                        JobStatus.CANCELLED)


class JobError(ValueError):
    """A spec the service cannot accept (unknown kind, bad params)."""


@dataclass(frozen=True)
class JobSpec:
    """One unit of submittable work.

    ``params`` carries the kind-specific fields (``benchmark``,
    ``enhancements``, ``instructions``, ... for runs; ``scenario`` for
    scenarios; ``runs: [...]`` for sweeps; ``figure`` / ``benchmark``
    for figures and traces).  It is stored as a sorted item tuple so the
    spec is hashable; use :meth:`make` / :meth:`from_dict` rather than
    constructing directly.
    """

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, kind: str, **params) -> "JobSpec":
        if kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {kind!r}; known: "
                           f"{' '.join(JOB_KINDS)}")
        clean = {k: v for k, v in params.items() if v is not None}
        _validate(kind, clean)
        return cls(kind=kind, params=_freeze(clean))

    @classmethod
    def from_dict(cls, data: Dict) -> "JobSpec":
        if not isinstance(data, dict) or "kind" not in data:
            raise JobError("job document must be an object with a 'kind'")
        params = {k: v for k, v in data.items()
                  if k not in ("kind", "priority")}
        return cls.make(data["kind"], **params)

    # -- views -----------------------------------------------------------
    def to_dict(self) -> Dict:
        return {"kind": self.kind, **_thaw(self.params)}

    def param(self, name: str, default=None):
        return dict(self.params).get(name, default)

    # -- identity --------------------------------------------------------
    def run_key(self) -> Optional[RunKey]:
        """The :class:`RunKey` for ``run``/``scenario`` specs (``None``
        for the coarse kinds)."""
        p = _thaw(self.params)
        if self.kind == "run":
            return _run_key(p["benchmark"], p)
        if self.kind == "scenario":
            # Resolving the document pins its digest into the key, so a
            # scenario edit changes the job identity.
            from repro.scenarios import load_scenario
            doc = load_scenario(p["scenario"])
            scale = int(p.get("scale", doc.scale))
            # Mirrors run_scenario: base config (+ backend override),
            # then the document's own config block on top.
            cfg = scenario_base_config(p, scale)
            if doc.config:
                cfg = cfg.with_(**doc.config)
            return RunKey(
                benchmark=doc.name, config=cfg,
                seed=int(p.get("seed", doc.seed)),
                instructions=int(p.get("instructions", doc.instructions)),
                warmup=int(p.get("warmup", doc.warmup)),
                scale=int(p.get("scale", doc.scale)),
                scenario=doc.digest)
        return None

    @property
    def digest(self) -> str:
        key = self.run_key()
        if key is not None:
            return key.digest
        blob = json.dumps(self.to_dict(), sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()

    def sweep_children(self) -> List["JobSpec"]:
        """Expand a ``sweep`` spec into its child ``run`` specs."""
        if self.kind != "sweep":
            raise JobError(f"not a sweep: {self.kind}")
        p = _thaw(self.params)
        shared = {k: v for k, v in p.items() if k != "runs"}
        children = []
        for entry in p["runs"]:
            if isinstance(entry, str):
                entry = {"benchmark": entry}
            children.append(JobSpec.make("run", **{**shared, **entry}))
        return children


def _validate(kind: str, params: Dict) -> None:
    required = {"run": ("benchmark",), "scenario": ("scenario",),
                "sweep": ("runs",), "figure": ("figure",),
                "bench": (), "trace": ("benchmark",)}[kind]
    for name in required:
        if name not in params:
            raise JobError(f"{kind} job needs {name!r}")
    for name in ("instructions", "warmup", "scale", "seed"):
        if name in params:
            value = params[name]
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value <= 0:
                raise JobError(f"{name} must be a positive integer, "
                               f"got {value!r}")
    if "backend" in params:
        from repro.params import BACKENDS
        if params["backend"] not in BACKENDS:
            raise JobError(f"unknown backend {params['backend']!r}; "
                           f"known: {' '.join(BACKENDS)}")
    if kind == "sweep":
        runs = params["runs"]
        if not isinstance(runs, (list, tuple)) or not runs:
            raise JobError("sweep job needs a non-empty 'runs' list")
    if kind == "scenario":
        for name in ("config", "enhancements"):
            if name in params:
                # The document owns its config block; layering a second
                # one would make job identity order-dependent.
                raise JobError(f"scenario jobs do not accept {name!r}; "
                               "edit the scenario document instead")


def _freeze(value):
    """Recursively convert dicts/lists to hashable sorted tuples."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value):
    """Inverse of :func:`_freeze` (item tuples back to dicts)."""
    if isinstance(value, tuple):
        if all(isinstance(v, tuple) and len(v) == 2
               and isinstance(v[0], str) for v in value):
            return {k: _thaw(v) for k, v in value}
        return [_thaw(v) for v in value]
    return value


def scenario_base_config(params: Dict, scale: int):
    """The base config a ``scenario`` spec hands to ``run_scenario``
    (the document's own ``config:`` block applies on top of it)."""
    cfg = default_config(scale)
    if params.get("backend"):
        cfg = cfg.with_(backend=params["backend"])
    return cfg


def run_config(params: Dict, scale: int):
    """The full SimConfig a ``run``/``trace`` spec describes."""
    from repro.api import build_config
    cfg = build_config(scale, enhancements=params.get("enhancements"))
    overrides = params.get("config") or {}
    if overrides:
        cfg = cfg.with_(**overrides)
    if params.get("backend"):
        cfg = cfg.with_(backend=params["backend"])
    return cfg


def _run_key(benchmark: str, params: Dict) -> RunKey:
    scale = int(params.get("scale", DEFAULT_SCALE))
    cfg = run_config(params, scale)
    return RunKey(
        benchmark=benchmark, config=cfg,
        seed=int(params.get("seed", 1)),
        instructions=int(params.get("instructions",
                                    DEFAULT_INSTRUCTIONS)),
        warmup=int(params.get("warmup", DEFAULT_WARMUP)),
        scale=scale)


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
_job_ids = itertools.count(1)


@dataclass
class Job:
    """One accepted spec inside the service."""

    spec: JobSpec
    priority: int = DEFAULT_PRIORITY
    id: str = field(default="")
    digest: str = field(default="")
    status: JobStatus = JobStatus.PENDING
    #: Where the payload came from: "run" (executed), "store"
    #: (content-addressed hit) or "dedup" (attached to an identical
    #: in-flight job).
    source: str = "run"
    attempts: int = 0
    error: Optional[str] = None
    payload: Optional[Dict] = None
    events: EventStream = field(default_factory=EventStream)
    #: Submissions that were folded into this job (identical digest).
    dedup_hits: int = 0
    #: Child jobs this sweep submitted (empty for non-sweeps).  Cancel
    #: scopes to exactly these -- never to unrelated in-flight jobs.
    children: List["Job"] = field(default_factory=list)
    #: Latest forwarded ``job-progress`` row (None until the first
    #: interval arrives; the full history is on ``events``).
    progress: Optional[Dict] = None
    #: Monotonic timestamps for the wait/execute latency histograms.
    created_mono: float = field(default_factory=time.monotonic)
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None

    def __post_init__(self):
        if not self.digest:
            self.digest = self.spec.digest
        if not self.id:
            self.id = f"job-{next(_job_ids):06d}-{self.digest[:8]}"

    def transition(self, status: JobStatus, **extra) -> None:
        self.status = status
        self.events.emit(kind="status", status=status.value,
                         job=self.id, **extra)
        if status.terminal:
            self.events.close()

    def describe(self) -> Dict:
        """The JSON status document (``GET /jobs/<id>``)."""
        doc = {
            "id": self.id, "kind": self.spec.kind,
            "digest": self.digest, "status": self.status.value,
            "priority": self.priority, "source": self.source,
            "attempts": self.attempts, "dedup_hits": self.dedup_hits,
            "events": len(self.events),
            "events_dropped": self.events.dropped,
        }
        if self.progress is not None:
            doc["progress"] = dict(self.progress)
        if self.error is not None:
            doc["error"] = self.error
        return doc

    def summary(self) -> RunSummary:
        """The payload as a :class:`RunSummary` (run/scenario jobs)."""
        if self.payload is None:
            raise ValueError(f"{self.id}: no payload (status "
                             f"{self.status.value})")
        data = self.payload.get("summary", self.payload)
        return RunSummary.from_dict(data)
