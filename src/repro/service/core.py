"""The asyncio sweep service: queue, dedupe, workers, sweeps.

One :class:`SweepService` owns a bounded priority queue of
:class:`~repro.service.jobs.Job` and a pool of worker processes.  The
interesting properties, all pinned by ``tests/test_service.py``:

* **Dedupe, three horizons.**  A submitted spec whose digest is already
  on disk completes instantly as a *store hit*; one that matches an
  in-flight job attaches to that job (*dedup* -- concurrent identical
  submissions execute the simulation exactly once and fan the result
  out); otherwise it queues and executes.
* **Back-pressure.**  The queue is bounded: ``submit(..., wait=True)``
  (the in-process client) suspends the submitter until a slot frees;
  ``wait=False`` (the HTTP server) raises :class:`ServiceSaturated`,
  which surfaces as ``503 Retry-After``.
* **Priorities.**  Lower numbers run first; ties resolve in submission
  order (a deterministic total order, relied on by tests).
* **Worker loss is not job loss.**  A job whose worker process dies
  (``BrokenExecutor``) is re-queued up to ``max_attempts``; the pool is
  rebuilt lazily.
* **Resumable sweeps.**  A ``sweep`` job expands into child run specs;
  children whose digests are already stored are skipped, so
  resubmitting a partially-completed sweep only executes the remainder.

Execution is ``execute_spec`` -- a module-level, picklable function --
either inline (``workers=0``: synchronous, deterministic, what the
tests drive) or via ``ProcessPoolExecutor``.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import os
import threading
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.experiments.parallel import ParallelRunner, RunSummary
from repro.obs.log import get_logger
from repro.obs.sampler import DEFAULT_SAMPLE_INTERVAL
from repro.obs.telemetry import TelemetryRegistry
from repro.service.jobs import (DEFAULT_PRIORITY, Job, JobError, JobSpec,
                                JobStatus)
from repro.service.store import JobStore

#: Default queue bound; small enough that a runaway sweep generator
#: feels back-pressure quickly, large enough to keep a pool busy.
DEFAULT_QUEUE_SIZE = 256

#: Terminal jobs kept in memory beyond this count are pruned (oldest
#: first).  Their payloads stay addressable via the on-disk store by
#: digest; only the in-memory Job (status doc + event history) goes.
DEFAULT_RETENTION = 1024

#: Job kinds whose workers forward live ``job-progress`` rows.  Only
#: ``run`` for now: scenarios/figures/benches drive their own batching
#: and would need per-component budgets to report a meaningful pct.
PROGRESS_KINDS = ("run",)


class ServiceSaturated(RuntimeError):
    """Bounded queue is full and the caller declined to wait."""


class _WorkerLost(RuntimeError):
    """Internal: the worker process executing a job died."""


# ----------------------------------------------------------------------
# Spec execution (module-level: must pickle into worker processes)
# ----------------------------------------------------------------------
def execute_spec(spec_dict: Dict, progress: Optional[Callable] = None,
                 progress_interval: Optional[int] = None) -> Dict:
    """Execute one job spec; returns its JSON payload.

    Run/scenario payloads are bare
    :class:`~repro.experiments.parallel.RunSummary` dicts -- the exact
    document :class:`~repro.experiments.parallel.ResultCache` memoises,
    so service store entries and runner cache entries are
    interchangeable.

    ``progress`` is an optional per-interval row sink (see
    :mod:`repro.obs.forward`); only ``run`` specs forward (the other
    kinds ignore it).  Forwarding is observational -- the payload is
    bit-identical with or without it.
    """
    from repro import api
    from repro.experiments.runner import run_benchmark
    from repro.service.jobs import run_config, scenario_base_config

    spec = JobSpec.from_dict(spec_dict)
    p = spec.to_dict()
    kind = spec.kind
    if kind == "run":
        key = spec.run_key()
        forwarder = None
        if progress is not None and progress_interval:
            from repro.obs.forward import ProgressForwarder
            forwarder = ProgressForwarder(
                progress, total_instructions=key.instructions,
                interval=progress_interval)
        run = run_benchmark(key.benchmark, config=key.config,
                            instructions=key.instructions,
                            warmup=key.warmup, scale=key.scale,
                            seed=key.seed, progress=forwarder)
        return RunSummary.from_run(run, seed=key.seed).to_dict()
    if kind == "scenario":
        from repro.scenarios import run_scenario
        scale = p.get("scale")
        base = None
        if p.get("backend"):
            from repro.scenarios import load_scenario
            doc = load_scenario(p["scenario"])
            base = scenario_base_config(
                p, int(scale if scale is not None else doc.scale))
        result = run_scenario(
            p["scenario"], instructions=p.get("instructions"),
            warmup=p.get("warmup"), scale=scale, seed=p.get("seed"),
            config=base, runner=ParallelRunner(jobs=1))
        return result.summary.to_dict()
    if kind == "figure":
        kwargs = {k: p[k] for k in ("instructions", "warmup")
                  if k in p}
        if p.get("benchmarks"):
            kwargs["benchmarks"] = list(p["benchmarks"])
        result = api.figure(p["figure"], **kwargs)
        return {"kind": "figure", "figure": p["figure"],
                "result": result.to_dict()}
    if kind == "bench":
        from repro.bench import BenchCase, WORKLOAD_MATRIX
        if p.get("benchmarks"):
            matrix = tuple(
                BenchCase(b, instructions=p.get("instructions", 20_000),
                          warmup=p.get("warmup", 4_000))
                for b in p["benchmarks"])
        else:
            matrix = WORKLOAD_MATRIX
        result = api.bench(matrix=matrix, repeats=p.get("repeats", 1),
                           backend=p.get("backend"))
        return {"kind": "bench", "document": result.document}
    if kind == "trace":
        scale = int(p.get("scale", api.DEFAULT_SCALE))
        kwargs = {k: p[k] for k in ("instructions", "warmup", "seed")
                  if k in p}
        doc = api.trace(p["benchmark"], sample=p.get("sample", 1),
                        config=run_config(p, scale), scale=scale,
                        **kwargs)
        return {"kind": "trace", "benchmark": p["benchmark"],
                "document": doc}
    raise JobError(f"unknown job kind {kind!r}")


#: The service checks this attribute before passing progress kwargs, so
#: injected test stubs keep their one-argument signature.
execute_spec.supports_progress = True


def _pool_execute(spec_dict: Dict, queue, job_id: str,
                  interval: int) -> Dict:
    """Worker-process entry point with progress forwarding.

    Module-level (must pickle); ``queue`` is a ``multiprocessing``
    manager-queue proxy carrying ``(job_id, row)`` tuples back to the
    service's drain thread.
    """
    def sink(row):
        queue.put((job_id, row))
    return execute_spec(spec_dict, progress=sink,
                        progress_interval=interval)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
#: Legacy counter name -> telemetry series backing it.
LEGACY_COUNTERS = {
    "submitted": "repro_jobs_submitted_total",
    "executed": "repro_jobs_executed_total",
    "store_hits": "repro_store_hits_total",
    "dedup_hits": "repro_dedup_hits_total",
    "requeues": "repro_requeues_total",
    "failures": "repro_jobs_failed_total",
    "cancelled": "repro_jobs_cancelled_total",
    "rejected": "repro_jobs_rejected_total",
}


class ServiceMetrics:
    """Legacy read view over the telemetry registry's job counters.

    PR 8 shipped these as plain dataclass attribute bumps; the counters
    now live in :class:`~repro.obs.telemetry.TelemetryRegistry` (one
    source of truth for ``/metrics``, ``/health`` and ``status()``) and
    this view keeps the original surface -- ``service.metrics.executed``
    and ``metrics.to_dict()`` -- reading through to them.
    """

    def __init__(self, registry: TelemetryRegistry):
        self._registry = registry

    def __getattr__(self, name: str) -> int:
        try:
            series = LEGACY_COUNTERS[name]
        except KeyError:
            raise AttributeError(name) from None
        return int(self._registry.counter(series).value)

    def to_dict(self) -> Dict:
        return {name: getattr(self, name) for name in LEGACY_COUNTERS}


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class SweepService:
    """Asyncio job-queue service over a content-addressed store.

    ``workers=0`` executes inline on the event loop (deterministic --
    the test mode and the in-process default); ``workers=N`` fans out
    over a ``ProcessPoolExecutor`` that is rebuilt on worker loss.
    ``execute`` injects the spec executor (tests substitute stubs that
    fail deterministically).
    """

    def __init__(self, store: Optional[JobStore] = None,
                 workers: int = 0,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 max_attempts: int = 2,
                 retention: int = DEFAULT_RETENTION,
                 execute: Optional[Callable[[Dict], Dict]] = None,
                 progress_interval: Optional[int]
                 = DEFAULT_SAMPLE_INTERVAL):
        if queue_size <= 0:
            raise ValueError("queue_size must be positive")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if retention <= 0:
            raise ValueError("retention must be positive")
        if progress_interval is not None and progress_interval <= 0:
            raise ValueError("progress_interval must be positive or None")
        self.store = store if store is not None else JobStore()
        self.workers = max(0, int(workers))
        self.queue_size = queue_size
        self.max_attempts = max_attempts
        self.retention = retention
        self.progress_interval = progress_interval
        self._execute = execute or execute_spec
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        self._terminal: Deque[str] = deque()
        self._queue: Optional[asyncio.PriorityQueue] = None
        self._seq = itertools.count()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._tasks: List[asyncio.Task] = []
        self._sweeps: List[asyncio.Task] = []
        self._done_events: Dict[str, asyncio.Event] = {}
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_mono = time.monotonic()
        self._log = get_logger("service")
        # Progress drain plumbing for pool mode (lazy: a Manager is a
        # whole extra process, only spawned once a worker forwards).
        self._progress_manager = None
        self._progress_queue = None
        self._progress_thread: Optional[threading.Thread] = None
        self._init_telemetry()
        self.metrics = ServiceMetrics(self.telemetry)

    def _init_telemetry(self) -> None:
        """Register every series this service exposes (``/metrics``)."""
        reg = self.telemetry = TelemetryRegistry()
        help_by_name = {
            "repro_jobs_submitted_total": "Job submissions accepted",
            "repro_jobs_executed_total": "Jobs executed to completion",
            "repro_store_hits_total":
                "Submissions satisfied by the content-addressed store",
            "repro_dedup_hits_total":
                "Submissions attached to an identical in-flight job",
            "repro_requeues_total": "Worker-loss requeues",
            "repro_jobs_failed_total": "Jobs that ended FAILED",
            "repro_jobs_cancelled_total": "Jobs cancelled",
            "repro_jobs_rejected_total":
                "Submissions rejected by back-pressure (503 path)",
        }
        for series, help in help_by_name.items():
            reg.counter(series, help=help)
        self._evictions = reg.counter(
            "repro_retention_evictions_total",
            help="Terminal jobs pruned past the retention bound")
        self._progress_events = reg.counter(
            "repro_progress_events_total",
            help="job-progress rows forwarded from workers")
        self._dropped_events = reg.counter(
            "repro_events_dropped_total",
            help="Events discarded from bounded per-job backlogs")
        reg.gauge("repro_queue_depth", help="Jobs waiting in the queue",
                  fn=lambda: self._queue.qsize() if self._queue else 0)
        reg.gauge("repro_inflight_jobs",
                  help="Non-terminal jobs (queued + running)",
                  fn=lambda: len(self._inflight))
        reg.gauge("repro_jobs_tracked",
                  help="Jobs held in memory (bounded by retention)",
                  fn=lambda: len(self._jobs))
        reg.gauge("repro_uptime_seconds",
                  help="Seconds since this service instance started",
                  fn=lambda: time.monotonic() - self._started_mono)
        for status in JobStatus:
            reg.gauge("repro_jobs_state", help="Jobs by current status",
                      labels={"state": status.value},
                      fn=functools.partial(self._count_state, status))
        self._wait_hist = reg.histogram(
            "repro_job_wait_seconds",
            help="Queue wait latency (submission to first RUNNING)")
        self._run_hist = reg.histogram(
            "repro_job_run_seconds",
            help="Execution latency (first RUNNING to terminal)")
        # Batch-backend engagement: fed from the BatchStats dict riding
        # run payloads (RunSummary.batch).  Every fallback reason is
        # pre-registered so /metrics exposes the full label set from the
        # first scrape, zeros included.
        from repro.core.fallback import COHORT_BUCKETS, FallbackReason
        self._batch_windows = reg.counter(
            "repro_batch_windows_total",
            help="Windows drained on the vectorized batch path")
        self._batch_fallbacks = {
            reason.value: reg.counter(
                "repro_batch_fallback_total",
                help="Runs refused by the batch path, by reason",
                labels={"reason": reason.value})
            for reason in FallbackReason}
        self._cohort_hist = reg.histogram(
            "repro_batch_miss_cohort_size",
            help="Scalar-excursion cohort size per drained window",
            buckets=[float(b) for b in COHORT_BUCKETS])

    def _count_state(self, status: JobStatus) -> int:
        return sum(1 for job in self._jobs.values()
                   if job.status is status)

    def _count(self, name: str, n: int = 1) -> None:
        """Bump one of the legacy-named job counters."""
        self.telemetry.counter(LEGACY_COUNTERS[name]).inc(n)

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "SweepService":
        """Bind to the running loop and spawn the drain tasks."""
        if self._queue is not None:
            return self
        self.loop = asyncio.get_running_loop()
        self._queue = asyncio.PriorityQueue(maxsize=self.queue_size)
        for _ in range(max(1, self.workers)):
            self._tasks.append(asyncio.ensure_future(self._drain()))
        return self

    async def close(self) -> None:
        """Cancel drain tasks and shut the pool down."""
        for task in self._tasks + self._sweeps:
            task.cancel()
        for task in self._tasks + self._sweeps:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        self._sweeps.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._progress_queue is not None:
            try:
                self._progress_queue.put(None)  # stop the drain thread
            except (EOFError, OSError, BrokenPipeError):
                pass
            if self._progress_thread is not None:
                self._progress_thread.join(timeout=5)
            self._progress_manager.shutdown()
            self._progress_manager = None
            self._progress_queue = None
            self._progress_thread = None
        self._queue = None
        self.loop = None

    @property
    def started(self) -> bool:
        return self._queue is not None

    # -- submission ------------------------------------------------------
    async def submit(self, kind: str = "run", *,
                     priority: int = DEFAULT_PRIORITY,
                     wait: bool = True, **params) -> Job:
        """Admit one job; returns the (possibly pre-existing) job.

        Dedupe order: store hit > in-flight attach > queue.  With
        ``wait=False`` a full queue raises :class:`ServiceSaturated`
        instead of suspending.
        """
        spec = JobSpec.make(kind, **params)
        return await self.submit_spec(spec, priority=priority, wait=wait)

    async def submit_spec(self, spec: JobSpec, *,
                          priority: int = DEFAULT_PRIORITY,
                          wait: bool = True) -> Job:
        if isinstance(priority, bool) or not isinstance(priority, int):
            # Rejected before the job exists: a non-int would poison the
            # priority heap's tuple ordering for every later submission.
            raise JobError(
                f"priority must be an integer, got {priority!r}")
        if self._queue is None:
            await self.start()
        self._count("submitted")
        digest = spec.digest

        existing = self._inflight.get(digest)
        if existing is not None:
            existing.dedup_hits += 1
            self._count("dedup_hits")
            existing.events.emit(kind="dedup", job=existing.id)
            self._log.emit("job-dedup", job=existing.id, digest=digest,
                           kind=spec.kind)
            return existing

        stored = self.store.get_payload(digest)
        if stored is not None:
            job = Job(spec=spec, priority=priority, digest=digest)
            job.source = "store"
            job.payload = stored
            self._register(job)
            self._count("store_hits")
            self._log.emit("job-store-hit", job=job.id, digest=digest,
                           kind=spec.kind)
            job.transition(JobStatus.DONE, source="store")
            self._finish(job)
            return job

        job = Job(spec=spec, priority=priority, digest=digest)
        self._register(job)
        self._inflight[digest] = job
        job.events.emit(kind="status", status="pending", job=job.id)
        self._log.emit("job-submitted", job=job.id, digest=digest,
                       kind=spec.kind, priority=priority)
        if spec.kind == "sweep":
            self._sweeps.append(
                asyncio.ensure_future(self._run_sweep(job)))
            return job
        await self._enqueue(job, wait=wait)
        return job

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._done_events[job.id] = asyncio.Event()
        # Backlog overflow on any job's stream rolls up into one
        # service-wide counter (satellite: bounded EventStream).
        job.events.on_drop = self._dropped_events.inc

    async def _enqueue(self, job: Job, *, wait: bool) -> None:
        item = (job.priority, next(self._seq), job)
        try:
            if wait:
                await self._queue.put(item)
            else:
                self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self._drop(job, JobStatus.CANCELLED,
                       error="queue full (back-pressure)",
                       metric="rejected")
            raise ServiceSaturated(
                f"queue full ({self.queue_size} jobs); retry later"
            ) from None
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # Any other enqueue failure must not leave a pending zombie
            # registered in _inflight that dedupes future submissions.
            self._drop(job, JobStatus.FAILED,
                       error=f"enqueue failed: {exc}", metric="failures")
            raise

    # -- queries ---------------------------------------------------------
    def get_job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def describe(self) -> Dict:
        """Service status document (``GET /health``).

        Cumulative counters under ``metrics``; point-in-time load under
        ``gauges`` (queue depth, in-flight, per-state counts, uptime,
        evictions) so the document reflects *current* pressure, not just
        history.  The full telemetry snapshot rides along under
        ``telemetry`` (schema ``repro.obs/telemetry-v1``).
        """
        return {
            "workers": self.workers,
            "queue_size": self.queue_size,
            "queued": self._queue.qsize() if self._queue else 0,
            "jobs": len(self._jobs),
            "inflight": len(self._inflight),
            "retention": self.retention,
            "progress_interval": self.progress_interval,
            "metrics": self.metrics.to_dict(),
            "gauges": {
                "queue_depth": self._queue.qsize() if self._queue else 0,
                "inflight": len(self._inflight),
                "uptime_seconds": round(
                    time.monotonic() - self._started_mono, 3),
                "retention_evictions": int(self._evictions.value),
                "events_dropped": int(self._dropped_events.value),
                "progress_events": int(self._progress_events.value),
                "states": {status.value: self._count_state(status)
                           for status in JobStatus},
            },
            "telemetry": self.telemetry.snapshot(),
            "store": {"dir": str(self.store.dir),
                      "hits": self.store.hits,
                      "stores": self.store.stores},
        }

    def render_metrics(self) -> str:
        """Prometheus text exposition (``GET /metrics``)."""
        return self.telemetry.render_prometheus()

    async def wait(self, job: Job,
                   timeout: Optional[float] = None) -> Job:
        """Suspend until the job reaches a terminal status."""
        event = self._done_events.get(job.id)
        if event is None or job.status.terminal:
            return job
        await asyncio.wait_for(event.wait(), timeout)
        return job

    def cancel(self, job: Job) -> bool:
        """Cancel a pending job (running jobs finish; sweeps cancel
        their pending children)."""
        if job.status is not JobStatus.PENDING \
                and not (job.spec.kind == "sweep"
                         and job.status is JobStatus.RUNNING):
            return False
        if job.spec.kind == "sweep":
            # Only this sweep's own children -- a dedup-shared child
            # (another submitter attached to it) keeps running.
            for child in list(job.children):
                if child.status is JobStatus.PENDING \
                        and child.dedup_hits == 0:
                    self._drop(child, JobStatus.CANCELLED,
                               error="sweep cancelled")
        self._drop(job, JobStatus.CANCELLED)
        return True

    def _drop(self, job: Job, status: JobStatus,
              error: Optional[str] = None, *,
              metric: str = "cancelled") -> None:
        job.error = error
        self._count(metric)
        self._log.emit("job-dropped", job=job.id, digest=job.digest,
                       status=status.value, metric=metric, error=error)
        job.transition(status, **({"error": error} if error else {}))
        self._finish(job)

    def _finish(self, job: Job) -> None:
        if self._inflight.get(job.digest) is job:
            del self._inflight[job.digest]
        if job.started_mono is not None and job.finished_mono is None:
            job.finished_mono = time.monotonic()
            self._run_hist.observe(job.finished_mono - job.started_mono)
        event = self._done_events.get(job.id)
        if event is not None and not event.is_set():
            event.set()
            self._terminal.append(job.id)
            while len(self._terminal) > self.retention:
                old = self._terminal.popleft()
                self._jobs.pop(old, None)
                self._done_events.pop(old, None)
                self._evictions.inc()
                self._log.emit("job-evicted", job=old)

    # -- execution -------------------------------------------------------
    async def _drain(self) -> None:
        while True:
            _, _, job = await self._queue.get()
            try:
                if job.status is not JobStatus.PENDING:
                    continue  # cancelled while queued
                await self._run_one(job)
            finally:
                self._queue.task_done()

    async def _run_one(self, job: Job) -> None:
        while True:
            job.attempts += 1
            if job.started_mono is None:
                job.started_mono = time.monotonic()
                self._wait_hist.observe(
                    job.started_mono - job.created_mono)
            job.transition(JobStatus.RUNNING, attempt=job.attempts)
            self._log.emit("job-running", job=job.id, digest=job.digest,
                           attempt=job.attempts)
            try:
                payload = await self._execute_job(job)
            except _WorkerLost as exc:
                if job.attempts < self.max_attempts:
                    self._count("requeues")
                    job.status = JobStatus.PENDING
                    job.events.emit(kind="requeue", job=job.id,
                                    attempt=job.attempts, error=str(exc))
                    self._log.emit("job-requeued", job=job.id,
                                   attempt=job.attempts, error=str(exc))
                    try:
                        # Never a blocking put: this coroutine IS the
                        # consumer that would have to free the slot, so
                        # awaiting a full queue here deadlocks.
                        self._queue.put_nowait(
                            (job.priority, next(self._seq), job))
                    except asyncio.QueueFull:
                        continue  # retry inline instead of requeueing
                    return
                self._count("failures")
                job.error = f"worker lost x{job.attempts}: {exc}"
                self._log.emit("job-failed", job=job.id, error=job.error)
                job.transition(JobStatus.FAILED, error=job.error)
                self._finish(job)
                return
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # job error: terminal, not retried
                self._count("failures")
                job.error = f"{type(exc).__name__}: {exc}"
                self._log.emit("job-failed", job=job.id, error=job.error)
                job.transition(JobStatus.FAILED, error=job.error)
                self._finish(job)
                return
            else:
                self.store.put_payload(job.digest, payload)
                job.payload = payload
                self._count("executed")
                self._record_batch_telemetry(payload)
                self._emit_final_progress(job, payload)
                self._log.emit("job-done", job=job.id, digest=job.digest)
                job.transition(JobStatus.DONE, source="run")
                self._finish(job)
                return

    async def _execute_job(self, job: Job) -> Dict:
        spec_dict = job.spec.to_dict()
        forward = self._progress_enabled(job)
        if self.workers <= 0:
            # Inline mode: synchronous and deterministic.  Worker-loss
            # simulation (tests) still surfaces as requeue-able.
            try:
                if forward:
                    return self._execute(
                        spec_dict,
                        progress=functools.partial(
                            self._on_progress_row, job.id),
                        progress_interval=self.progress_interval)
                return self._execute(spec_dict)
            except BrokenExecutor as exc:
                raise _WorkerLost(str(exc) or "broken executor") from exc
        loop = asyncio.get_running_loop()
        pool = self._get_pool()
        if forward and self._execute is execute_spec:
            # A manager-queue proxy pickles into the worker; a bare
            # callback would not.  The drain thread re-emits rows on the
            # job's event stream from this side of the boundary.
            call = functools.partial(
                _pool_execute, spec_dict, self._get_progress_queue(),
                job.id, self.progress_interval)
        else:
            call = functools.partial(self._execute, spec_dict)
        try:
            return await loop.run_in_executor(pool, call)
        except BrokenExecutor as exc:
            # The process died (OOM-killed, signalled, ...): poison the
            # pool so the next job rebuilds it, and requeue this one.
            self._pool = None
            pool.shutdown(wait=False, cancel_futures=True)
            raise _WorkerLost(str(exc) or "worker process died") from exc

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=max(1, self.workers))
        return self._pool

    # -- progress forwarding ---------------------------------------------
    def _progress_enabled(self, job: Job) -> bool:
        """Forward live rows for this job?  Requires an executor that
        understands the progress kwargs (injected test stubs keep their
        one-argument signature and are never handed them)."""
        return (self.progress_interval is not None
                and job.spec.kind in PROGRESS_KINDS
                and getattr(self._execute, "supports_progress", False))

    def _on_progress_row(self, job_id: str, row: Dict) -> None:
        """Re-emit one worker interval row as a ``job-progress`` event.

        Runs on the loop thread (inline mode) or the drain thread (pool
        mode) -- EventStream and the counters are thread-safe.
        """
        job = self._jobs.get(job_id)
        if job is None or job.events.closed:
            return
        job.progress = row
        self._progress_events.inc()
        job.events.emit(kind="job-progress", job=job_id, **row)
        self._log.emit("job-progress", job=job_id, **row)

    def _record_batch_telemetry(self, payload) -> None:
        """Fold a run payload's ``batch`` dict into the batch series.

        Scalar-backend payloads carry an empty dict and non-run payloads
        none at all; both are no-ops, so the series move exactly when a
        ``backend="numpy"`` run completes.  Unknown fallback reasons
        (from a payload recorded by a newer code version) are skipped
        rather than crashing the job loop.
        """
        if not isinstance(payload, dict):
            return
        batch = payload.get("batch")
        if not isinstance(batch, dict) or not batch:
            return
        windows = int(batch.get("windows") or 0)
        if windows:
            self._batch_windows.inc(windows)
        for reason, n in (batch.get("fallbacks") or {}).items():
            counter = self._batch_fallbacks.get(reason)
            if counter is not None and n:
                counter.inc(int(n))
        sizes = batch.get("cohort_sizes")
        if isinstance(sizes, list) \
                and len(sizes) == len(self._cohort_hist.buckets) + 1:
            self._cohort_hist.observe_bucketed(
                [int(n) for n in sizes],
                sum_=float(batch.get("scalar_excursions") or 0))

    def _emit_final_progress(self, job: Job, payload) -> None:
        """One authoritative ``final`` row from the stored payload.

        Worker-forwarded rows race the DONE transition (pool mode drains
        them on a thread); the final row is emitted service-side from
        the payload itself, so consumers always see a closing row whose
        counters match the stored RunSummary exactly.
        """
        if not self._progress_enabled(job):
            return
        if not isinstance(payload, dict) or "cycles" not in payload:
            return
        cycles = payload.get("cycles") or 0
        instructions = payload.get("instructions") or 0
        row = {
            "final": True,
            "pct": 1.0,
            "instructions": instructions,
            "cycle": cycles,
            "ipc": payload.get("metrics", {}).get(
                "ipc", instructions / cycles if cycles else 0.0),
            "walk_cycles": payload.get("walk_cycles_total", 0),
        }
        self._on_progress_row(job.id, row)

    def _get_progress_queue(self):
        """The manager queue pool workers forward rows into (lazy)."""
        if self._progress_queue is None:
            import multiprocessing
            self._progress_manager = multiprocessing.Manager()
            self._progress_queue = self._progress_manager.Queue()
            self._progress_thread = threading.Thread(
                target=self._drain_progress, name="progress-drain",
                daemon=True)
            self._progress_thread.start()
        return self._progress_queue

    def _drain_progress(self) -> None:
        queue = self._progress_queue
        while True:
            try:
                item = queue.get()
            except (EOFError, OSError):
                return  # manager shut down
            if item is None:
                return
            try:
                job_id, row = item
                self._on_progress_row(job_id, row)
            except Exception:
                continue  # a malformed row must not kill the drain

    # -- sweeps ----------------------------------------------------------
    async def _run_sweep(self, job: Job) -> None:
        if job.status.terminal:
            return  # cancelled before expansion got to run
        try:
            children = job.spec.sweep_children()
        except (JobError, TypeError, ValueError) as exc:
            self._count("failures")
            job.error = f"bad sweep: {exc}"
            job.transition(JobStatus.FAILED, error=job.error)
            self._finish(job)
            return
        job.transition(JobStatus.RUNNING, total=len(children))
        skipped: List[str] = []
        waiting: List[Job] = []
        for spec in children:
            digest = spec.digest
            if job.status is JobStatus.CANCELLED:
                return
            if self.store.contains(digest):
                # Already completed (possibly by an earlier, partial
                # attempt at this sweep): resume by skipping it.
                skipped.append(digest)
                self._count("store_hits")
                job.events.emit(kind="sweep-skip", digest=digest,
                                source="store")
                continue
            child = await self.submit_spec(spec, priority=job.priority)
            job.children.append(child)
            waiting.append(child)
            job.events.emit(kind="sweep-child", digest=digest,
                            child=child.id)
        failed: List[str] = []
        completed: List[str] = list(skipped)
        for child in waiting:
            await self.wait(child)
            if child.status is JobStatus.DONE:
                completed.append(child.digest)
            else:
                failed.append(child.digest)
            job.events.emit(kind="sweep-progress",
                            done=len(completed), failed=len(failed),
                            total=len(children))
        if job.status is JobStatus.CANCELLED:
            return
        payload = {"kind": "sweep", "total": len(children),
                   "skipped": skipped, "completed": completed,
                   "failed": failed}
        job.payload = payload
        if failed:
            self._count("failures")
            job.error = f"{len(failed)}/{len(children)} children failed"
            job.transition(JobStatus.FAILED, error=job.error)
        else:
            # Only a fully-completed sweep is stored: a partial one must
            # re-expand (and skip per-child) on resubmission.
            self.store.put_payload(job.digest, payload)
            self._count("executed")
            job.transition(JobStatus.DONE, source="run")
        self._finish(job)


# ----------------------------------------------------------------------
# In-process client handle
# ----------------------------------------------------------------------
class JobHandle:
    """What :func:`repro.api.submit` returns: a thin async view of one
    job inside an in-process :class:`SweepService`."""

    def __init__(self, service: SweepService, job: Job):
        self._service = service
        self._job = job

    # -- identity --------------------------------------------------------
    @property
    def id(self) -> str:
        return self._job.id

    @property
    def digest(self) -> str:
        return self._job.digest

    @property
    def status(self) -> JobStatus:
        return self._job.status

    @property
    def source(self) -> str:
        return self._job.source

    def describe(self) -> Dict:
        return self._job.describe()

    def events(self, start: int = 0) -> List[Dict]:
        return self._job.events.snapshot(start)

    @property
    def progress(self) -> Optional[Dict]:
        """Latest forwarded ``job-progress`` row (None before the
        first interval / when forwarding is off)."""
        return self._job.progress

    # -- outcome ---------------------------------------------------------
    async def wait(self, timeout: Optional[float] = None) -> "JobHandle":
        await self._service.wait(self._job, timeout)
        return self

    async def watch(self, on_event: Optional[Callable[[Dict], None]] = None,
                    on_progress: Optional[Callable[[Dict], None]] = None,
                    tick: float = 0.05) -> "JobHandle":
        """Follow the job to completion, streaming events to callbacks.

        ``on_event`` sees every event (lifecycle + progress);
        ``on_progress`` sees only ``job-progress`` rows -- the live
        IPC/MPKI/% feed a dashboard wants.  Returns once the job is
        terminal and the backlog is drained; callback exceptions
        propagate to the caller.
        """
        index = 0
        while True:
            for event in self._job.events.snapshot(index):
                index = event["seq"] + 1
                if on_event is not None:
                    on_event(event)
                if on_progress is not None \
                        and event.get("kind") == "job-progress":
                    on_progress(event)
            if self._job.status.terminal \
                    and len(self._job.events) <= index:
                return self
            try:
                await self._service.wait(self._job, timeout=tick)
            except asyncio.TimeoutError:
                pass

    def result(self) -> Dict:
        """The payload; raises if the job is not DONE."""
        job = self._job
        if job.status is not JobStatus.DONE:
            raise RuntimeError(
                f"{job.id} is {job.status.value}"
                + (f": {job.error}" if job.error else ""))
        return job.payload

    def summary(self) -> RunSummary:
        """The payload as a RunSummary (run/scenario jobs)."""
        self.result()
        return self._job.summary()

    async def cancel(self) -> bool:
        return self._service.cancel(self._job)
