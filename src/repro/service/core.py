"""The asyncio sweep service: queue, dedupe, workers, sweeps.

One :class:`SweepService` owns a bounded priority queue of
:class:`~repro.service.jobs.Job` and a pool of worker processes.  The
interesting properties, all pinned by ``tests/test_service.py``:

* **Dedupe, three horizons.**  A submitted spec whose digest is already
  on disk completes instantly as a *store hit*; one that matches an
  in-flight job attaches to that job (*dedup* -- concurrent identical
  submissions execute the simulation exactly once and fan the result
  out); otherwise it queues and executes.
* **Back-pressure.**  The queue is bounded: ``submit(..., wait=True)``
  (the in-process client) suspends the submitter until a slot frees;
  ``wait=False`` (the HTTP server) raises :class:`ServiceSaturated`,
  which surfaces as ``503 Retry-After``.
* **Priorities.**  Lower numbers run first; ties resolve in submission
  order (a deterministic total order, relied on by tests).
* **Worker loss is not job loss.**  A job whose worker process dies
  (``BrokenExecutor``) is re-queued up to ``max_attempts``; the pool is
  rebuilt lazily.
* **Resumable sweeps.**  A ``sweep`` job expands into child run specs;
  children whose digests are already stored are skipped, so
  resubmitting a partially-completed sweep only executes the remainder.

Execution is ``execute_spec`` -- a module-level, picklable function --
either inline (``workers=0``: synchronous, deterministic, what the
tests drive) or via ``ProcessPoolExecutor``.
"""

from __future__ import annotations

import asyncio
import itertools
import os
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.experiments.parallel import ParallelRunner, RunSummary
from repro.service.jobs import (DEFAULT_PRIORITY, Job, JobError, JobSpec,
                                JobStatus)
from repro.service.store import JobStore

#: Default queue bound; small enough that a runaway sweep generator
#: feels back-pressure quickly, large enough to keep a pool busy.
DEFAULT_QUEUE_SIZE = 256

#: Terminal jobs kept in memory beyond this count are pruned (oldest
#: first).  Their payloads stay addressable via the on-disk store by
#: digest; only the in-memory Job (status doc + event history) goes.
DEFAULT_RETENTION = 1024


class ServiceSaturated(RuntimeError):
    """Bounded queue is full and the caller declined to wait."""


class _WorkerLost(RuntimeError):
    """Internal: the worker process executing a job died."""


# ----------------------------------------------------------------------
# Spec execution (module-level: must pickle into worker processes)
# ----------------------------------------------------------------------
def execute_spec(spec_dict: Dict) -> Dict:
    """Execute one job spec; returns its JSON payload.

    Run/scenario payloads are bare
    :class:`~repro.experiments.parallel.RunSummary` dicts -- the exact
    document :class:`~repro.experiments.parallel.ResultCache` memoises,
    so service store entries and runner cache entries are
    interchangeable.
    """
    from repro import api
    from repro.experiments.runner import run_benchmark
    from repro.service.jobs import run_config, scenario_base_config

    spec = JobSpec.from_dict(spec_dict)
    p = spec.to_dict()
    kind = spec.kind
    if kind == "run":
        key = spec.run_key()
        run = run_benchmark(key.benchmark, config=key.config,
                            instructions=key.instructions,
                            warmup=key.warmup, scale=key.scale,
                            seed=key.seed)
        return RunSummary.from_run(run, seed=key.seed).to_dict()
    if kind == "scenario":
        from repro.scenarios import run_scenario
        scale = p.get("scale")
        base = None
        if p.get("backend"):
            from repro.scenarios import load_scenario
            doc = load_scenario(p["scenario"])
            base = scenario_base_config(
                p, int(scale if scale is not None else doc.scale))
        result = run_scenario(
            p["scenario"], instructions=p.get("instructions"),
            warmup=p.get("warmup"), scale=scale, seed=p.get("seed"),
            config=base, runner=ParallelRunner(jobs=1))
        return result.summary.to_dict()
    if kind == "figure":
        kwargs = {k: p[k] for k in ("instructions", "warmup")
                  if k in p}
        if p.get("benchmarks"):
            kwargs["benchmarks"] = list(p["benchmarks"])
        result = api.figure(p["figure"], **kwargs)
        return {"kind": "figure", "figure": p["figure"],
                "result": result.to_dict()}
    if kind == "bench":
        from repro.bench import BenchCase, WORKLOAD_MATRIX
        if p.get("benchmarks"):
            matrix = tuple(
                BenchCase(b, instructions=p.get("instructions", 20_000),
                          warmup=p.get("warmup", 4_000))
                for b in p["benchmarks"])
        else:
            matrix = WORKLOAD_MATRIX
        result = api.bench(matrix=matrix, repeats=p.get("repeats", 1))
        return {"kind": "bench", "document": result.document}
    if kind == "trace":
        scale = int(p.get("scale", api.DEFAULT_SCALE))
        kwargs = {k: p[k] for k in ("instructions", "warmup", "seed")
                  if k in p}
        doc = api.trace(p["benchmark"], sample=p.get("sample", 1),
                        config=run_config(p, scale), scale=scale,
                        **kwargs)
        return {"kind": "trace", "benchmark": p["benchmark"],
                "document": doc}
    raise JobError(f"unknown job kind {kind!r}")


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
@dataclass
class ServiceMetrics:
    """Cumulative counters (the smoke test's acceptance surface)."""

    submitted: int = 0
    executed: int = 0
    store_hits: int = 0
    dedup_hits: int = 0
    requeues: int = 0
    failures: int = 0
    cancelled: int = 0
    #: Back-pressure drops (queue full, the 503 path) -- never accepted,
    #: so counted apart from user/sweep cancellations.
    rejected: int = 0

    def to_dict(self) -> Dict:
        return dict(self.__dict__)


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class SweepService:
    """Asyncio job-queue service over a content-addressed store.

    ``workers=0`` executes inline on the event loop (deterministic --
    the test mode and the in-process default); ``workers=N`` fans out
    over a ``ProcessPoolExecutor`` that is rebuilt on worker loss.
    ``execute`` injects the spec executor (tests substitute stubs that
    fail deterministically).
    """

    def __init__(self, store: Optional[JobStore] = None,
                 workers: int = 0,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 max_attempts: int = 2,
                 retention: int = DEFAULT_RETENTION,
                 execute: Optional[Callable[[Dict], Dict]] = None):
        if queue_size <= 0:
            raise ValueError("queue_size must be positive")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if retention <= 0:
            raise ValueError("retention must be positive")
        self.store = store if store is not None else JobStore()
        self.workers = max(0, int(workers))
        self.queue_size = queue_size
        self.max_attempts = max_attempts
        self.retention = retention
        self.metrics = ServiceMetrics()
        self._execute = execute or execute_spec
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        self._terminal: Deque[str] = deque()
        self._queue: Optional[asyncio.PriorityQueue] = None
        self._seq = itertools.count()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._tasks: List[asyncio.Task] = []
        self._sweeps: List[asyncio.Task] = []
        self._done_events: Dict[str, asyncio.Event] = {}
        self.loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "SweepService":
        """Bind to the running loop and spawn the drain tasks."""
        if self._queue is not None:
            return self
        self.loop = asyncio.get_running_loop()
        self._queue = asyncio.PriorityQueue(maxsize=self.queue_size)
        for _ in range(max(1, self.workers)):
            self._tasks.append(asyncio.ensure_future(self._drain()))
        return self

    async def close(self) -> None:
        """Cancel drain tasks and shut the pool down."""
        for task in self._tasks + self._sweeps:
            task.cancel()
        for task in self._tasks + self._sweeps:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        self._sweeps.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._queue = None
        self.loop = None

    @property
    def started(self) -> bool:
        return self._queue is not None

    # -- submission ------------------------------------------------------
    async def submit(self, kind: str = "run", *,
                     priority: int = DEFAULT_PRIORITY,
                     wait: bool = True, **params) -> Job:
        """Admit one job; returns the (possibly pre-existing) job.

        Dedupe order: store hit > in-flight attach > queue.  With
        ``wait=False`` a full queue raises :class:`ServiceSaturated`
        instead of suspending.
        """
        spec = JobSpec.make(kind, **params)
        return await self.submit_spec(spec, priority=priority, wait=wait)

    async def submit_spec(self, spec: JobSpec, *,
                          priority: int = DEFAULT_PRIORITY,
                          wait: bool = True) -> Job:
        if isinstance(priority, bool) or not isinstance(priority, int):
            # Rejected before the job exists: a non-int would poison the
            # priority heap's tuple ordering for every later submission.
            raise JobError(
                f"priority must be an integer, got {priority!r}")
        if self._queue is None:
            await self.start()
        self.metrics.submitted += 1
        digest = spec.digest

        existing = self._inflight.get(digest)
        if existing is not None:
            existing.dedup_hits += 1
            self.metrics.dedup_hits += 1
            existing.events.emit(kind="dedup", job=existing.id)
            return existing

        stored = self.store.get_payload(digest)
        if stored is not None:
            job = Job(spec=spec, priority=priority, digest=digest)
            job.source = "store"
            job.payload = stored
            self._register(job)
            self.metrics.store_hits += 1
            job.transition(JobStatus.DONE, source="store")
            self._finish(job)
            return job

        job = Job(spec=spec, priority=priority, digest=digest)
        self._register(job)
        self._inflight[digest] = job
        job.events.emit(kind="status", status="pending", job=job.id)
        if spec.kind == "sweep":
            self._sweeps.append(
                asyncio.ensure_future(self._run_sweep(job)))
            return job
        await self._enqueue(job, wait=wait)
        return job

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._done_events[job.id] = asyncio.Event()

    async def _enqueue(self, job: Job, *, wait: bool) -> None:
        item = (job.priority, next(self._seq), job)
        try:
            if wait:
                await self._queue.put(item)
            else:
                self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self._drop(job, JobStatus.CANCELLED,
                       error="queue full (back-pressure)",
                       metric="rejected")
            raise ServiceSaturated(
                f"queue full ({self.queue_size} jobs); retry later"
            ) from None
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # Any other enqueue failure must not leave a pending zombie
            # registered in _inflight that dedupes future submissions.
            self._drop(job, JobStatus.FAILED,
                       error=f"enqueue failed: {exc}", metric="failures")
            raise

    # -- queries ---------------------------------------------------------
    def get_job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def describe(self) -> Dict:
        """Service status document (``GET /health``)."""
        return {
            "workers": self.workers,
            "queue_size": self.queue_size,
            "queued": self._queue.qsize() if self._queue else 0,
            "jobs": len(self._jobs),
            "inflight": len(self._inflight),
            "retention": self.retention,
            "metrics": self.metrics.to_dict(),
            "store": {"dir": str(self.store.dir),
                      "hits": self.store.hits,
                      "stores": self.store.stores},
        }

    async def wait(self, job: Job,
                   timeout: Optional[float] = None) -> Job:
        """Suspend until the job reaches a terminal status."""
        event = self._done_events.get(job.id)
        if event is None or job.status.terminal:
            return job
        await asyncio.wait_for(event.wait(), timeout)
        return job

    def cancel(self, job: Job) -> bool:
        """Cancel a pending job (running jobs finish; sweeps cancel
        their pending children)."""
        if job.status is not JobStatus.PENDING \
                and not (job.spec.kind == "sweep"
                         and job.status is JobStatus.RUNNING):
            return False
        if job.spec.kind == "sweep":
            # Only this sweep's own children -- a dedup-shared child
            # (another submitter attached to it) keeps running.
            for child in list(job.children):
                if child.status is JobStatus.PENDING \
                        and child.dedup_hits == 0:
                    self._drop(child, JobStatus.CANCELLED,
                               error="sweep cancelled")
        self._drop(job, JobStatus.CANCELLED)
        return True

    def _drop(self, job: Job, status: JobStatus,
              error: Optional[str] = None, *,
              metric: str = "cancelled") -> None:
        job.error = error
        setattr(self.metrics, metric, getattr(self.metrics, metric) + 1)
        job.transition(status, **({"error": error} if error else {}))
        self._finish(job)

    def _finish(self, job: Job) -> None:
        if self._inflight.get(job.digest) is job:
            del self._inflight[job.digest]
        event = self._done_events.get(job.id)
        if event is not None and not event.is_set():
            event.set()
            self._terminal.append(job.id)
            while len(self._terminal) > self.retention:
                old = self._terminal.popleft()
                self._jobs.pop(old, None)
                self._done_events.pop(old, None)

    # -- execution -------------------------------------------------------
    async def _drain(self) -> None:
        while True:
            _, _, job = await self._queue.get()
            try:
                if job.status is not JobStatus.PENDING:
                    continue  # cancelled while queued
                await self._run_one(job)
            finally:
                self._queue.task_done()

    async def _run_one(self, job: Job) -> None:
        while True:
            job.attempts += 1
            job.transition(JobStatus.RUNNING, attempt=job.attempts)
            try:
                payload = await self._execute_job(job)
            except _WorkerLost as exc:
                if job.attempts < self.max_attempts:
                    self.metrics.requeues += 1
                    job.status = JobStatus.PENDING
                    job.events.emit(kind="requeue", job=job.id,
                                    attempt=job.attempts, error=str(exc))
                    try:
                        # Never a blocking put: this coroutine IS the
                        # consumer that would have to free the slot, so
                        # awaiting a full queue here deadlocks.
                        self._queue.put_nowait(
                            (job.priority, next(self._seq), job))
                    except asyncio.QueueFull:
                        continue  # retry inline instead of requeueing
                    return
                self.metrics.failures += 1
                job.error = f"worker lost x{job.attempts}: {exc}"
                job.transition(JobStatus.FAILED, error=job.error)
                self._finish(job)
                return
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # job error: terminal, not retried
                self.metrics.failures += 1
                job.error = f"{type(exc).__name__}: {exc}"
                job.transition(JobStatus.FAILED, error=job.error)
                self._finish(job)
                return
            else:
                self.store.put_payload(job.digest, payload)
                job.payload = payload
                self.metrics.executed += 1
                job.transition(JobStatus.DONE, source="run")
                self._finish(job)
                return

    async def _execute_job(self, job: Job) -> Dict:
        spec_dict = job.spec.to_dict()
        if self.workers <= 0:
            # Inline mode: synchronous and deterministic.  Worker-loss
            # simulation (tests) still surfaces as requeue-able.
            try:
                return self._execute(spec_dict)
            except BrokenExecutor as exc:
                raise _WorkerLost(str(exc) or "broken executor") from exc
        loop = asyncio.get_running_loop()
        pool = self._get_pool()
        try:
            return await loop.run_in_executor(
                pool, self._execute, spec_dict)
        except BrokenExecutor as exc:
            # The process died (OOM-killed, signalled, ...): poison the
            # pool so the next job rebuilds it, and requeue this one.
            self._pool = None
            pool.shutdown(wait=False, cancel_futures=True)
            raise _WorkerLost(str(exc) or "worker process died") from exc

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=max(1, self.workers))
        return self._pool

    # -- sweeps ----------------------------------------------------------
    async def _run_sweep(self, job: Job) -> None:
        if job.status.terminal:
            return  # cancelled before expansion got to run
        try:
            children = job.spec.sweep_children()
        except (JobError, TypeError, ValueError) as exc:
            self.metrics.failures += 1
            job.error = f"bad sweep: {exc}"
            job.transition(JobStatus.FAILED, error=job.error)
            self._finish(job)
            return
        job.transition(JobStatus.RUNNING, total=len(children))
        skipped: List[str] = []
        waiting: List[Job] = []
        for spec in children:
            digest = spec.digest
            if job.status is JobStatus.CANCELLED:
                return
            if self.store.contains(digest):
                # Already completed (possibly by an earlier, partial
                # attempt at this sweep): resume by skipping it.
                skipped.append(digest)
                self.metrics.store_hits += 1
                job.events.emit(kind="sweep-skip", digest=digest,
                                source="store")
                continue
            child = await self.submit_spec(spec, priority=job.priority)
            job.children.append(child)
            waiting.append(child)
            job.events.emit(kind="sweep-child", digest=digest,
                            child=child.id)
        failed: List[str] = []
        completed: List[str] = list(skipped)
        for child in waiting:
            await self.wait(child)
            if child.status is JobStatus.DONE:
                completed.append(child.digest)
            else:
                failed.append(child.digest)
            job.events.emit(kind="sweep-progress",
                            done=len(completed), failed=len(failed),
                            total=len(children))
        if job.status is JobStatus.CANCELLED:
            return
        payload = {"kind": "sweep", "total": len(children),
                   "skipped": skipped, "completed": completed,
                   "failed": failed}
        job.payload = payload
        if failed:
            self.metrics.failures += 1
            job.error = f"{len(failed)}/{len(children)} children failed"
            job.transition(JobStatus.FAILED, error=job.error)
        else:
            # Only a fully-completed sweep is stored: a partial one must
            # re-expand (and skip per-child) on resubmission.
            self.store.put_payload(job.digest, payload)
            self.metrics.executed += 1
            job.transition(JobStatus.DONE, source="run")
        self._finish(job)


# ----------------------------------------------------------------------
# In-process client handle
# ----------------------------------------------------------------------
class JobHandle:
    """What :func:`repro.api.submit` returns: a thin async view of one
    job inside an in-process :class:`SweepService`."""

    def __init__(self, service: SweepService, job: Job):
        self._service = service
        self._job = job

    # -- identity --------------------------------------------------------
    @property
    def id(self) -> str:
        return self._job.id

    @property
    def digest(self) -> str:
        return self._job.digest

    @property
    def status(self) -> JobStatus:
        return self._job.status

    @property
    def source(self) -> str:
        return self._job.source

    def describe(self) -> Dict:
        return self._job.describe()

    def events(self, start: int = 0) -> List[Dict]:
        return self._job.events.snapshot(start)

    # -- outcome ---------------------------------------------------------
    async def wait(self, timeout: Optional[float] = None) -> "JobHandle":
        await self._service.wait(self._job, timeout)
        return self

    def result(self) -> Dict:
        """The payload; raises if the job is not DONE."""
        job = self._job
        if job.status is not JobStatus.DONE:
            raise RuntimeError(
                f"{job.id} is {job.status.value}"
                + (f": {job.error}" if job.error else ""))
        return job.payload

    def summary(self) -> RunSummary:
        """The payload as a RunSummary (run/scenario jobs)."""
        self.result()
        return self._job.summary()

    async def cancel(self) -> bool:
        return self._service.cancel(self._job)
