"""Async sweep service over a content-addressed job store.

The productionised successor to driving ``ParallelRunner`` by hand
(ROADMAP item 3): runs, scenarios, sweeps, figures, benches and traces
are submitted as jobs keyed by :class:`RunKey` digests, executed across
a multiprocess worker pool, deduplicated against a sharded on-disk
store, with priorities, bounded-queue back-pressure, resumable partial
sweeps and a per-job progress event stream.

Three front doors:

* in-process async client -- :func:`repro.api.submit` returning a
  :class:`JobHandle` (``status`` / ``result`` / ``cancel`` / ``wait``);
* HTTP API -- :func:`serve` / ``python -m repro serve`` (``POST
  /jobs``, ``GET /jobs/<id>``, ``GET /jobs/<id>/events``, ``GET
  /store/<digest>``; see ``docs/service.md``);
* CLI -- ``python -m repro submit|status|result|cancel`` against a
  running server.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.service.core import (DEFAULT_QUEUE_SIZE, JobHandle,
                                ServiceMetrics, ServiceSaturated,
                                SweepService, execute_spec)
from repro.service.jobs import (DEFAULT_PRIORITY, JOB_KINDS, Job,
                                JobError, JobSpec, JobStatus)
from repro.service.store import MANIFEST_SCHEMA, JobStore

__all__ = [
    "DEFAULT_PRIORITY", "DEFAULT_QUEUE_SIZE", "JOB_KINDS",
    "Job", "JobError", "JobHandle", "JobSpec", "JobStatus", "JobStore",
    "MANIFEST_SCHEMA", "ServiceMetrics", "ServiceSaturated",
    "SweepService", "configure_service", "execute_spec", "get_service",
    "serve", "submit", "telemetry_snapshot",
]

# ----------------------------------------------------------------------
# Ambient in-process service (what repro.api.submit routes through)
# ----------------------------------------------------------------------
_ambient: Optional[SweepService] = None
_ambient_kwargs: dict = {}


def configure_service(**kwargs) -> None:
    """Set construction parameters (``store=``, ``workers=``,
    ``queue_size=``, ``max_attempts=``) for the ambient service; drops
    the current one so the next :func:`submit` rebuilds it."""
    global _ambient, _ambient_kwargs
    _ambient_kwargs = dict(kwargs)
    _ambient = None


async def get_service() -> SweepService:
    """The ambient service, bound to the *running* event loop.

    Each ``asyncio.run`` creates a fresh loop; a service whose loop is
    gone is replaced (its store carries over -- completed results
    survive as store hits)."""
    global _ambient
    loop = asyncio.get_running_loop()
    if _ambient is not None and _ambient.loop not in (None, loop):
        kwargs = dict(_ambient_kwargs)
        kwargs.setdefault("store", _ambient.store)
        _ambient = SweepService(**kwargs)
    if _ambient is None:
        _ambient = SweepService(**_ambient_kwargs)
    if not _ambient.started:
        await _ambient.start()
    return _ambient


async def submit(kind: str = "run", *, priority: int = DEFAULT_PRIORITY,
                 service: Optional[SweepService] = None,
                 **params) -> JobHandle:
    """Submit one job to the ambient (or given) in-process service.

    ::

        handle = await api.submit("run", benchmark="pr",
                                  enhancements="full")
        await handle.wait()
        summary = handle.summary()
    """
    svc = service if service is not None else await get_service()
    if not svc.started:
        await svc.start()
    job = await svc.submit(kind, priority=priority, **params)
    return JobHandle(svc, job)


def telemetry_snapshot() -> dict:
    """The ambient service's ``repro.obs/telemetry-v1`` document.

    An empty-but-valid document (schema tag, no series) when no ambient
    service has been built yet -- callers can validate unconditionally.
    """
    if _ambient is not None:
        return _ambient.telemetry.snapshot()
    from repro.obs.telemetry import TELEMETRY_SCHEMA
    return {"schema": TELEMETRY_SCHEMA, "series": []}


def serve(host: str = "127.0.0.1", port: int = 8765, *,
          store=None, workers: Optional[int] = None,
          queue_size: int = DEFAULT_QUEUE_SIZE,
          progress_interval="default", log_json: bool = False,
          ready=None) -> None:
    """Run the HTTP sweep service until interrupted (blocking).

    Deferred import keeps ``import repro.service`` cheap; see
    :mod:`repro.service.http` and ``docs/service.md``.
    """
    from repro.service.http import serve as _serve
    _serve(host=host, port=port, store=store, workers=workers,
           queue_size=queue_size, progress_interval=progress_interval,
           log_json=log_json, ready=ready)
