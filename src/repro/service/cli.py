"""CLI bodies for ``python -m repro serve|submit|status|result|cancel``.

Kept out of ``repro.__main__`` (which imports nothing deeper than the
``repro.api`` facade at module level) and imported lazily, like the
scenario subcommand.  The client commands speak the HTTP API of a
running server (``--url``, default ``http://127.0.0.1:8765``) with
stdlib ``urllib`` only.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from typing import Dict, Optional

DEFAULT_URL = "http://127.0.0.1:8765"


# ----------------------------------------------------------------------
# HTTP client helpers
# ----------------------------------------------------------------------
class ServiceClientError(RuntimeError):
    """An HTTP error with the server's JSON error body attached."""

    def __init__(self, status: int, document: Dict):
        self.status = status
        self.document = document
        super().__init__(f"HTTP {status}: "
                         f"{document.get('error', document)}")


def request(url: str, path: str, *, method: str = "GET",
            body: Optional[Dict] = None,
            timeout: float = 60.0) -> Dict:
    """One JSON request/response round-trip."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        url.rstrip("/") + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.load(resp)
    except urllib.error.HTTPError as exc:
        try:
            document = json.load(exc)
        except (ValueError, TypeError):
            document = {"error": str(exc)}
        raise ServiceClientError(exc.code, document) from None


def follow_events(url: str, job_id: str, *, start: int = 0,
                  timeout: float = 600.0):
    """Yield the NDJSON event stream of one job until it closes."""
    req = urllib.request.Request(
        url.rstrip("/") + f"/jobs/{job_id}/events?start={start}")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        for line in resp:
            line = line.strip()
            if line:
                yield json.loads(line)


def wait_for_job(url: str, job_id: str, *,
                 timeout: float = 600.0) -> Dict:
    """Block on the event stream until terminal; return the final
    status document."""
    for _ in follow_events(url, job_id, timeout=timeout):
        pass
    return request(url, f"/jobs/{job_id}")


# ----------------------------------------------------------------------
# Subcommand bodies
# ----------------------------------------------------------------------
def cmd_serve(args) -> int:
    from repro.service import serve
    from repro.service.store import JobStore
    store = JobStore(root=args.store) if args.store else None
    progress = "default"
    if getattr(args, "no_progress", False):
        progress = None
    elif getattr(args, "progress_interval", None) is not None:
        progress = args.progress_interval
    serve(host=args.host, port=args.port, store=store,
          workers=args.workers, queue_size=args.queue_size,
          progress_interval=progress,
          log_json=getattr(args, "log_json", False))
    return 0


def _print(document: Dict) -> None:
    print(json.dumps(document, indent=2, sort_keys=True))


def cmd_submit(args) -> int:
    body: Dict = {"kind": args.kind}
    if args.priority is not None:
        body["priority"] = args.priority
    for name in ("benchmark", "scenario", "figure", "enhancements",
                 "backend", "instructions", "warmup", "scale", "seed"):
        value = getattr(args, name, None)
        if value is not None:
            body[name] = value
    if args.kind == "sweep":
        if not args.runs:
            print("sweep submission needs --runs", file=sys.stderr)
            return 2
        body["runs"] = args.runs
    try:
        job = request(args.url, "/jobs", method="POST", body=body)
    except ServiceClientError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    if args.wait:
        job = wait_for_job(args.url, job["id"])
    _print(job)
    return 0 if job["status"] in ("pending", "running", "done") else 1


def cmd_status(args) -> int:
    try:
        if args.job_id is None:
            _print(request(args.url, "/jobs"))
        else:
            _print(request(args.url, f"/jobs/{args.job_id}"))
    except ServiceClientError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    return 0


def cmd_result(args) -> int:
    try:
        if args.wait:
            final = wait_for_job(args.url, args.job_id)
            if final["status"] != "done":
                print(f"{args.job_id}: {final['status']}"
                      + (f" ({final.get('error')})"
                         if final.get("error") else ""),
                      file=sys.stderr)
                return 1
        _print(request(args.url, f"/jobs/{args.job_id}/result"))
    except ServiceClientError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    return 0


def cmd_cancel(args) -> int:
    try:
        outcome = request(args.url, f"/jobs/{args.job_id}/cancel",
                          method="POST", body={})
    except ServiceClientError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    _print(outcome)
    return 0 if outcome.get("cancelled") else 1


# ----------------------------------------------------------------------
# Parser registration (called from repro.__main__)
# ----------------------------------------------------------------------
def _positive_int(value: str) -> int:
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {value!r}") from None
    if number <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {number}")
    return number


def _add_url(parser) -> None:
    parser.add_argument("--url", default=DEFAULT_URL,
                        help=f"service base URL (default {DEFAULT_URL})")


def add_service_parsers(sub) -> None:
    """Register serve/submit/status/result/cancel subcommand trees."""
    p_serve = sub.add_parser(
        "serve", help="run the HTTP sweep service (docs/service.md)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765,
                         help="0 picks a free port (printed on startup)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: cpu count; "
                              "0 executes inline)")
    p_serve.add_argument("--queue-size", type=_positive_int, default=None,
                         help="bounded queue depth (back-pressure)")
    p_serve.add_argument("--store", metavar="DIR", default=None,
                         help="job-store root (default "
                              "~/.cache/repro-runs or $REPRO_CACHE_DIR)")
    p_serve.add_argument("--progress-interval", type=_positive_int,
                         default=None,
                         help="instructions between forwarded "
                              "job-progress rows (default 5000)")
    p_serve.add_argument("--no-progress", action="store_true",
                         help="disable worker progress forwarding")
    p_serve.add_argument("--log-json", action="store_true",
                         help="structured JSON-lines logs on stderr")
    p_serve.set_defaults(service_func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a job to a running service")
    p_submit.add_argument("kind", choices=("run", "scenario", "sweep",
                                           "figure", "bench", "trace"))
    p_submit.add_argument("benchmark", nargs="?", default=None,
                          help="benchmark (run/trace), scenario name "
                               "(scenario) or figure name (figure)")
    p_submit.add_argument("--runs", nargs="*", default=None,
                          help="benchmarks of a sweep's child runs")
    p_submit.add_argument("--enhancements", default=None)
    p_submit.add_argument("--backend", default=None)
    p_submit.add_argument("--instructions", type=_positive_int,
                          default=None)
    p_submit.add_argument("--warmup", type=_positive_int, default=None)
    p_submit.add_argument("--scale", type=_positive_int, default=None)
    p_submit.add_argument("--seed", type=_positive_int, default=None)
    p_submit.add_argument("--priority", type=int, default=None,
                          help="lower runs sooner")
    p_submit.add_argument("--wait", action="store_true",
                          help="follow the event stream until terminal")
    _add_url(p_submit)
    p_submit.set_defaults(service_func=_dispatch_submit)

    p_status = sub.add_parser("status", help="job (or service) status")
    p_status.add_argument("job_id", nargs="?", default=None)
    _add_url(p_status)
    p_status.set_defaults(service_func=cmd_status)

    p_result = sub.add_parser("result", help="fetch a job's payload")
    p_result.add_argument("job_id")
    p_result.add_argument("--wait", action="store_true")
    _add_url(p_result)
    p_result.set_defaults(service_func=cmd_result)

    p_cancel = sub.add_parser("cancel", help="cancel a pending job")
    p_cancel.add_argument("job_id")
    _add_url(p_cancel)
    p_cancel.set_defaults(service_func=cmd_cancel)

    p_top = sub.add_parser(
        "top", help="live dashboard over a running service")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="seconds between redraws")
    p_top.add_argument("--limit", type=_positive_int, default=20,
                       help="max job rows shown")
    p_top.add_argument("--width", type=_positive_int, default=None,
                       help="frame width (default 100 columns)")
    p_top.add_argument("--once", action="store_true",
                       help="print one frame and exit (no ANSI)")
    _add_url(p_top)
    p_top.set_defaults(service_func=_dispatch_top)


def _dispatch_top(args) -> int:
    from repro.service.top import cmd_top
    return cmd_top(args)


def _dispatch_submit(args) -> int:
    # Map the positional onto the kind-specific field name.
    if args.kind == "scenario":
        args.scenario, args.benchmark = args.benchmark, None
    elif args.kind == "figure":
        args.figure, args.benchmark = args.benchmark, None
    else:
        args.scenario = args.figure = None
    if args.kind in ("run", "trace") and not args.benchmark:
        print(f"{args.kind} submission needs a benchmark name",
              file=sys.stderr)
        return 2
    if args.kind == "scenario" and not args.scenario:
        print("scenario submission needs a scenario name",
              file=sys.stderr)
        return 2
    if args.kind == "figure" and not args.figure:
        print("figure submission needs a figure name", file=sys.stderr)
        return 2
    return cmd_submit(args)
