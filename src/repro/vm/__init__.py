"""Virtual memory: 5-level radix page table, TLBs, paging-structure caches
and the hardware page-table walker."""

from repro.vm.address import (page_number, page_offset, level_index,
                              psc_tag, make_va)
from repro.vm.page_table import PageTable, FrameAllocator
from repro.vm.tlb import TLB
from repro.vm.psc import PagingStructureCaches
from repro.vm.walker import PageTableWalker, WalkResult
from repro.vm.mmu import MMU, TranslationResult

__all__ = ["page_number", "page_offset", "level_index", "psc_tag", "make_va",
           "PageTable", "FrameAllocator", "TLB", "PagingStructureCaches",
           "PageTableWalker", "WalkResult", "MMU", "TranslationResult"]
