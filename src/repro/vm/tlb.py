"""Set-associative TLB with LRU replacement.

Used for both the first-level DTLB and the unified second-level STLB.  The
STLB additionally tracks recall distance of evicted entries (Fig 18: more
than 40% of STLB entries are "dead", recall distance > 50).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.params import TLBConfig
from repro.stats.recall import RecallTracker


class TLB:
    """Maps virtual page numbers to physical frame numbers."""

    def __init__(self, config: TLBConfig, track_recall: bool = False):
        self.config = config
        self.name = config.name
        self.num_sets = config.num_sets
        self.num_ways = config.ways
        self.latency = config.latency
        # Per-set: vpn -> lru timestamp; capacity num_ways.
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._frames: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        # Plain int so the batch backend can bulk fast-forward it; the
        # increment-then-stamp sequence below yields the exact values the
        # old ``itertools.count(1)`` produced.
        self._clock = 0
        #: Set whenever residency changes; tells the numpy backend its
        #: key/frame mirror (repro.cache.batch.TLBMirror) needs a rebuild.
        self._mirror_stale = True
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.recall: Optional[RecallTracker] = None
        if track_recall:
            self.recall = RecallTracker(f"{self.name}/translation")
        #: Optional observer with on_stlb_fill / on_stlb_reuse /
        #: on_stlb_evict hooks (DpPred training).
        self.observer = None

    def _set_index(self, vpn: int) -> int:
        return vpn % self.num_sets

    def lookup(self, vpn: int, count: bool = True) -> Optional[int]:
        """Probe the TLB; returns the frame on a hit, None on a miss.

        ``count=False`` suppresses statistics and recall tracking (used for
        prefetch-initiated translations, which the paper's MPKI numbers
        exclude)."""
        set_idx = vpn % self.num_sets
        if count:
            rec = self.recall
            if rec is not None and rec.pending:
                rec.on_access(set_idx, vpn)
            self.accesses += 1
        entries = self._sets[set_idx]
        if vpn in entries:
            if count:
                self.hits += 1
            if self.observer is not None:
                self.observer.on_stlb_reuse(vpn)
            self._clock += 1
            entries[vpn] = self._clock
            return self._frames[set_idx][vpn]
        if count:
            self.misses += 1
        return None

    def fill(self, vpn: int, pfn: int, ip: int = 0,
             bypass: bool = False) -> None:
        """Install a translation, evicting LRU if the set is full.

        ``bypass=True`` (DpPred dead-page bypassing) inserts the entry at
        the LRU end of its set, making it the next victim."""
        set_idx = vpn % self.num_sets
        entries = self._sets[set_idx]
        frames = self._frames[set_idx]
        if vpn not in entries and len(entries) >= self.num_ways:
            victim = min(entries, key=entries.__getitem__)
            del entries[victim]
            del frames[victim]
            self.evictions += 1
            if self.recall is not None:
                self.recall.on_evict(set_idx, victim)
            if self.observer is not None:
                self.observer.on_stlb_evict(victim)
        if bypass:
            entries[vpn] = 0
        else:
            self._clock += 1
            entries[vpn] = self._clock
        frames[vpn] = pfn
        self._mirror_stale = True
        if self.observer is not None:
            self.observer.on_stlb_fill(vpn, ip)

    def reset_stats(self) -> None:
        """Zero counters at the warmup boundary; contents persist."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if self.recall is not None:
            self.recall = RecallTracker(f"{self.name}/translation")

    def invalidate_all(self) -> None:
        for entries, frames in zip(self._sets, self._frames):
            entries.clear()
            frames.clear()
        self._mirror_stale = True

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / instructions
