"""Hardware page-table walker.

After an STLB miss the walker probes the paging-structure caches (one
cycle, all levels in parallel) and then issues one *dependent* 64-byte read
per remaining page-table level through the data-cache hierarchy
(L1D -> L2C -> LLC -> DRAM).  The leaf-level read carries the paper's extra
PTW flags: ``pt_level == 1`` (IsLeafLevel) and ``replay_line_addr`` -- the
physical line the corresponding replay load will touch, derivable because
the PTW carries the upper six page-offset bits of the faulting access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsys import request as request_pool
from repro.memsys.request import AccessType
from repro.params import LINE_SHIFT, PAGE_SHIFT
from repro.vm.page_table import PageTable
from repro.vm.psc import PagingStructureCaches


@dataclass(slots=True)
class WalkResult:
    """Outcome of one page-table walk."""

    pfn: int
    done_cycle: int
    levels_walked: int
    psc_hit_level: int  # 0 when no PSC hit (walk started at the root)
    leaf_served_by: str


class PageTableWalker:
    """Walks the radix page table, reading PTEs through the cache hierarchy."""

    def __init__(self, page_table: PageTable, psc: PagingStructureCaches,
                 first_cache):
        self.page_table = page_table
        self.psc = psc
        self.first_cache = first_cache
        self.walks = 0
        self.pte_reads = 0
        #: Request-level span tracer (None unless the run is traced).
        self.tracer = None
        #: Optional ``{vpn: (pfn, entries)}`` descent cache, attached by
        #: the batch engine while an eligible run drains (see
        #: ``PageTable.walk_entries_batch``).  None in scalar runs.
        self.entries_cache = None

    def walk(self, va: int, cycle: int, ip: int = 0) -> WalkResult:
        """Translate ``va`` starting at ``cycle``; returns the walk result.

        Each PTE read depends on the previous level's data, so reads are
        strictly serial (this is what makes STLB misses so expensive).
        """
        self.walks += 1
        tracer = self.tracer
        # The descent cache keys on VPN: walk_entries depends only on
        # page-number bits, and mappings are immutable once allocated,
        # so a cached descent is exact.  Huge pages split the leaf PFN
        # per 4KB sub-frame, so the cache is bypassed while a predicate
        # is installed (the batch engine never attaches one then, but a
        # predicate can be installed mid-run by comparison harnesses).
        cached = None
        cacheable = (self.entries_cache is not None
                     and self.page_table.huge_page_predicate is None)
        if cacheable:
            cached = self.entries_cache.get(va >> PAGE_SHIFT)
        if cached is not None:
            pfn, entries = cached
        else:
            pfn, entries = self.page_table.walk_entries(va)
            if cacheable:
                # Re-walks of this page (TLB thrashing) become lookups.
                self.entries_cache[va >> PAGE_SHIFT] = (pfn, entries)
        leaf_level = entries[-1][0]  # 1, or 2 for 2MB huge pages

        t = cycle + self.psc.latency
        hit_level, _frame = self.psc.lookup(va)
        start_level = (hit_level - 1) if hit_level is not None else 5

        wspan = None
        if tracer is not None:
            wspan = tracer.begin("walk", cycle, cat="translation")

        replay_line = ((pfn << PAGE_SHIFT) | (va & 0xFFF)) >> LINE_SHIFT
        leaf_served_by = ""
        levels_walked = 0
        for level, pte_pa, child_frame in entries:
            if level > start_level:
                continue
            is_leaf = level == leaf_level
            req = request_pool.acquire(
                pte_pa, t, ip=ip,
                access_type=AccessType.TRANSLATION, pt_level=level,
                leaf_walk=is_leaf,
                replay_line_addr=replay_line if is_leaf else None)
            pspan = None
            if tracer is not None:
                pspan = tracer.begin(f"pte_L{level}", t, cat="translation",
                                     level=level, leaf=is_leaf)
            t = self.first_cache.access(req)
            if tracer is not None:
                tracer.end(pspan, t, served_by=req.served_by)
            self.pte_reads += 1
            levels_walked += 1
            if is_leaf:
                leaf_served_by = req.served_by
            else:
                # Cache the walk-through-``level`` outcome in PSCL<level>.
                self.psc.fill(va, level, child_frame)
            request_pool.release(req)

        if tracer is not None:
            tracer.end(wspan, t, psc_hit_level=hit_level or 0,
                       levels_walked=levels_walked,
                       leaf_served_by=leaf_served_by)
        return WalkResult(pfn=pfn, done_cycle=t, levels_walked=levels_walked,
                          psc_hit_level=hit_level or 0,
                          leaf_served_by=leaf_served_by)
