"""Functional 5-level radix page table with demand paging.

The table is *real*: intermediate table pages and data pages are allocated
physical frames, and every PTE has a concrete physical address, so the
page-table walker's reads travel through the cache hierarchy exactly like
ChampSim's (eight 8-byte PTEs share one 64-byte line).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.params import (BITS_PER_LEVEL, LINE_SHIFT, PAGE_SHIFT, PTE_SIZE,
                          PT_LEVELS)
from repro.vm.address import level_index, page_number


class FrameAllocator:
    """Hands out physical frame numbers.

    Frames are scattered with a multiplicative hash (Weyl sequence) so that
    consecutive allocations do not all land in the same DRAM row, while
    remaining deterministic for a given seed.
    """

    _MULT = 0x9E3779B97F4A7C15

    def __init__(self, num_frames: int = 1 << 24, seed: int = 1,
                 scatter: bool = False):
        if num_frames <= 0:
            raise ValueError("need a positive number of frames")
        self.num_frames = num_frames
        self.scatter = scatter
        self._counter = seed
        self._allocated = 0
        # Contiguous (huge-page) allocations grow downward from the top
        # of physical memory, away from the 4KB allocations.
        self._huge_next = num_frames

    def allocate(self) -> int:
        if self._allocated >= self.num_frames:
            raise MemoryError("out of physical frames")
        self._allocated += 1
        self._counter += 1
        if not self.scatter:
            return self._allocated - 1
        return ((self._counter * self._MULT) >> 16) % self.num_frames

    def allocate_contiguous(self, count: int) -> int:
        """Reserve ``count`` aligned, contiguous frames (2MB pages need
        512); returns the base frame."""
        base = (self._huge_next - count) // count * count
        if base < 0:
            raise MemoryError("out of contiguous physical frames")
        self._huge_next = base
        self._allocated += count
        return base

    @property
    def allocated(self) -> int:
        return self._allocated


class _TableNode:
    """One page of the radix tree: 512 slots plus its own frame."""

    __slots__ = ("frame", "slots")

    def __init__(self, frame: int):
        self.frame = frame
        self.slots: Dict[int, object] = {}


#: 4KB frames per 2MB huge page.
FRAMES_PER_HUGE_PAGE = 1 << BITS_PER_LEVEL

_IDX_MASK = (1 << BITS_PER_LEVEL) - 1
_TOP_SHIFT = PAGE_SHIFT + (PT_LEVELS - 1) * BITS_PER_LEVEL


class PageTable:
    """Radix page table rooted at a CR3 frame.

    ``huge_page_predicate`` (VA -> bool) selects regions mapped with 2MB
    pages: their walk terminates with a leaf PTE at level 2 and the data
    page occupies 512 contiguous frames (the THP extension study).
    """

    def __init__(self, allocator: Optional[FrameAllocator] = None,
                 huge_page_predicate=None):
        self.allocator = allocator or FrameAllocator()
        self.huge_page_predicate = huge_page_predicate
        self._root = _TableNode(self.allocator.allocate())
        self.data_pages = 0
        self.huge_pages = 0
        self.table_pages = 1

    def is_huge(self, va: int) -> bool:
        return (self.huge_page_predicate is not None
                and self.huge_page_predicate(va))

    def leaf_level(self, va: int) -> int:
        """Page-table level holding ``va``'s leaf PTE (1, or 2 for 2MB)."""
        return 2 if self.is_huge(va) else 1

    @property
    def cr3_frame(self) -> int:
        return self._root.frame

    # ------------------------------------------------------------------
    def _descend(self, va: int, allocate: bool) -> Optional[List[_TableNode]]:
        """Nodes along the walk path, root (level 5) first; the node
        holding the leaf PTE last (level-1 table, or level-2 for huge)."""
        leaf_level = self.leaf_level(va)
        path = [self._root]
        node = self._root
        shift = _TOP_SHIFT
        for level in range(PT_LEVELS, leaf_level, -1):
            idx = (va >> shift) & _IDX_MASK
            shift -= BITS_PER_LEVEL
            child = node.slots.get(idx)
            if child is None:
                if not allocate:
                    return None
                child = _TableNode(self.allocator.allocate())
                node.slots[idx] = child
                self.table_pages += 1
            node = child
            path.append(node)
        return path

    def translate(self, va: int) -> int:
        """Physical frame of ``va``'s 4KB-grain page, allocating on first
        touch (huge pages allocate 512 contiguous frames at once)."""
        leaf_level = self.leaf_level(va)
        path = self._descend(va, allocate=True)
        leaf = path[-1]
        idx = level_index(va, leaf_level)
        pfn = leaf.slots.get(idx)
        if pfn is None:
            if leaf_level == 2:
                pfn = self.allocator.allocate_contiguous(
                    FRAMES_PER_HUGE_PAGE)
                self.huge_pages += 1
            else:
                pfn = self.allocator.allocate()
                self.data_pages += 1
            leaf.slots[idx] = pfn
        if leaf_level == 2:
            return pfn + level_index(va, 1)  # 4KB frame within the 2MB page
        return pfn

    def huge_base_frame(self, va: int) -> int:
        """Base frame of the 2MB page mapping ``va`` (huge VAs only)."""
        if not self.is_huge(va):
            raise ValueError("not a huge-page VA")
        self.translate(va)
        path = self._descend(va, allocate=False)
        return path[-1].slots[level_index(va, 2)]

    def lookup(self, va: int) -> Optional[int]:
        """Physical frame of ``va``'s page, or None if never touched."""
        leaf_level = self.leaf_level(va)
        path = self._descend(va, allocate=False)
        if path is None:
            return None
        pfn = path[-1].slots.get(level_index(va, leaf_level))
        if pfn is None:
            return None
        if leaf_level == 2:
            return pfn + level_index(va, 1)
        return pfn

    # ------------------------------------------------------------------
    def walk_entries(self, va: int) -> Tuple[int, List[Tuple[int, int, int]]]:
        """One-descent walk info for the hardware walker.

        Returns ``(pfn, [(level, pte_physical_address, child_frame), ...])``
        root (level 5) first.  ``child_frame`` is the frame of the next
        level's table page -- what PSCL<level> caches after reading that
        level's PTE -- and 0 at the leaf.  Equivalent to ``translate`` +
        ``walk_path`` + per-level ``node_frame`` in a single radix descent
        (this is the walker's hot path, hence the inlined descend).
        """
        pred = self.huge_page_predicate
        leaf_level = 2 if pred is not None and pred(va) else 1
        path = [self._root]
        node = self._root
        shift = _TOP_SHIFT
        for _level in range(PT_LEVELS, leaf_level, -1):
            idx = (va >> shift) & _IDX_MASK
            shift -= BITS_PER_LEVEL
            child = node.slots.get(idx)
            if child is None:
                child = _TableNode(self.allocator.allocate())
                node.slots[idx] = child
                self.table_pages += 1
            node = child
            path.append(node)
        # Leaf PTE; allocate the data page on first touch (== translate).
        idx = (va >> shift) & _IDX_MASK
        pfn = node.slots.get(idx)
        if pfn is None:
            if leaf_level == 2:
                pfn = self.allocator.allocate_contiguous(
                    FRAMES_PER_HUGE_PAGE)
                self.huge_pages += 1
            else:
                pfn = self.allocator.allocate()
                self.data_pages += 1
            node.slots[idx] = pfn
        if leaf_level == 2:
            pfn += (va >> PAGE_SHIFT) & _IDX_MASK  # 4KB frame in the 2MB page
        out = []
        last = len(path) - 1
        shift = _TOP_SHIFT
        for pos, pnode in enumerate(path):
            idx = (va >> shift) & _IDX_MASK
            pte_pa = (pnode.frame << PAGE_SHIFT) | (idx * PTE_SIZE)
            out.append((PT_LEVELS - pos, pte_pa,
                        path[pos + 1].frame if pos < last else 0))
            shift -= BITS_PER_LEVEL
        return pfn, out

    def walk_entries_batch(self, vpns, cache: dict) -> int:
        """Precompute :meth:`walk_entries` descents for a VPN cohort.

        ``vpns`` must be in *first-occurrence order* of the accesses that
        will consume them: for never-allocated pages each descent
        allocates table/data frames, and replaying them here in cohort
        order reproduces the exact allocator trajectory of per-access
        scalar walks (already-allocated VPNs are pure lookups, so their
        position is irrelevant).  Results land in ``cache`` keyed by
        VPN -- the dict the batch engine attaches as the walker's
        ``entries_cache``.  Returns the number of fresh descents.

        Must not be used while a huge-page predicate is installed: huge
        leaves split the PFN per 4KB sub-frame, so descents stop being a
        pure function of the VPN's page-table path.
        """
        fresh = 0
        walk_entries = self.walk_entries
        for vpn in vpns:
            if vpn not in cache:
                cache[vpn] = walk_entries(vpn << PAGE_SHIFT)
                fresh += 1
        return fresh

    def walk_path(self, va: int) -> List[Tuple[int, int]]:
        """Return ``[(level, pte_physical_address), ...]`` for the walk,
        root (level 5) first, leaf level (1, or 2 for huge pages) last.

        The PTE at ``level`` lives in the table page for that level, at
        slot ``level_index(va, level)``; eight PTEs share a cache line.
        Allocates pages on demand (hardware walks only referenced VAs).
        """
        self.translate(va)  # ensure the whole path exists
        path = self._descend(va, allocate=False)
        out = []
        for node, level in zip(path, range(PT_LEVELS, 0, -1)):
            idx = level_index(va, level)
            pte_pa = (node.frame << PAGE_SHIFT) | (idx * PTE_SIZE)
            out.append((level, pte_pa))
        return out

    def pte_line_addr(self, va: int, level: int) -> int:
        """Cache-line address of the PTE for ``va`` at ``level``."""
        for lvl, pa in self.walk_path(va):
            if lvl == level:
                return pa >> LINE_SHIFT
        raise ValueError(f"no level {level} in walk path")

    def node_frame(self, va: int, level: int) -> int:
        """Frame of the table page holding ``va``'s level-``level`` PTE."""
        path = self._descend(va, allocate=True)
        return path[PT_LEVELS - level].frame
