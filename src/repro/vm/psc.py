"""Paging-structure caches (PSCL5/PSCL4/PSCL3/PSCL2).

PSCL*n* caches the result of walking *through* level ``n`` -- i.e. the
physical frame of the level-(n-1) table -- keyed by the VA path prefix.
All four are probed concurrently in one cycle after an STLB miss; when more
than one hits, the level *farthest from the root* (PSCL2 is best) wins, as
it minimizes the remaining walk (a PSCL2 hit leaves a single leaf-PTE read).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from repro.params import PSCConfig
from repro.vm.address import psc_tag

#: PSC levels from deepest (checked first) to shallowest.
PSC_LEVELS = (2, 3, 4, 5)


class _SmallLRU:
    """Tiny fully-associative LRU map."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._data: Dict[int, int] = {}
        self._stamps: Dict[int, int] = {}
        self._clock = itertools.count(1)

    def get(self, key: int) -> Optional[int]:
        if key in self._data:
            self._stamps[key] = next(self._clock)
            return self._data[key]
        return None

    def put(self, key: int, value: int) -> None:
        if key not in self._data and len(self._data) >= self.capacity:
            victim = min(self._stamps, key=self._stamps.__getitem__)
            del self._data[victim]
            del self._stamps[victim]
        self._data[key] = value
        self._stamps[key] = next(self._clock)

    def __len__(self) -> int:
        return len(self._data)


class PagingStructureCaches:
    """The four PSCs, probed in parallel."""

    def __init__(self, config: PSCConfig):
        self.config = config
        self.latency = config.latency
        self._caches: Dict[int, _SmallLRU] = {
            level: _SmallLRU(config.entries_for_level(level))
            for level in PSC_LEVELS}
        self.lookups = 0
        self.hits_by_level: Dict[int, int] = {level: 0 for level in PSC_LEVELS}
        self.misses = 0

    def lookup(self, va: int) -> Tuple[Optional[int], Optional[int]]:
        """Probe all levels; returns ``(hit_level, next_table_frame)``.

        ``hit_level`` is the deepest level with a match (2 is deepest); the
        returned frame is the base of the level-(hit_level - 1) table, so
        the walk resumes at level ``hit_level - 1``.  ``(None, None)`` on a
        full miss (walk starts at the root, level 5).
        """
        self.lookups += 1
        for level in PSC_LEVELS:
            frame = self._caches[level].get(psc_tag(va, level))
            if frame is not None:
                self.hits_by_level[level] += 1
                return level, frame
        self.misses += 1
        return None, None

    def fill(self, va: int, level: int, next_table_frame: int) -> None:
        """Cache the outcome of walking through ``level`` for ``va``."""
        if level in self._caches:
            self._caches[level].put(psc_tag(va, level), next_table_frame)

    def entries(self, level: int) -> int:
        return len(self._caches[level])
