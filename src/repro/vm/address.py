"""57-bit virtual-address decomposition for the 5-level radix page table.

The VA is split (high to low) into five 9-bit table indices and a 12-bit
page offset::

    VA[56:48] -> level-5 index     VA[20:12] -> level-1 (leaf) index
    VA[47:39] -> level-4 index     VA[11:0]  -> page offset
    ...
"""

from __future__ import annotations

from repro.params import (BITS_PER_LEVEL, PAGE_SHIFT, PT_LEVELS, VA_BITS)

_LEVEL_MASK = (1 << BITS_PER_LEVEL) - 1
VA_LIMIT = 1 << VA_BITS


def page_number(va: int) -> int:
    """Virtual page number of ``va``."""
    return va >> PAGE_SHIFT


def page_offset(va: int) -> int:
    """Offset of ``va`` within its 4KB page."""
    return va & ((1 << PAGE_SHIFT) - 1)


def level_index(va: int, level: int) -> int:
    """9-bit index of ``va`` into the page table at ``level`` (5..1)."""
    if not 1 <= level <= PT_LEVELS:
        raise ValueError(f"page-table level must be 1..{PT_LEVELS}")
    shift = PAGE_SHIFT + BITS_PER_LEVEL * (level - 1)
    return (va >> shift) & _LEVEL_MASK


def psc_tag(va: int, level: int) -> int:
    """Tag used by the level-``level`` paging-structure cache.

    PSCL*n* caches the outcome of the walk *through* level ``n``: its tag is
    every VA bit above level ``n``'s own index base, i.e. the path from the
    root down to (and including) level ``n``'s index.
    """
    shift = PAGE_SHIFT + BITS_PER_LEVEL * (level - 1)
    return va >> shift


def make_va(indices, offset: int = 0) -> int:
    """Compose a VA from (level-5 .. level-1) indices and a page offset.

    Convenience for tests: ``make_va([a, b, c, d, e], off)`` builds the VA
    whose level-5 index is ``a`` and leaf index is ``e``.
    """
    if len(indices) != PT_LEVELS:
        raise ValueError(f"need {PT_LEVELS} indices")
    va = 0
    for idx in indices:
        if not 0 <= idx <= _LEVEL_MASK:
            raise ValueError("index out of 9-bit range")
        va = (va << BITS_PER_LEVEL) | idx
    return (va << PAGE_SHIFT) | offset
