"""Memory-management unit: DTLB -> STLB -> page-table walk orchestration.

``translate`` returns both the physical address and the translation's
completion cycle, plus the classification the rest of the simulator needs:
a demand load whose translation missed the STLB is a **replay load**.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import BITS_PER_LEVEL, PAGE_SHIFT, SimConfig

#: Tag bit distinguishing 2MB-page TLB entries from 4KB ones (the key of
#: a huge entry is its 2MB-aligned virtual page number, tagged).
_HUGE_TAG = 1 << 60
_HUGE_OFFSET_MASK = (1 << BITS_PER_LEVEL) - 1
_PAGE_OFFSET_MASK = (1 << PAGE_SHIFT) - 1
from repro.vm.page_table import PageTable
from repro.vm.psc import PagingStructureCaches
from repro.vm.tlb import TLB
from repro.vm.walker import PageTableWalker, WalkResult


@dataclass(slots=True)
class TranslationResult:
    """Outcome of translating one virtual address."""

    paddr: int
    done_cycle: int
    dtlb_hit: bool
    stlb_hit: bool
    #: Set on STLB misses: the walk that produced the translation.
    walk: WalkResult = None

    @property
    def is_replay(self) -> bool:
        """The corresponding data access is a replay load."""
        return not self.dtlb_hit and not self.stlb_hit


class MMU:
    """Per-core data-side MMU."""

    def __init__(self, config: SimConfig, page_table: PageTable,
                 first_cache):
        self.config = config
        self.page_table = page_table
        self.dtlb = TLB(config.dtlb)
        self.stlb = TLB(config.stlb, track_recall=config.track_recall)
        self.psc = PagingStructureCaches(config.psc)
        self.walker = PageTableWalker(page_table, self.psc, first_cache)
        self.stlb_fill_latency = config.stlb_fill_latency
        self.translations = 0
        self.walk_cycles_total = 0
        #: Optional DpPred dead-page predictor (Section V-B comparison):
        #: predicted-dead pages bypass the STLB.
        self.dead_page_predictor = None
        #: Request-level span tracer (None unless the run is traced).
        self.tracer = None

    def translate(self, va: int, cycle: int, ip: int = 0,
                  count_stats: bool = True) -> TranslationResult:
        """Translate ``va``; allocates the page on first touch.

        ``count_stats=False`` keeps prefetch-initiated translations out of
        the TLB miss counters (they still warm the TLBs and caches)."""
        if count_stats:
            self.translations += 1
        tracer = self.tracer
        tspan = None
        if tracer is not None:
            tspan = tracer.begin(
                "translate", cycle,
                cat="translation" if count_stats else "prefetch")
        vpn = va >> PAGE_SHIFT
        offset = va & _PAGE_OFFSET_MASK
        pred = self.page_table.huge_page_predicate  # inlined is_huge
        if pred is not None and pred(va):
            key = _HUGE_TAG | (vpn >> BITS_PER_LEVEL)
            sub = vpn & _HUGE_OFFSET_MASK  # 4KB chunk within the 2MB page
        else:
            key, sub = vpn, 0

        t = cycle + self.dtlb.latency
        base = self.dtlb.lookup(key, count=count_stats)
        if base is not None:
            pfn = base + sub
            if tracer is not None:
                tracer.end(tspan, t, dtlb_hit=True, stlb_hit=True)
            return TranslationResult(paddr=(pfn << PAGE_SHIFT) | offset,
                                     done_cycle=t, dtlb_hit=True,
                                     stlb_hit=True)

        t += self.stlb.latency
        base = self.stlb.lookup(key, count=count_stats)
        if base is not None:
            self.dtlb.fill(key, base)
            pfn = base + sub
            if tracer is not None:
                tracer.end(tspan, t, dtlb_hit=False, stlb_hit=True)
            return TranslationResult(paddr=(pfn << PAGE_SHIFT) | offset,
                                     done_cycle=t, dtlb_hit=False,
                                     stlb_hit=True)

        walk = self.walker.walk(va, t, ip)
        self.walk_cycles_total += walk.done_cycle - t
        done = walk.done_cycle + self.stlb_fill_latency
        bypass = (self.dead_page_predictor is not None
                  and self.dead_page_predictor.is_dead(ip))
        fill_frame = walk.pfn - sub  # huge entries store the 2MB base
        self.stlb.fill(key, fill_frame, ip=ip, bypass=bypass)
        self.dtlb.fill(key, fill_frame)
        if tracer is not None:
            tracer.end(tspan, done, dtlb_hit=False, stlb_hit=False)
        return TranslationResult(paddr=(walk.pfn << PAGE_SHIFT) | offset,
                                 done_cycle=done, dtlb_hit=False,
                                 stlb_hit=False, walk=walk)

    def stlb_mpki(self, instructions: int) -> float:
        return self.stlb.mpki(instructions)
