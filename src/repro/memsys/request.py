"""Memory request type shared by every level of the hierarchy.

A request is classified along the axes the paper cares about:

* **translation** -- a page-table-walker read of a PTE line.  Leaf-level
  translations (``pt_level == 1``) carry the information ATP needs to
  prefetch the corresponding replay line (``replay_line_addr``).
* **replay load** -- a demand load whose address translation missed the STLB
  and walked the page table (terminology from TEMPO).
* **non-replay load** -- a demand load whose translation hit the DTLB/STLB.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.params import LINE_SHIFT


class AccessType(enum.Enum):
    """Demand class of a request, used for statistics and policy decisions."""

    LOAD = "load"
    STORE = "store"
    IFETCH = "ifetch"
    TRANSLATION = "translation"
    PREFETCH = "prefetch"
    WRITEBACK = "writeback"


@dataclass
class MemoryRequest:
    """One memory access travelling through the cache hierarchy.

    ``cycle`` is the time the request is issued to the level currently
    processing it; levels advance it as the request descends.
    """

    address: int
    cycle: int
    ip: int = 0
    access_type: AccessType = AccessType.LOAD
    cpu: int = 0
    #: True when the corresponding address translation missed the STLB.
    is_replay: bool = False
    #: Page-table level being read (5..1); 1 is the leaf.  0 for data.
    pt_level: int = 0
    #: True when this PTE read is the walk's leaf level.  Level 1 is
    #: always a leaf; 2MB huge-page walks terminate at level 2.
    leaf_walk: bool = False
    #: For leaf translations: the physical line address of the replay load
    #: the translated page will be accessed with (PTW carries the upper six
    #: bits of the page offset, per Section IV of the paper).
    replay_line_addr: Optional[int] = None
    #: ATP/TEMPO prefetch fills are demoted to highest eviction priority.
    evict_priority: bool = False
    #: Set by a level that drops a prefetch (flooded prefetch queue): no
    #: data ever returns, so upstream levels must not install the line.
    dropped: bool = field(default=False, compare=False)
    #: Filled by the hierarchy: name of the level that served the request.
    served_by: str = field(default="", compare=False)

    @property
    def line_addr(self) -> int:
        return self.address >> LINE_SHIFT

    @property
    def is_translation(self) -> bool:
        return self.access_type is AccessType.TRANSLATION

    @property
    def is_leaf_translation(self) -> bool:
        return (self.access_type is AccessType.TRANSLATION
                and (self.pt_level == 1 or self.leaf_walk))

    @property
    def is_demand_data(self) -> bool:
        return self.access_type in (AccessType.LOAD, AccessType.STORE)

    def category(self) -> str:
        """Statistics bucket: ``translation`` / ``replay`` / ``non_replay`` /
        ``prefetch`` / ``writeback``."""
        if self.access_type is AccessType.TRANSLATION:
            return "translation"
        if self.access_type is AccessType.PREFETCH:
            return "prefetch"
        if self.access_type is AccessType.WRITEBACK:
            return "writeback"
        if self.access_type is AccessType.IFETCH:
            return "ifetch"
        return "replay" if self.is_replay else "non_replay"
