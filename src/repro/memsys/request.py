"""Memory request type shared by every level of the hierarchy.

A request is classified along the axes the paper cares about:

* **translation** -- a page-table-walker read of a PTE line.  Leaf-level
  translations (``pt_level == 1``) carry the information ATP needs to
  prefetch the corresponding replay line (``replay_line_addr``).
* **replay load** -- a demand load whose address translation missed the STLB
  and walked the page table (terminology from TEMPO).
* **non-replay load** -- a demand load whose translation hit the DTLB/STLB.

``MemoryRequest`` is deliberately *not* a dataclass: one is constructed
per cache probe on the innermost simulation path, so it is a ``__slots__``
class whose classification (line address, category, leaf-ness) is computed
once at construction instead of per property read.  The classifying inputs
(``address``, ``access_type``, ``is_replay``, ``pt_level``, ``leaf_walk``)
must not be mutated afterwards; the hierarchy only ever mutates ``cycle``,
``dropped``, ``served_by`` and ``evict_priority``.

Short-lived internal requests (writebacks, prefetch probes) can come from
the module-level free-list pool (:func:`acquire` / :func:`release`) to
avoid allocator churn; pooled requests must not escape the call that
acquired them.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.params import LINE_SHIFT


class AccessType(enum.Enum):
    """Demand class of a request, used for statistics and policy decisions."""

    LOAD = "load"
    STORE = "store"
    IFETCH = "ifetch"
    TRANSLATION = "translation"
    PREFETCH = "prefetch"
    WRITEBACK = "writeback"


_NON_DEMAND_CATEGORY = {
    AccessType.TRANSLATION: "translation",
    AccessType.PREFETCH: "prefetch",
    AccessType.WRITEBACK: "writeback",
    AccessType.IFETCH: "ifetch",
}

_LOAD = AccessType.LOAD
_STORE = AccessType.STORE


class MemoryRequest:
    """One memory access travelling through the cache hierarchy.

    ``cycle`` is the time the request is issued to the level currently
    processing it; levels advance it as the request descends.
    """

    __slots__ = ("address", "cycle", "ip", "access_type", "cpu", "is_replay",
                 "pt_level", "leaf_walk", "replay_line_addr",
                 "evict_priority", "dropped", "served_by",
                 "line_addr", "is_translation", "is_leaf_translation",
                 "is_demand_data", "_category")

    def __init__(self, address: int, cycle: int, ip: int = 0,
                 access_type: AccessType = _LOAD, cpu: int = 0,
                 is_replay: bool = False, pt_level: int = 0,
                 leaf_walk: bool = False,
                 replay_line_addr: Optional[int] = None,
                 evict_priority: bool = False):
        self.address = address
        self.cycle = cycle
        self.ip = ip
        self.access_type = access_type
        self.cpu = cpu
        #: True when the corresponding address translation missed the STLB.
        self.is_replay = is_replay
        #: Page-table level being read (5..1); 1 is the leaf.  0 for data.
        self.pt_level = pt_level
        #: True when this PTE read is the walk's leaf level.  Level 1 is
        #: always a leaf; 2MB huge-page walks terminate at level 2.
        self.leaf_walk = leaf_walk
        #: For leaf translations: the physical line address of the replay
        #: load the translated page will be accessed with (PTW carries the
        #: upper six bits of the page offset, per Section IV of the paper).
        self.replay_line_addr = replay_line_addr
        #: ATP/TEMPO prefetch fills are demoted to highest eviction priority.
        self.evict_priority = evict_priority
        #: Set by a level that drops a prefetch (flooded prefetch queue): no
        #: data ever returns, so upstream levels must not install the line.
        self.dropped = False
        #: Filled by the hierarchy: name of the level that served the request.
        self.served_by = ""
        # -- derived classification, computed once --------------------------
        self.line_addr = address >> LINE_SHIFT
        if access_type is _LOAD or access_type is _STORE:
            self.is_demand_data = True
            self.is_translation = False
            self.is_leaf_translation = False
            self._category = "replay" if is_replay else "non_replay"
        else:
            self.is_demand_data = False
            is_translation = access_type is AccessType.TRANSLATION
            self.is_translation = is_translation
            self.is_leaf_translation = (
                is_translation and (pt_level == 1 or leaf_walk))
            self._category = _NON_DEMAND_CATEGORY[access_type]

    def category(self) -> str:
        """Statistics bucket: ``translation`` / ``replay`` / ``non_replay`` /
        ``prefetch`` / ``writeback``."""
        return self._category

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MemoryRequest(address={self.address:#x}, "
                f"cycle={self.cycle}, type={self.access_type.value}, "
                f"category={self._category})")


#: Free list for short-lived internal requests (writebacks, prefetch
#: probes).  Bounded so a pathological burst cannot pin memory.
_POOL: List[MemoryRequest] = []
_POOL_LIMIT = 64


def acquire(address: int, cycle: int, ip: int = 0,
            access_type: AccessType = _LOAD,
            is_replay: bool = False, pt_level: int = 0,
            leaf_walk: bool = False,
            replay_line_addr: Optional[int] = None,
            evict_priority: bool = False) -> MemoryRequest:
    """A pooled request for traffic whose lifetime ends with the access
    call that created it.  Callers must :func:`release` it afterwards and
    must not retain references."""
    if _POOL:
        req = _POOL.pop()
        req.address = address
        req.cycle = cycle
        req.ip = ip
        req.access_type = access_type
        req.cpu = 0
        req.is_replay = is_replay
        req.pt_level = pt_level
        req.leaf_walk = leaf_walk
        req.replay_line_addr = replay_line_addr
        req.evict_priority = evict_priority
        req.dropped = False
        req.served_by = ""
        req.line_addr = address >> LINE_SHIFT
        if access_type is _LOAD or access_type is _STORE:
            req.is_demand_data = True
            req.is_translation = False
            req.is_leaf_translation = False
            req._category = "replay" if is_replay else "non_replay"
        else:
            req.is_demand_data = False
            is_translation = access_type is AccessType.TRANSLATION
            req.is_translation = is_translation
            req.is_leaf_translation = (
                is_translation and (pt_level == 1 or leaf_walk))
            req._category = _NON_DEMAND_CATEGORY[access_type]
        return req
    return MemoryRequest(address=address, cycle=cycle, ip=ip,
                         access_type=access_type, is_replay=is_replay,
                         pt_level=pt_level, leaf_walk=leaf_walk,
                         replay_line_addr=replay_line_addr,
                         evict_priority=evict_priority)


def release(req: MemoryRequest) -> None:
    """Return a request obtained from :func:`acquire` to the pool."""
    if len(_POOL) < _POOL_LIMIT:
        _POOL.append(req)
