"""DRAM model: order-tolerant bank/channel scheduling with open rows.

The simulator processes requests in *program order*, but their timestamps
are not monotonic -- a serial page-table walk runs hundreds of cycles ahead
of the next instruction's load.  A naive "bank free at T" scalar lets those
future requests block earlier ones, manufacturing queueing delay out of
thin air.  Instead, each bank keeps a short list of busy *intervals* and a
new request first-fits into the earliest gap at or after its arrival, so
requests that arrive "in the past" schedule in the past.

Row behaviour: a row hit pipelines at the bus rate (one CAS per burst) and
does not reserve the bank; a row miss occupies the bank for the full
precharge+activate window (tRC).  Channel bandwidth is modelled with
bucketed transfer counting, also order-insensitive.

TEMPO is hooked here: when a *leaf-level* translation read is serviced
from DRAM, the controller can immediately fetch the replay data line (see
:mod:`repro.prefetch.tempo`).
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional

from repro.params import DRAMConfig, LINE_SHIFT
from repro.memsys.request import MemoryRequest

#: Busy intervals older than this (relative to the latest arrival) are
#: pruned; arrivals more than a horizon in the past are rare.
_HORIZON = 8192
#: Channel-bandwidth accounting bucket width in cycles.
_BUCKET = 32


class _BankSchedule:
    """First-fit interval scheduler for one DRAM bank."""

    __slots__ = ("busy",)

    def __init__(self):
        self.busy: List[List[int]] = []  # sorted [start, end) pairs

    def reserve(self, cycle: int, duration: int) -> int:
        """Place a ``duration``-cycle occupancy at the earliest gap at or
        after ``cycle``; returns the start cycle."""
        t = cycle
        for s, e in self.busy:
            if e <= t:
                continue
            if s - t >= duration:
                break
            t = e
        bisect.insort(self.busy, [t, t + duration])
        if len(self.busy) > 64:
            cutoff = self.busy[-1][1] - _HORIZON
            self.busy = [iv for iv in self.busy if iv[1] >= cutoff]
        return t


class _ChannelBandwidth:
    """Bucketed transfer counting: cap transfers per _BUCKET cycles."""

    __slots__ = ("used", "cap", "latest")

    def __init__(self, bus_transfer_cycles: int):
        self.used: Dict[int, int] = {}
        self.cap = max(1, _BUCKET // bus_transfer_cycles)
        self.latest = 0

    def reserve(self, cycle: int) -> int:
        bucket = cycle // _BUCKET
        while self.used.get(bucket, 0) >= self.cap:
            bucket += 1
        self.used[bucket] = self.used.get(bucket, 0) + 1
        if cycle > self.latest:
            self.latest = cycle
            if len(self.used) > 4096:
                cutoff = cycle // _BUCKET - _HORIZON // _BUCKET
                self.used = {b: n for b, n in self.used.items()
                             if b >= cutoff}
        return max(cycle, bucket * _BUCKET)


class DRAM:
    """Single- or multi-channel DRAM with open-row banks."""

    def __init__(self, config: DRAMConfig):
        self.config = config
        n = config.channels * config.banks_per_channel
        self._open_row: List[Optional[int]] = [None] * n
        self._banks = [_BankSchedule() for _ in range(n)]
        self._channels = [_ChannelBandwidth(config.bus_transfer_cycles)
                          for _ in range(config.channels)]
        self.accesses = 0
        self.row_hits = 0
        self.row_misses = 0
        #: Optional callback fired after a leaf-translation read is serviced;
        #: used by the TEMPO prefetcher.  Signature: (request, done_cycle).
        self.on_leaf_translation: Optional[
            Callable[[MemoryRequest, int], None]] = None
        #: Request-level span tracer (None unless the run is traced).
        self.tracer = None

    def _map(self, line_addr: int) -> tuple:
        """Row-granular bank interleaving: consecutive lines stay in one
        row/bank (streams enjoy row hits); consecutive rows rotate across
        channels and banks (random traffic spreads out)."""
        cfg = self.config
        row = line_addr // (cfg.row_buffer_bytes >> LINE_SHIFT)
        channel = row % cfg.channels
        bank = (row // cfg.channels) % cfg.banks_per_channel
        return channel, bank, row

    def access(self, request: MemoryRequest) -> int:
        """Service ``request``; returns the cycle its data is available."""
        tracer = self.tracer
        span = None
        hits_before = self.row_hits
        if tracer is not None:
            span = tracer.begin("DRAM", request.cycle,
                                cat=request.category(),
                                line=request.line_addr)
        done = self._raw_access(request.line_addr, request.cycle)
        self.accesses += 1
        request.served_by = "DRAM"
        if request.is_leaf_translation and self.on_leaf_translation is not None:
            self.on_leaf_translation(request, done)
        if tracer is not None:
            tracer.end(span, done, served_by="DRAM",
                       row_hit=self.row_hits > hits_before)
        return done

    def _raw_access(self, line_addr: int, cycle: int) -> int:
        cfg = self.config
        channel, bank, row = self._map(line_addr)
        bank_idx = channel * cfg.banks_per_channel + bank

        start = self._channels[channel].reserve(cycle)
        if self._open_row[bank_idx] == row:
            # Row hit: pipelined at the bus rate; no bank reservation.
            self.row_hits += 1
            return start + cfg.row_hit_latency
        # Row miss: precharge + activate occupy the bank (tRC-like).
        self.row_misses += 1
        self._open_row[bank_idx] = row
        start = self._banks[bank_idx].reserve(start, cfg.row_miss_latency)
        return start + cfg.row_miss_latency

    def bandwidth_only_access(self, line_addr: int, cycle: int) -> int:
        """An access that consumes bandwidth but whose latency nobody waits
        on (ideal-cache modes forward misses this way)."""
        return self._raw_access(line_addr, cycle)

    def open_row_array(self):
        """Open-row state as an int64 array (-1 = no open row), indexed by
        flat bank id -- the array form :func:`row_hit_plan` consumes."""
        import numpy as np
        arr = np.full(len(self._open_row), -1, dtype=np.int64)
        for i, row in enumerate(self._open_row):
            if row is not None:
                arr[i] = row
        return arr


# ----------------------------------------------------------------------
# Array-form kernels (library surface for the batch backend)
# ----------------------------------------------------------------------
def map_lines(config: DRAMConfig, lines):
    """Vectorized :meth:`DRAM._map` over a line-address array.

    Returns ``(channel, bank_idx, row)`` int64 arrays, where ``bank_idx``
    is the flat bank id (``channel * banks_per_channel + bank``) used to
    index the open-row array.
    """
    import numpy as np
    lines = np.asarray(lines, dtype=np.int64)
    row = lines // (config.row_buffer_bytes >> LINE_SHIFT)
    channel = row % config.channels
    bank = (row // config.channels) % config.banks_per_channel
    return channel, channel * config.banks_per_channel + bank, row


def row_hit_plan(open_rows, bank_idx, rows):
    """Row hit/miss outcome of a request sequence, computed array-wise.

    The scalar controller's row outcome is *order-only* state: after every
    access the accessed row is the bank's open row (hits keep it open,
    misses replace it), so the hit/miss sequence depends on the per-bank
    access order alone -- never on timing.  That makes it computable for a
    whole batch at once: within each bank, an access is a hit iff its row
    equals the previous access's row (the first access compares against
    ``open_rows``).  Cross-access *timing* (interval scheduling, bandwidth
    buckets) is genuinely feedback-coupled and stays scalar.

    ``open_rows`` is the pre-batch state (:meth:`DRAM.open_row_array`
    form); ``bank_idx``/``rows`` come from :func:`map_lines` and are in
    request order.  Returns ``(hits, new_open)`` -- a bool mask in request
    order and the post-batch open-row array (input unmodified).
    """
    import numpy as np
    open_rows = np.asarray(open_rows, dtype=np.int64)
    bank_idx = np.asarray(bank_idx, dtype=np.int64)
    rows = np.asarray(rows, dtype=np.int64)
    n = int(rows.shape[0])
    new_open = open_rows.copy()
    if n == 0:
        return np.zeros(0, dtype=bool), new_open
    # Stable sort groups each bank's accesses while preserving request
    # order within the group, so "previous access to this bank" is just
    # the previous element of the group.
    order = np.argsort(bank_idx, kind="stable")
    b_sorted = bank_idx[order]
    r_sorted = rows[order]
    prev = np.empty(n, dtype=np.int64)
    prev[0] = open_rows[b_sorted[0]]
    same_bank = b_sorted[1:] == b_sorted[:-1]
    prev[1:] = np.where(same_bank, r_sorted[:-1], open_rows[b_sorted[1:]])
    hits_sorted = r_sorted == prev
    hits = np.empty(n, dtype=bool)
    hits[order] = hits_sorted
    # Last access per bank leaves its row open.
    is_last = np.ones(n, dtype=bool)
    is_last[:-1] = ~same_bank
    new_open[b_sorted[is_last]] = r_sorted[is_last]
    return hits, new_open
