"""DRAM model: order-tolerant bank/channel scheduling with open rows.

The simulator processes requests in *program order*, but their timestamps
are not monotonic -- a serial page-table walk runs hundreds of cycles ahead
of the next instruction's load.  A naive "bank free at T" scalar lets those
future requests block earlier ones, manufacturing queueing delay out of
thin air.  Instead, each bank keeps a short list of busy *intervals* and a
new request first-fits into the earliest gap at or after its arrival, so
requests that arrive "in the past" schedule in the past.

Row behaviour: a row hit pipelines at the bus rate (one CAS per burst) and
does not reserve the bank; a row miss occupies the bank for the full
precharge+activate window (tRC).  Channel bandwidth is modelled with
bucketed transfer counting, also order-insensitive.

TEMPO is hooked here: when a *leaf-level* translation read is serviced
from DRAM, the controller can immediately fetch the replay data line (see
:mod:`repro.prefetch.tempo`).
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional

from repro.params import DRAMConfig, LINE_SHIFT
from repro.memsys.request import MemoryRequest

#: Busy intervals older than this (relative to the latest arrival) are
#: pruned; arrivals more than a horizon in the past are rare.
_HORIZON = 8192
#: Channel-bandwidth accounting bucket width in cycles.
_BUCKET = 32


class _BankSchedule:
    """First-fit interval scheduler for one DRAM bank."""

    __slots__ = ("busy",)

    def __init__(self):
        self.busy: List[List[int]] = []  # sorted [start, end) pairs

    def reserve(self, cycle: int, duration: int) -> int:
        """Place a ``duration``-cycle occupancy at the earliest gap at or
        after ``cycle``; returns the start cycle."""
        t = cycle
        for s, e in self.busy:
            if e <= t:
                continue
            if s - t >= duration:
                break
            t = e
        bisect.insort(self.busy, [t, t + duration])
        if len(self.busy) > 64:
            cutoff = self.busy[-1][1] - _HORIZON
            self.busy = [iv for iv in self.busy if iv[1] >= cutoff]
        return t


class _ChannelBandwidth:
    """Bucketed transfer counting: cap transfers per _BUCKET cycles."""

    __slots__ = ("used", "cap", "latest")

    def __init__(self, bus_transfer_cycles: int):
        self.used: Dict[int, int] = {}
        self.cap = max(1, _BUCKET // bus_transfer_cycles)
        self.latest = 0

    def reserve(self, cycle: int) -> int:
        bucket = cycle // _BUCKET
        while self.used.get(bucket, 0) >= self.cap:
            bucket += 1
        self.used[bucket] = self.used.get(bucket, 0) + 1
        if cycle > self.latest:
            self.latest = cycle
            if len(self.used) > 4096:
                cutoff = cycle // _BUCKET - _HORIZON // _BUCKET
                self.used = {b: n for b, n in self.used.items()
                             if b >= cutoff}
        return max(cycle, bucket * _BUCKET)


class DRAM:
    """Single- or multi-channel DRAM with open-row banks."""

    def __init__(self, config: DRAMConfig):
        self.config = config
        n = config.channels * config.banks_per_channel
        self._open_row: List[Optional[int]] = [None] * n
        self._banks = [_BankSchedule() for _ in range(n)]
        self._channels = [_ChannelBandwidth(config.bus_transfer_cycles)
                          for _ in range(config.channels)]
        self.accesses = 0
        self.row_hits = 0
        self.row_misses = 0
        #: Optional callback fired after a leaf-translation read is serviced;
        #: used by the TEMPO prefetcher.  Signature: (request, done_cycle).
        self.on_leaf_translation: Optional[
            Callable[[MemoryRequest, int], None]] = None
        #: Request-level span tracer (None unless the run is traced).
        self.tracer = None

    def _map(self, line_addr: int) -> tuple:
        """Row-granular bank interleaving: consecutive lines stay in one
        row/bank (streams enjoy row hits); consecutive rows rotate across
        channels and banks (random traffic spreads out)."""
        cfg = self.config
        row = line_addr // (cfg.row_buffer_bytes >> LINE_SHIFT)
        channel = row % cfg.channels
        bank = (row // cfg.channels) % cfg.banks_per_channel
        return channel, bank, row

    def access(self, request: MemoryRequest) -> int:
        """Service ``request``; returns the cycle its data is available."""
        tracer = self.tracer
        span = None
        hits_before = self.row_hits
        if tracer is not None:
            span = tracer.begin("DRAM", request.cycle,
                                cat=request.category(),
                                line=request.line_addr)
        done = self._raw_access(request.line_addr, request.cycle)
        self.accesses += 1
        request.served_by = "DRAM"
        if request.is_leaf_translation and self.on_leaf_translation is not None:
            self.on_leaf_translation(request, done)
        if tracer is not None:
            tracer.end(span, done, served_by="DRAM",
                       row_hit=self.row_hits > hits_before)
        return done

    def _raw_access(self, line_addr: int, cycle: int) -> int:
        cfg = self.config
        channel, bank, row = self._map(line_addr)
        bank_idx = channel * cfg.banks_per_channel + bank

        start = self._channels[channel].reserve(cycle)
        if self._open_row[bank_idx] == row:
            # Row hit: pipelined at the bus rate; no bank reservation.
            self.row_hits += 1
            return start + cfg.row_hit_latency
        # Row miss: precharge + activate occupy the bank (tRC-like).
        self.row_misses += 1
        self._open_row[bank_idx] = row
        start = self._banks[bank_idx].reserve(start, cfg.row_miss_latency)
        return start + cfg.row_miss_latency

    def bandwidth_only_access(self, line_addr: int, cycle: int) -> int:
        """An access that consumes bandwidth but whose latency nobody waits
        on (ideal-cache modes forward misses this way)."""
        return self._raw_access(line_addr, cycle)
