"""Memory-system primitives: requests, MSHRs, and the DRAM model."""

from repro.memsys.request import AccessType, MemoryRequest
from repro.memsys.mshr import MSHR
from repro.memsys.dram import DRAM

__all__ = ["AccessType", "MemoryRequest", "MSHR", "DRAM"]
