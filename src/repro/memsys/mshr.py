"""Miss-status-holding registers.

Two jobs, both essential to the timing model:

* **Merging** -- requests to a line whose fill is already in flight get the
  outstanding fill's completion time instead of a duplicate downstream
  access.  This is also how a replay demand rides an in-flight ATP
  prefetch.
* **Admission throttling** -- a full MSHR delays the *start* of a new miss
  until a slot frees.  This caps memory-level parallelism exactly the way
  real L1D/L2C MSHRs do, so DRAM sees a throttled arrival stream rather
  than the whole ROB's misses at once.

Entries are retired lazily: an entry whose fill time is at or before the
probing request's cycle has completed and frees its slot.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Sentinel fill-time watermark for an empty table.
_NEVER = float("inf")


class MSHR:
    """A bounded table of ``line_addr -> fill_completion_cycle``."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError("MSHR needs at least one entry")
        self.entries = entries
        self._inflight: Dict[int, int] = {}
        #: Lower bound on the earliest in-flight fill time: lets _expire
        #: skip its scan when provably nothing has completed yet.  Stale
        #: (too low) after an overwrite removes the true minimum, which
        #: only costs a wasted scan, never a missed expiry.
        self._min_fill = _NEVER
        self.merges = 0
        self.allocations = 0
        #: Entries retired because their fill time passed (conservation:
        #: allocations - expirations == live entries).
        self.expirations = 0
        #: Peak simultaneous occupancy observed (bandwidth proxy).
        self.peak_occupancy = 0
        #: Total cycles of admission delay injected (congestion proxy).
        self.admission_stall_cycles = 0
        #: Request-level span tracer (None unless the run is traced);
        #: ``component`` labels which cache's MSHR this is in trace output.
        self.tracer = None
        self.component = ""

    def _expire(self, now: int) -> None:
        if self._min_fill > now:
            return
        inflight = self._inflight
        done = [line for line, t in inflight.items() if t <= now]
        for line in done:
            del inflight[line]
        self.expirations += len(done)
        self._min_fill = min(inflight.values(), default=_NEVER)

    def lookup(self, line_addr: int, now: int) -> Optional[int]:
        """Return the fill cycle if ``line_addr`` is still in flight."""
        fill = self._inflight.get(line_addr)
        if fill is not None and fill > now:
            self.merges += 1
            if self.tracer is not None:
                self.tracer.instant("mshr_merge", now, cat="mshr",
                                    component=self.component,
                                    line=line_addr, fill=fill)
            return fill
        return None

    def admission_delay(self, now: int) -> int:
        """Cycles until a demand miss may enter the MSHR at ``now``.

        When the table is full of pending fills, the miss waits for the
        earliest outstanding fill to complete.  The entry is *not* deleted:
        its fill may still be in flight, and later requests to that line
        must keep merging with it (it expires lazily once its fill time
        passes, as documented above).

        When prefetch entries have pushed the table past ``entries``,
        waiting for the single earliest fill is not enough: the wait must
        cover as many completions as it takes for a slot to be genuinely
        free.  None of those entries are deleted here -- their fills may
        still be in flight and must keep merging."""
        # NOTE: the _expire sweep must run even when the table has spare
        # raw capacity.  Requests arrive with non-monotonic cycles, so an
        # entry deleted here can no longer merge with a *later* request
        # probing an *earlier* cycle -- skipping the sweep when
        # len(_inflight) < entries measurably changes merge and occupancy
        # outcomes (it is not a pure optimisation).  The sweep is inlined
        # (== _expire) because this is the hottest MSHR entry point.
        inflight = self._inflight
        if self._min_fill <= now:
            done = [line for line, t in inflight.items() if t <= now]
            for line in done:
                del inflight[line]
            self.expirations += len(done)
            self._min_fill = min(inflight.values(), default=_NEVER)
        over = len(inflight) - self.entries
        if over < 0:
            return 0
        # The (over+1)-th earliest fill completing frees the first slot.
        fills = sorted(self._inflight.values())
        delay = max(0, fills[over] - now)
        self.admission_stall_cycles += delay
        if delay and self.tracer is not None:
            self.tracer.complete("mshr_wait", now, now + delay, cat="mshr",
                                 component=self.component)
        return delay

    def allocate(self, line_addr: int, fill_cycle: int, now: int) -> int:
        """Record an outstanding fill (admission already granted)."""
        self._record(line_addr, fill_cycle, now)
        return fill_cycle

    def allocate_prefetch(self, line_addr: int, fill_cycle: int,
                          now: int) -> int:
        """Track a prefetch fill without consuming demand capacity.

        Real designs hold prefetches in a separate prefetch queue; merging
        a later demand with an in-flight prefetch is exactly the mechanism
        ATP relies on, so the fill must be visible to :meth:`lookup`.
        """
        self._record(line_addr, fill_cycle, now)
        return fill_cycle

    def _record(self, line_addr: int, fill_cycle: int, now: int) -> None:
        """Insert one fill.  Entries are NOT eagerly expired here --
        requests may arrive with out-of-order cycles and must keep merging
        with fills that are live at *their* time -- so a stale entry being
        overwritten retires here, and the peak counts only fills actually
        in flight at ``now`` (stale leftovers are bookkeeping, not
        occupied slots)."""
        if line_addr in self._inflight:
            self.expirations += 1
        self._inflight[line_addr] = fill_cycle
        if fill_cycle < self._min_fill:
            self._min_fill = fill_cycle
        self.allocations += 1
        # Live occupancy never exceeds the raw table size, so the O(n)
        # live count only runs when the size beats the recorded peak.
        if len(self._inflight) > self.peak_occupancy:
            occ = self.occupancy(now)
            if fill_cycle <= now:  # degenerate same-cycle fill held a slot
                occ += 1
            if occ > self.peak_occupancy:
                self.peak_occupancy = occ

    def occupancy(self, now: int) -> int:
        return sum(1 for t in self._inflight.values() if t > now)

    # ------------------------------------------------------------------
    # Bulk kernels (library surface for the batch backend)
    # ------------------------------------------------------------------
    def bulk_lookup(self, lines, now: int):
        """Array-form merge preview over the current table, side-effect
        free: no merge counters, no tracer events, no expiry.

        Returns an int64 array of fill cycles (-1 where ``lines[i]`` has
        no live fill at ``now``) -- element ``i`` equals what
        :meth:`lookup` *would* return for ``(lines[i], now)``, making the
        kernel directly property-testable against the scalar method.
        The batch engine does not drive admission through this (admission
        interleaves expiry sweeps with out-of-order arrival cycles, and
        ``peak_occupancy`` samples depend on per-request sweep points);
        it exists for whole-cohort merge analysis where the table is
        known not to change across the batch.
        """
        import numpy as np
        get = self._inflight.get
        out = np.empty(len(lines), dtype=np.int64)
        for i, line in enumerate(lines):
            fill = get(line)
            out[i] = fill if (fill is not None and fill > now) else -1
        return out

    def bulk_expire(self, now: int) -> int:
        """Retire every entry whose fill time has passed ``now``; returns
        the number retired.  Equivalent to the :meth:`_expire` sweep --
        and deliberately NOT called by the batch engine between windows:
        the scalar model expires lazily at *per-request* probe points, so
        an eager sweep changes which stale entries later out-of-order
        requests can still merge with (see the NOTE in
        :meth:`admission_delay`).
        """
        before = len(self._inflight)
        self._expire(now)
        return before - len(self._inflight)
