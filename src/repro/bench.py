"""Timed performance benchmark harness (``python -m repro bench``).

Measures end-to-end simulation throughput (hierarchy accesses per
second) over a **pinned workload matrix** and emits a schema-stable
``BENCH_<date>.json`` document.  The matrix is part of the harness
contract: scale-16 memory-intensive configurations at 200K-instruction
ROIs, which keep the measurement dominated by the simulation kernel
(cache/TLB/walker/MSHR datapath) rather than by trace generation or
setup.  See ``docs/performance.md`` for usage, the baseline-updating
procedure, and the optimisation inventory behind the current numbers.

Regression gating compares against the committed baseline at
``benchmarks/perf/baseline.json``.  Raw accesses/sec is not portable
across machines, so the baseline also records a pure-Python
*calibration* score measured at baseline time; at check time the
calibration is re-measured and the expected throughput is scaled by the
machine-speed ratio before the threshold is applied.
"""

from __future__ import annotations

import json
import math
import platform
import resource
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import run_benchmark
from repro.obs import Profiler
from repro.params import default_config, paper_config

#: Schema identifier written into every bench document.
BENCH_SCHEMA = "repro.bench/v1"

#: Regression gate: fail when aggregate accesses/sec drops more than
#: this fraction below the (machine-speed-scaled) baseline.
REGRESSION_THRESHOLD = 0.15

#: Workloads whose numpy entry must keep pace with its python twin
#: (intra-document simulate-phase comparison; see :func:`vector_parity`).
VECTOR_PARITY_WORKLOADS = ("pr",)

#: Ceiling on the vectorized backend's fallback rate for the gated
#: workloads: the batch path must actually engage, not silently route
#: to the scalar core and coast on its numbers.
FALLBACK_RATE_LIMIT = 0.05


@dataclass(frozen=True)
class BenchCase:
    """One pinned configuration of the benchmark matrix."""

    benchmark: str
    enhancements: str = "none"
    scale: int = 16
    instructions: int = 200_000
    warmup: int = 20_000
    #: Execution backend (``SimConfig.backend``): the scalar reference
    #: core or the vectorized batch core.
    backend: str = "python"

    @property
    def key(self) -> str:
        return (f"{self.benchmark}/{self.enhancements}"
                f"/s{self.scale}/{self.instructions}/{self.backend}")


#: The pinned matrix.  Memory-pressure workloads at reduced scale: small
#: caches keep miss/eviction/walk rates high, so the run exercises the
#: flat-store datapath, the MSHRs, the page-table walker and the
#: recall trackers rather than idling in hit loops.  ``compute`` is the
#: hit-friendly counterweight where the ``numpy`` backend's fast path
#: engages most (see docs/performance.md for the per-backend numbers).
#: Every entry runs under both backends so the regression gate covers
#: the vectorized core too.  Changing this list invalidates the
#: committed baseline (see docs/performance.md).
WORKLOAD_MATRIX: Tuple[BenchCase, ...] = (
    BenchCase("pr"),
    BenchCase("radii"),
    BenchCase("canneal"),
    BenchCase("compute"),
    BenchCase("pr", backend="numpy"),
    BenchCase("radii", backend="numpy"),
    BenchCase("canneal", backend="numpy"),
    BenchCase("compute", backend="numpy"),
)


@dataclass
class BenchResult:
    """Outcome of one harness invocation (see :func:`run_bench`)."""

    document: Dict = field(repr=False)
    path: Optional[Path] = None

    @property
    def accesses_per_sec(self) -> float:
        return self.document["aggregate"]["accesses_per_sec"]

    @property
    def wall_s(self) -> float:
        return self.document["aggregate"]["wall_s"]

    def compare(self, baseline: Dict,
                threshold: float = REGRESSION_THRESHOLD) -> Dict:
        """Regression verdict against a baseline document."""
        return compare_to_baseline(self.document, baseline,
                                   threshold=threshold)


#: Shortest wall time a calibration pass may take and still be trusted:
#: below this the measurement is dominated by timer resolution and the
#: resulting ops/sec (and hence the scaled regression floor) is garbage.
MIN_CALIBRATION_SECONDS = 1e-3

#: Any genuine interpreter manages far more than this; a score below it
#: means the measurement (or a recorded baseline) is degenerate.
MIN_CREDIBLE_CALIBRATION = 1e3


def _calibration_pass(iterations: int) -> float:
    """One timed run of the calibration loop; returns the wall seconds."""
    table: Dict[int, int] = {}
    t0 = time.perf_counter()
    acc = 0
    for i in range(iterations):
        key = (i * 0x9E3779B9) & 0xFFFF
        hit = table.get(key)
        if hit is None:
            table[key] = i
        else:
            acc += hit & 7
        if len(table) > 4096:
            table.clear()
    return time.perf_counter() - t0


def calibrate(iterations: int = 400_000) -> float:
    """Machine-speed score: dict/arithmetic ops per second.

    The loop mirrors the simulator's hot-path instruction mix (dict
    probes, integer arithmetic, attribute-free bookkeeping), so its
    score tracks how fast *this* interpreter/machine runs the kernel.

    Passes shorter than :data:`MIN_CALIBRATION_SECONDS` (possible with a
    tiny ``iterations`` or a coarse ``perf_counter``) are retried with a
    4x larger loop rather than divided through -- a sub-resolution delta
    would otherwise yield a zero division or a nonsense score that
    silently corrupts the regression gate.
    """
    its = max(1, int(iterations))
    dt = 0.0
    for _ in range(8):
        dt = _calibration_pass(its)
        if dt >= MIN_CALIBRATION_SECONDS:
            return its / dt
        its *= 4
    raise RuntimeError(
        f"calibration unmeasurable: {its // 4} iterations completed in "
        f"{dt:.3e}s (below the {MIN_CALIBRATION_SECONDS}s timer floor); "
        f"refusing to produce a machine-speed score")


def _run_case(case: BenchCase, repeats: int) -> Dict:
    """Run one matrix entry ``repeats`` times; keep the fastest wall."""
    cfg = paper_config() if case.scale == 1 else default_config(case.scale)
    if case.enhancements != "none":
        cfg = cfg.with_(enhancements=case.enhancements)
    if case.backend != "python":
        cfg = cfg.with_(backend=case.backend)
    best: Optional[Dict] = None
    for _ in range(max(1, repeats)):
        profiler = Profiler()
        t0 = time.perf_counter()
        result = run_benchmark(case.benchmark, config=cfg,
                               instructions=case.instructions,
                               warmup=case.warmup, scale=case.scale,
                               profiler=profiler)
        wall = time.perf_counter() - t0
        accesses = result.hierarchy.loads + result.hierarchy.stores
        phases = profiler.snapshot()
        entry = {
            "benchmark": case.benchmark,
            "enhancements": case.enhancements,
            "scale": case.scale,
            "instructions": case.instructions,
            "warmup": case.warmup,
            "backend": case.backend,
            "wall_s": round(wall, 4),
            "accesses": accesses,
            "accesses_per_sec": round(accesses / wall, 1),
            "ipc": round(result.ipc, 4),
            "cycles": result.cycles,
            # Per-component wall split: workload trace generation,
            # hierarchy/core construction, and the simulation kernel.
            "phases": {name: round(seconds, 4)
                       for name, seconds in phases.items()},
            # BatchStats of the vectorized backend (None on scalar
            # runs): lets the gate assert engagement, not just speed.
            "batch": (result.batch.to_dict()
                      if result.batch is not None else None),
        }
        if best is None or entry["wall_s"] < best["wall_s"]:
            best = entry
    return best


def run_bench(matrix: Sequence[BenchCase] = WORKLOAD_MATRIX,
              repeats: int = 1,
              out_dir=None,
              calibrate_machine: bool = True) -> BenchResult:
    """Run the pinned matrix; return (and optionally write) the document.

    ``repeats`` re-runs each configuration and keeps the fastest wall
    time (min-of-N is the standard noise reducer for throughput
    benchmarks).  ``out_dir`` writes ``BENCH_<UTC date>.json`` there.
    The document is schema-stable: top-level keys and per-config fields
    only grow, never change meaning, within ``repro.bench/v1``.
    """
    configs: List[Dict] = []
    total_wall = 0.0
    total_accesses = 0
    per_backend: Dict[str, Dict[str, float]] = {}
    for case in matrix:
        entry = _run_case(case, repeats)
        configs.append(entry)
        total_wall += entry["wall_s"]
        total_accesses += entry["accesses"]
        acc = per_backend.setdefault(case.backend,
                                     {"wall_s": 0.0, "accesses": 0})
        acc["wall_s"] += entry["wall_s"]
        acc["accesses"] += entry["accesses"]
    by_backend = {
        backend: {
            "wall_s": round(acc["wall_s"], 4),
            "accesses": acc["accesses"],
            "accesses_per_sec": round(acc["accesses"] / acc["wall_s"], 1),
        }
        for backend, acc in sorted(per_backend.items())}
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    document = {
        "schema": BENCH_SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": max(1, repeats),
        "calibration_ops_per_sec": (round(calibrate(), 1)
                                    if calibrate_machine else None),
        "configs": configs,
        "aggregate": {
            "wall_s": round(total_wall, 4),
            "accesses": total_accesses,
            "accesses_per_sec": round(total_accesses / total_wall, 1),
            "peak_rss_kb": peak_rss_kb,
            # Per-execution-backend breakdown, so the regression gate
            # can hold the vectorized core to the same floor as the
            # scalar reference (absent from pre-backend baselines).
            "by_backend": by_backend,
        },
    }
    path = None
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%d", time.gmtime())
        path = out / f"BENCH_{stamp}.json"
        path.write_text(json.dumps(document, indent=1) + "\n")
    return BenchResult(document=document, path=path)


# ----------------------------------------------------------------------
# Baseline handling
# ----------------------------------------------------------------------
def baseline_path() -> Path:
    """The committed baseline location (repo checkouts only)."""
    return (Path(__file__).resolve().parents[2]
            / "benchmarks" / "perf" / "baseline.json")


def load_baseline(path=None) -> Dict:
    p = Path(path) if path is not None else baseline_path()
    with open(p) as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{p}: not a {BENCH_SCHEMA} document")
    return doc


def _check_calibration(score, which: str) -> None:
    """Reject calibration scores that would corrupt the machine ratio."""
    ok = (isinstance(score, (int, float)) and math.isfinite(score)
          and score >= MIN_CREDIBLE_CALIBRATION)
    if not ok:
        raise ValueError(
            f"degenerate {which} calibration score {score!r} (expected a "
            f"finite value >= {MIN_CREDIBLE_CALIBRATION}); re-record it "
            f"with repro.bench.calibrate()")


def vector_parity(document: Dict,
                  threshold: float = REGRESSION_THRESHOLD) -> Dict:
    """Intra-document vectorized-backend gates (no baseline needed).

    For each workload in :data:`VECTOR_PARITY_WORKLOADS` that the
    document ran under both backends, two conditions:

    * **speed floor** -- the numpy entry's simulate-phase wall must be
      at least 1.0x the python entry's, minus the gate's noise
      tolerance (``threshold``); the comparison is within one document,
      so machine-speed scaling is unnecessary;
    * **engagement** -- the numpy entry's ``batch`` record must show
      drained windows with a fallback rate below
      :data:`FALLBACK_RATE_LIMIT` (a backend that falls back to the
      scalar core would trivially pass the speed floor).

    Workloads missing either backend entry are skipped, so pre-backend
    documents gate on the aggregate alone.
    """
    by_key = {(c["benchmark"], c.get("backend", "python")): c
              for c in document["configs"]}
    workloads = {}
    ok = True
    for bench in VECTOR_PARITY_WORKLOADS:
        scalar = by_key.get((bench, "python"))
        vector = by_key.get((bench, "numpy"))
        if scalar is None or vector is None:
            continue
        s_sim = (scalar.get("phases") or {}).get("simulate",
                                                 scalar["wall_s"])
        v_sim = (vector.get("phases") or {}).get("simulate",
                                                 vector["wall_s"])
        speedup = s_sim / v_sim if v_sim else 0.0
        floor = 1.0 * (1.0 - threshold)
        batch = vector.get("batch") or {}
        windows = int(batch.get("windows") or 0)
        refused = sum((batch.get("fallbacks") or {}).values())
        rate = (refused / (windows + refused)
                if windows + refused else 1.0)
        entry_ok = (speedup >= floor and windows > 0
                    and rate < FALLBACK_RATE_LIMIT)
        workloads[bench] = {
            "ok": entry_ok,
            "speedup": round(speedup, 3),
            "floor": round(floor, 3),
            "windows": windows,
            "fallback_rate": round(rate, 4),
        }
        ok = ok and entry_ok
    return {"ok": ok, "workloads": workloads}


def compare_to_baseline(document: Dict, baseline: Dict,
                        threshold: float = REGRESSION_THRESHOLD) -> Dict:
    """Regression verdict: current vs. baseline aggregate throughput.

    When both documents carry a calibration score, the baseline
    throughput is scaled by the machine-speed ratio first, making the
    gate meaningful on hardware other than where the baseline was
    recorded.  Returns a dict with ``ok`` plus the numbers behind it.

    Degenerate inputs fail loudly (:class:`ValueError`) instead of
    skewing the gate: a near-zero current calibration would scale the
    floor to ~0 and pass everything; a near-zero baseline calibration
    (or a non-positive baseline throughput) would fail or pass
    everything regardless of the code under test.
    """
    current = document["aggregate"]["accesses_per_sec"]
    recorded = baseline["aggregate"]["accesses_per_sec"]
    if not (isinstance(recorded, (int, float)) and recorded > 0):
        raise ValueError(
            f"degenerate baseline: aggregate accesses_per_sec is "
            f"{recorded!r}; the regression floor would be meaningless")
    cal_now = document.get("calibration_ops_per_sec")
    cal_then = baseline.get("calibration_ops_per_sec")
    machine_ratio = None
    expected = recorded
    if cal_now is not None and cal_then is not None:
        _check_calibration(cal_now, "document")
        _check_calibration(cal_then, "baseline")
        machine_ratio = cal_now / cal_then
        expected = recorded * machine_ratio
    floor = expected * (1.0 - threshold)

    def _identity(cfg: Dict) -> Tuple[str, str]:
        # Pre-backend documents carry no "backend" field; they ran the
        # scalar reference core.
        return cfg["benchmark"], cfg.get("backend", "python")

    mismatched = [_identity(c) for c in document["configs"]] != \
                 [_identity(c) for c in baseline["configs"]]

    # Per-backend floors: when both documents break the aggregate down
    # by execution backend, each backend must clear its own scaled
    # floor -- a vectorized-core regression can't hide behind a fast
    # scalar run (or vice versa).  Baselines predating the backend
    # split skip this and gate on the aggregate alone.
    backends = {}
    backends_ok = True
    doc_bb = document["aggregate"].get("by_backend") or {}
    base_bb = baseline["aggregate"].get("by_backend") or {}
    for backend in sorted(set(doc_bb) & set(base_bb)):
        b_recorded = base_bb[backend]["accesses_per_sec"]
        b_expected = b_recorded * (machine_ratio
                                   if machine_ratio is not None else 1.0)
        b_floor = b_expected * (1.0 - threshold)
        b_current = doc_bb[backend]["accesses_per_sec"]
        b_ok = b_current >= b_floor
        backends_ok = backends_ok and b_ok
        backends[backend] = {
            "ok": b_ok,
            "current_aps": b_current,
            "baseline_aps": b_recorded,
            "floor_aps": round(b_floor, 1),
        }
    vector = vector_parity(document, threshold=threshold)
    return {
        "ok": (current >= floor and backends_ok and not mismatched
               and vector["ok"]),
        "current_aps": current,
        "baseline_aps": recorded,
        "machine_ratio": machine_ratio,
        "expected_aps": round(expected, 1),
        "floor_aps": round(floor, 1),
        "threshold": threshold,
        "matrix_mismatch": mismatched,
        "backends": backends,
        "vector": vector,
    }


def add_arguments(parser) -> None:
    """Register the bench CLI options (shared by ``python -m repro
    bench`` and standalone invocation)."""
    parser.add_argument("--out", metavar="DIR", default=".",
                        help="directory for BENCH_<date>.json "
                             "(default: current directory)")
    parser.add_argument("--repeats", type=int, default=1, metavar="N",
                        help="runs per config; fastest wall is kept")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline document to compare against "
                             "(default: benchmarks/perf/baseline.json)")
    parser.add_argument("--check-regression", action="store_true",
                        help="exit non-zero when aggregate throughput "
                             f"drops >{REGRESSION_THRESHOLD:.0%} below "
                             "the (machine-scaled) baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write this run as the committed baseline")


def cmd_bench(args) -> int:
    """CLI body for ``python -m repro bench``."""
    result = run_bench(repeats=args.repeats, out_dir=args.out)
    doc = result.document
    for entry in doc["configs"]:
        print(f"{entry['benchmark']:>10}/{entry['enhancements']}"
              f"/s{entry['scale']}/{entry['instructions']}"
              f"/{entry.get('backend', 'python')}: "
              f"{entry['accesses_per_sec']:>9.0f} acc/s "
              f"({entry['wall_s']:.2f}s wall, "
              f"sim {entry['phases'].get('simulate', 0.0):.2f}s, "
              f"trace {entry['phases'].get('trace', 0.0):.2f}s)")
    agg = doc["aggregate"]
    print(f"{'AGGREGATE':>10}: {agg['accesses_per_sec']:>9.0f} acc/s "
          f"({agg['wall_s']:.2f}s wall, {agg['accesses']} accesses, "
          f"peak RSS {agg['peak_rss_kb']} kB)")
    for backend, entry in agg.get("by_backend", {}).items():
        print(f"{backend:>10}: {entry['accesses_per_sec']:>9.0f} acc/s "
              f"({entry['wall_s']:.2f}s wall)")
    if result.path is not None:
        print(f"wrote {result.path}")

    if args.update_baseline:
        target = Path(args.baseline) if args.baseline else baseline_path()
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(doc, indent=1) + "\n")
        print(f"baseline updated: {target}")
        return 0

    baseline_file = Path(args.baseline) if args.baseline else baseline_path()
    if baseline_file.exists():
        verdict = compare_to_baseline(doc, load_baseline(baseline_file))
        scale_note = (f" (machine x{verdict['machine_ratio']:.2f})"
                      if verdict["machine_ratio"] else "")
        status = "OK" if verdict["ok"] else "REGRESSION"
        print(f"baseline   : {verdict['baseline_aps']:.0f} acc/s"
              f"{scale_note} -> floor {verdict['floor_aps']:.0f}; "
              f"current {verdict['current_aps']:.0f} [{status}]")
        for backend, sub in verdict["backends"].items():
            sub_status = "OK" if sub["ok"] else "REGRESSION"
            print(f"  {backend:>9}: floor {sub['floor_aps']:.0f}; "
                  f"current {sub['current_aps']:.0f} [{sub_status}]")
        for bench, sub in verdict["vector"]["workloads"].items():
            sub_status = "OK" if sub["ok"] else "REGRESSION"
            print(f"  vector/{bench}: numpy {sub['speedup']:.2f}x python "
                  f"(floor {sub['floor']:.2f}x), "
                  f"{sub['windows']} windows, "
                  f"fallback rate {sub['fallback_rate']:.1%} "
                  f"[{sub_status}]")
        if args.check_regression and not verdict["ok"]:
            return 1
    elif args.check_regression:
        print(f"no baseline at {baseline_file}; cannot check", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(prog="repro bench")
    add_arguments(parser)
    return cmd_bench(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
