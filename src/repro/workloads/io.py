"""Trace persistence: save/load traces as compressed ``.npz`` files.

The on-disk format mirrors a ChampSim trace at the abstraction level this
simulator consumes: parallel int arrays for instruction pointers, kinds
and virtual addresses, plus the trace name.  Useful for pinning a
workload across experiments or shipping a regression input.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.workloads.trace import Trace

#: Format marker stored in every trace file.
FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Write ``trace`` to ``path`` (``.npz``, compressed)."""
    np.savez_compressed(
        path, version=np.int64(FORMAT_VERSION),
        name=np.bytes_(trace.name.encode("utf-8")),
        ips=trace.ips, kinds=trace.kinds, addrs=trace.addrs,
        deps=trace.deps)


def load_trace(path: Union[str, os.PathLike]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        name = bytes(data["name"]).decode("utf-8")
        deps = data["deps"] if "deps" in data.files else None
        return Trace(data["ips"], data["kinds"], data["addrs"], name=name,
                     deps=deps)
