"""Workload generation: synthetic traces modelling the paper's nine
irregular memory-intensive benchmarks (SPEC CPU2017, PARSEC, Ligra)."""

from repro.workloads.trace import (Trace, KIND_NONMEM, KIND_LOAD, KIND_STORE)
from repro.workloads.synthetic import SyntheticWorkload, PatternMix
from repro.workloads.registry import (BENCHMARKS, benchmark, benchmark_names,
                                      make_trace, TABLE2_REFERENCE)
from repro.workloads.io import save_trace, load_trace
from repro.workloads.mix import (ARRIVAL_KINDS, MixComponent, apportion,
                                 derive_seed, interleave_traces)
from repro.workloads import analysis

__all__ = ["Trace", "KIND_NONMEM", "KIND_LOAD", "KIND_STORE",
           "SyntheticWorkload", "PatternMix", "BENCHMARKS", "benchmark",
           "benchmark_names", "make_trace", "TABLE2_REFERENCE",
           "save_trace", "load_trace", "analysis",
           "ARRIVAL_KINDS", "MixComponent", "apportion", "derive_seed",
           "interleave_traces"]
