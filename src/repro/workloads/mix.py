"""Deterministic multi-workload trace interleaving (the traffic-mix
engine behind :mod:`repro.scenarios`).

A *mix* is a weighted set of components -- registry benchmarks or inline
:class:`~repro.workloads.synthetic.PatternMix` specs -- whose individual
traces are generated independently and then woven into one instruction
stream by an *arrival process*:

* ``uniform`` -- fixed-size quanta, round-robin-ish weighted draws (a
  fair scheduler);
* ``poisson`` -- exponentially distributed quantum lengths (open-loop
  arrivals, the default for production-like mixes);
* ``bursty``  -- two-state on/off bursts: long monopolising runs from
  one component interleaved with fine-grained sharing.

Determinism contract (see ``docs/scenarios.md``): every random draw in
this module comes from an explicitly seeded generator derived from the
caller's seed via :func:`derive_seed` (stable SHA-256 splitting -- never
Python's salted ``hash()`` and never the module-level ``random``
global).  The same ``(components, instructions, scale, seed, arrival)``
therefore produces a byte-identical trace in every process, regardless
of what else was generated before it.  A single-component mix is the
identity: it returns exactly the trace the component would generate on
its own with the caller's seed, which is what makes single-workload
scenarios bit-identical to direct :func:`repro.api.run` calls.
"""

from __future__ import annotations

import hashlib
import json
import random as _random_module
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.params import DEFAULT_SCALE
from repro.workloads.trace import Trace

#: Supported arrival-process kinds.
ARRIVAL_KINDS = ("uniform", "poisson", "bursty")

#: Default scheduling quantum (instructions per interleave chunk).
DEFAULT_QUANTUM = 256

#: Default long-burst multiplier for the ``bursty`` process.
DEFAULT_BURST_FACTOR = 8


def derive_seed(seed: int, *parts) -> int:
    """Stable sub-seed derivation: SHA-256 over ``(seed, *parts)``.

    Python's built-in ``hash()`` is salted per process and must never be
    used for seed splitting; this keeps derived streams identical across
    processes and machines.
    """
    blob = json.dumps([int(seed), *[str(p) for p in parts]],
                      separators=(",", ":")).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


@dataclass(frozen=True)
class MixComponent:
    """One weighted member of a traffic mix.

    Exactly one of ``benchmark`` (a :mod:`repro.workloads.registry`
    name) or ``pattern`` (inline :class:`PatternMix` fields) must be
    set.  ``label`` names the component in manifests and exports.
    """

    label: str
    weight: float
    benchmark: Optional[str] = None
    pattern: Optional[Mapping] = None

    def __post_init__(self):
        if not self.label:
            raise ValueError("mix component needs a label")
        if not (self.weight > 0):
            raise ValueError(
                f"mix component {self.label!r}: weight must be positive, "
                f"got {self.weight!r}")
        if (self.benchmark is None) == (self.pattern is None):
            raise ValueError(
                f"mix component {self.label!r}: set exactly one of "
                f"benchmark= or pattern=")


def apportion(total: int, weights: Sequence[float]) -> list:
    """Split ``total`` into integer shares proportional to ``weights``.

    Largest-remainder apportionment: deterministic, exact (shares sum to
    ``total``) and every positive-weight share gets at least 1 when
    ``total >= len(weights)``.
    """
    if total <= 0:
        raise ValueError("need a positive total")
    wsum = float(sum(weights))
    if wsum <= 0:
        raise ValueError("weights must sum to a positive value")
    raw = [total * w / wsum for w in weights]
    shares = [int(r) for r in raw]
    # Give everyone a floor of 1 first (when the budget allows), then
    # distribute the leftover by descending remainder (ties by index).
    if total >= len(weights):
        shares = [max(1, s) for s in shares]
    while sum(shares) > total:
        idx = max(range(len(shares)), key=lambda i: (shares[i], -i))
        shares[idx] -= 1
    leftovers = sorted(range(len(shares)),
                       key=lambda i: (raw[i] - int(raw[i]), -i),
                       reverse=True)
    i = 0
    while sum(shares) < total:
        shares[leftovers[i % len(shares)]] += 1
        i += 1
    return shares


def _generate_component(component: MixComponent, instructions: int,
                        scale: int, seed: int) -> Trace:
    """One component's standalone trace (registry or inline pattern)."""
    if component.benchmark is not None:
        from repro.workloads.registry import make_trace
        return make_trace(component.benchmark, instructions, scale=scale,
                          seed=seed)
    from repro.workloads.synthetic import PatternMix, SyntheticWorkload
    try:
        mix = PatternMix(**dict(component.pattern))
    except TypeError as exc:
        raise ValueError(f"mix component {component.label!r}: bad "
                         f"pattern field ({exc})") from None
    workload = SyntheticWorkload(mix, name=component.label)
    return workload.generate(instructions, scale=scale, seed=seed)


def _chunk_length(rng: _random_module.Random, kind: str, quantum: int,
                  burst_factor: int) -> int:
    if kind == "uniform":
        return quantum
    if kind == "poisson":
        # Exponential quantum lengths (mean = quantum), capped so one
        # draw can never monopolise the whole trace.
        return 1 + min(int(rng.expovariate(1.0 / quantum)), 64 * quantum)
    if kind == "bursty":
        # Two-state on/off process: occasional long monopolising bursts
        # over a fine-grained baseline quantum.
        if rng.random() < 1.0 / burst_factor:
            return quantum * burst_factor
        return max(1, quantum // 4)
    raise ValueError(f"unknown arrival kind {kind!r}; "
                     f"expected one of {ARRIVAL_KINDS}")


def interleave_traces(components: Sequence[MixComponent],
                      instructions: int, *,
                      scale: int = DEFAULT_SCALE, seed: int = 1,
                      arrival: str = "uniform",
                      quantum: int = DEFAULT_QUANTUM,
                      burst_factor: int = DEFAULT_BURST_FACTOR,
                      name: str = "mix") -> Trace:
    """Compile a weighted mix into one deterministic interleaved trace.

    Component traces are generated independently (each from its own
    derived seed) and consumed in scheduling quanta drawn by the arrival
    process; the next component is picked with probability proportional
    to its remaining instruction budget, so the realised mix matches the
    weights even under bursty scheduling.
    """
    components = list(components)
    if not components:
        raise ValueError("need at least one mix component")
    if instructions <= 0:
        raise ValueError("need a positive instruction count")
    if arrival not in ARRIVAL_KINDS:
        raise ValueError(f"unknown arrival kind {arrival!r}; "
                         f"expected one of {ARRIVAL_KINDS}")
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    if burst_factor < 2:
        raise ValueError("burst_factor must be >= 2")

    if len(components) == 1:
        # Identity fast path: a 1-component mix IS that component's
        # trace under the caller's seed (the bit-identical contract).
        trace = _generate_component(components[0], instructions, scale,
                                    seed)
        return Trace(trace.ips, trace.kinds, trace.addrs, name=name,
                     deps=trace.deps)

    shares = apportion(instructions, [c.weight for c in components])
    traces = [_generate_component(c, share, scale,
                                  derive_seed(seed, "component", i,
                                              c.label))
              for i, (c, share) in enumerate(zip(components, shares))]

    rng = _random_module.Random(derive_seed(seed, "arrival", arrival))
    remaining = list(shares)
    cursor = [0] * len(components)
    slices = []
    live = sum(1 for r in remaining if r > 0)
    while live:
        total = sum(remaining)
        pick = rng.random() * total
        idx = 0
        acc = 0.0
        for i, r in enumerate(remaining):
            acc += r
            if pick < acc:
                idx = i
                break
        take = min(_chunk_length(rng, arrival, quantum, burst_factor),
                   remaining[idx])
        start = cursor[idx]
        slices.append(traces[idx][start:start + take])
        cursor[idx] += take
        remaining[idx] -= take
        if remaining[idx] == 0:
            live -= 1
    return Trace.concatenate(slices, name=name)
