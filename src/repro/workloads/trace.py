"""Instruction trace container.

A trace is three parallel numpy arrays: instruction pointers, instruction
kinds and (for memory ops) virtual addresses.  This is the Python analogue
of a ChampSim trace file.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

KIND_NONMEM = 0
KIND_LOAD = 1
KIND_STORE = 2


class Trace:
    """Immutable instruction trace.

    ``deps`` marks loads that consume the previous *dependent-chain*
    load's value (pointer chasing): the core cannot issue them until the
    chain's previous load completes.  Zero-filled when absent.
    """

    def __init__(self, ips: np.ndarray, kinds: np.ndarray,
                 addrs: np.ndarray, name: str = "", deps=None):
        if not (len(ips) == len(kinds) == len(addrs)):
            raise ValueError("trace arrays must have equal length")
        self.ips = np.asarray(ips, dtype=np.int64)
        self.kinds = np.asarray(kinds, dtype=np.int8)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        if deps is None:
            self.deps = np.zeros(len(self.ips), dtype=np.int8)
        else:
            self.deps = np.asarray(deps, dtype=np.int8)
            if len(self.deps) != len(self.ips):
                raise ValueError("deps must match the trace length")
        self.name = name

    def __len__(self) -> int:
        return len(self.ips)

    def __getitem__(self, sl: slice) -> "Trace":
        if not isinstance(sl, slice):
            raise TypeError("traces support slicing only")
        return Trace(self.ips[sl], self.kinds[sl], self.addrs[sl],
                     self.name, deps=self.deps[sl])

    def records(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate (ip, kind, vaddr) tuples (tests and tools)."""
        for i in range(len(self.ips)):
            yield int(self.ips[i]), int(self.kinds[i]), int(self.addrs[i])

    # -- summary properties --------------------------------------------
    @property
    def num_loads(self) -> int:
        return int(np.count_nonzero(self.kinds == KIND_LOAD))

    @property
    def num_stores(self) -> int:
        return int(np.count_nonzero(self.kinds == KIND_STORE))

    def loads_per_kilo(self) -> float:
        return 1000.0 * self.num_loads / len(self) if len(self) else 0.0

    def footprint_pages(self) -> int:
        """Distinct 4KB pages touched by memory operations."""
        mem = self.kinds != KIND_NONMEM
        if not mem.any():
            return 0
        return int(np.unique(self.addrs[mem] >> 12).size)

    @staticmethod
    def concatenate(traces, name: str = "") -> "Trace":
        return Trace(np.concatenate([t.ips for t in traces]),
                     np.concatenate([t.kinds for t in traces]),
                     np.concatenate([t.addrs for t in traces]),
                     name or "+".join(t.name for t in traces),
                     deps=np.concatenate([t.deps for t in traces]))
