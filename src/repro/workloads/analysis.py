"""Trace analysis utilities.

Used to calibrate the synthetic workloads against the paper's Table II
and to sanity-check that the generated address streams have the
properties the mechanisms react to (page-level reuse, working-set size,
stride structure).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.params import LINE_SHIFT, PAGE_SHIFT
from repro.workloads.trace import KIND_LOAD, KIND_NONMEM, Trace


def memory_addresses(trace: Trace) -> np.ndarray:
    """Virtual addresses of all memory operations, in program order."""
    mask = trace.kinds != KIND_NONMEM
    return trace.addrs[mask]


def working_set(trace: Trace) -> Dict[str, int]:
    """Distinct pages/lines touched (virtual)."""
    addrs = memory_addresses(trace)
    if addrs.size == 0:
        return {"pages": 0, "lines": 0}
    return {"pages": int(np.unique(addrs >> PAGE_SHIFT).size),
            "lines": int(np.unique(addrs >> LINE_SHIFT).size)}


def page_reuse_histogram(trace: Trace,
                         buckets: Sequence[int] = (1, 2, 4, 8, 16, 64)
                         ) -> Dict[str, int]:
    """How many pages are touched 1x, 2x, ... (page-level reuse is what
    gives leaf-PTE lines their recall behaviour)."""
    addrs = memory_addresses(trace)
    counts = Counter((addrs >> PAGE_SHIFT).tolist())
    histogram = {f"<={b}": 0 for b in buckets}
    histogram[f">{buckets[-1]}"] = 0
    for touches in counts.values():
        for b in buckets:
            if touches <= b:
                histogram[f"<={b}"] += 1
                break
        else:
            histogram[f">{buckets[-1]}"] += 1
    return histogram


def stride_profile(trace: Trace, top: int = 5) -> List[Tuple[int, float]]:
    """The most common successive load strides (bytes) and their share."""
    loads = trace.addrs[trace.kinds == KIND_LOAD]
    if loads.size < 2:
        return []
    strides = np.diff(loads)
    counts = Counter(strides.tolist())
    total = strides.size
    return [(int(s), c / total) for s, c in counts.most_common(top)]


def stlb_reach_ratio(trace: Trace, stlb_entries: int) -> float:
    """Touched pages per STLB entry: > 1 means the STLB cannot cover the
    working set (the paper's Medium/High regime)."""
    pages = working_set(trace)["pages"]
    return pages / stlb_entries if stlb_entries else float("inf")


def leaf_pte_lines(trace: Trace) -> int:
    """Distinct leaf-PTE cache lines the trace's pages map to (8 pages
    share one PTE line) -- the translation working set at L2C/LLC."""
    addrs = memory_addresses(trace)
    if addrs.size == 0:
        return 0
    pages = np.unique(addrs >> PAGE_SHIFT)
    return int(np.unique(pages >> 3).size)


def summarize(trace: Trace, stlb_entries: int = 128) -> Dict[str, float]:
    """One-stop characterization used by calibration scripts."""
    ws = working_set(trace)
    return {
        "instructions": len(trace),
        "loads_per_kilo": trace.loads_per_kilo(),
        "pages": ws["pages"],
        "lines": ws["lines"],
        "leaf_pte_lines": leaf_pte_lines(trace),
        "stlb_reach_ratio": stlb_reach_ratio(trace, stlb_entries),
    }
