"""Synthetic address-stream generator.

Each benchmark is modelled as a mix of four access-pattern classes, the
knobs that determine everything the paper's mechanisms react to:

* **sequential** -- streaming reads (frontier/edge arrays, text scanning);
  hits the STLB (64 lines per page) but misses caches once per line.
* **local** -- reuse within a small, slowly drifting window (stack, hot
  objects); mostly cache and TLB hits.
* **random** -- uniform gathers over a huge footprint (graph property
  arrays, pointer chasing).  These are the STLB-missing accesses whose
  data requests become *replay loads*.
* **stores** -- read-modify-write traffic over the local/random regions.

Footprints scale with ``1/scale`` so reduced-scale caches see the same
pressure the paper's full-size hierarchy saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.params import DEFAULT_SCALE, PAGE_SHIFT
from repro.workloads.trace import KIND_LOAD, KIND_NONMEM, KIND_STORE, Trace

#: Virtual base addresses of the synthetic regions (well separated).
SEQ_BASE = 0x1000_0000_0000
LOCAL_BASE = 0x2000_0000_0000
RANDOM_BASE = 0x4000_0000_0000


@dataclass
class PatternMix:
    """Access-pattern knobs of one benchmark (at paper scale)."""

    #: Memory operations per kilo-instruction.
    loads_per_kilo: float = 300.0
    stores_per_kilo: float = 40.0
    #: Of the loads: fraction in each class (must sum to <= 1; the
    #: remainder is local).
    random_fraction: float = 0.10
    seq_fraction: float = 0.30
    #: Footprint of the random region, in 4KB pages, at paper scale.
    random_pages: int = 100_000
    #: Active-window size for random draws, in pages at paper scale (0 =
    #: draw from the whole region).  Graph kernels sweep their vertex set
    #: once per iteration, so gathers concentrate in a window that drifts
    #: across the footprint -- this is what gives leaf-PTE lines (8 pages
    #: each) the short recall distances of Fig 5.
    random_window_pages: int = 0
    #: Sequential region (wraps), at paper scale.
    seq_pages: int = 20_000
    #: Stride of the sequential stream in bytes (controls non-replay MPKI).
    seq_stride: int = 16
    #: Locality window for "local" loads.
    local_pages: int = 16
    #: Zipf skew for the random region (0 = uniform).  Skew concentrates
    #: reuse on hot pages, lowering effective STLB misses.
    zipf_alpha: float = 0.0
    #: Pointer-chase mode: random pages are visited along a fixed
    #: permutation cycle instead of i.i.d. draws (mcf-style).
    pointer_chase: bool = False
    #: Distinct instruction pointers per class (signature diversity).
    n_seq_ips: int = 4
    n_local_ips: int = 8
    n_random_ips: int = 4
    #: Code footprint in 64B instruction lines for non-memory IPs
    #: (exercises the optional ITLB/L1I frontend; small by default).
    code_lines: int = 16

    @property
    def local_fraction(self) -> float:
        return max(0.0, 1.0 - self.random_fraction - self.seq_fraction)


class SyntheticWorkload:
    """Generates traces for one :class:`PatternMix`."""

    def __init__(self, mix: PatternMix, name: str = "synthetic"):
        if mix.random_fraction + mix.seq_fraction > 1.0 + 1e-9:
            raise ValueError("pattern fractions exceed 1.0")
        self.mix = mix
        self.name = name

    # ------------------------------------------------------------------
    def generate(self, instructions: int, scale: int = DEFAULT_SCALE,
                 seed: int = 1) -> Trace:
        """Build a trace of ``instructions`` records.

        ``scale`` divides the regions' footprints, matching the capacity
        scaling of :func:`repro.params.default_config`.
        """
        if instructions <= 0:
            raise ValueError("need a positive instruction count")
        mix = self.mix
        rng = np.random.default_rng(seed)
        n = instructions

        random_pages = max(64, mix.random_pages // scale)
        seq_pages = max(8, mix.seq_pages // scale)

        p_load = mix.loads_per_kilo / 1000.0
        p_store = mix.stores_per_kilo / 1000.0
        draw = rng.random(n)
        kinds = np.full(n, KIND_NONMEM, dtype=np.int8)
        kinds[draw < p_load] = KIND_LOAD
        kinds[(draw >= p_load) & (draw < p_load + p_store)] = KIND_STORE

        addrs = np.zeros(n, dtype=np.int64)
        # Non-memory IPs sweep the code footprint in short sequential
        # bursts (loop bodies), giving the frontend realistic locality.
        code_bytes = mix.code_lines * 64
        ips = (0x400000
               + (np.arange(n, dtype=np.int64) * 4) % code_bytes)

        load_idx = np.flatnonzero(kinds == KIND_LOAD)
        store_idx = np.flatnonzero(kinds == KIND_STORE)
        deps = np.zeros(n, dtype=np.int8)
        self._fill_loads(rng, load_idx, addrs, ips,
                         random_pages, seq_pages, scale, deps)
        self._fill_stores(rng, store_idx, addrs, ips, random_pages)
        return Trace(ips, kinds, addrs, name=self.name, deps=deps)

    # ------------------------------------------------------------------
    def _random_page_sequence(self, rng, count: int,
                              random_pages: int,
                              window_pages: int) -> np.ndarray:
        mix = self.mix
        if mix.pointer_chase:
            # A fixed permutation cycle through the pages, entered at a
            # random point: successive accesses are unpredictable but the
            # *sequence* recurs, which temporal prefetchers can learn.
            perm = np.random.default_rng(12345).permutation(random_pages)
            start = int(rng.integers(0, random_pages))
            idx = (start + np.arange(count)) % random_pages
            return perm[idx]
        if window_pages and window_pages < random_pages:
            # Uniform draws inside a window that drifts across the whole
            # footprint exactly once over the trace.
            drift = (np.arange(count, dtype=np.float64)
                     * (random_pages / max(1, count))).astype(np.int64)
            offsets = rng.integers(0, window_pages, size=count)
            return (drift + offsets) % random_pages
        if mix.zipf_alpha > 0:
            # Zipf over page ranks; clip to the footprint.
            raw = rng.zipf(1.0 + mix.zipf_alpha, size=count)
            ranks = np.minimum(raw - 1, random_pages - 1)
            # Scatter ranks across the address space deterministically.
            return (ranks * 2654435761) % random_pages
        return rng.integers(0, random_pages, size=count)

    def _fill_loads(self, rng, load_idx: np.ndarray, addrs: np.ndarray,
                    ips: np.ndarray, random_pages: int,
                    seq_pages: int, scale: int = DEFAULT_SCALE,
                    deps=None) -> None:
        mix = self.mix
        n_loads = len(load_idx)
        if n_loads == 0:
            return
        cls_draw = rng.random(n_loads)
        is_random = cls_draw < mix.random_fraction
        is_seq = (~is_random) & (cls_draw
                                 < mix.random_fraction + mix.seq_fraction)
        is_local = ~(is_random | is_seq)

        # Random gathers.
        n_rand = int(is_random.sum())
        if n_rand:
            window = max(0, mix.random_window_pages // scale)
            pages = self._random_page_sequence(rng, n_rand, random_pages,
                                               window)
            offsets = rng.integers(0, 4096 // 8, size=n_rand) * 8
            addrs[load_idx[is_random]] = (RANDOM_BASE
                                          + (pages << PAGE_SHIFT) + offsets)
            ips[load_idx[is_random]] = 0x500000 + 4 * rng.integers(
                0, mix.n_random_ips, size=n_rand)
            if mix.pointer_chase and deps is not None:
                # Each chase load consumes the previous one's value: the
                # core must serialize them (mcf-style dependent chains).
                deps[load_idx[is_random]] = 1

        # Sequential stream (wrapping over the region).
        n_seq = int(is_seq.sum())
        if n_seq:
            region_bytes = seq_pages << PAGE_SHIFT
            start = int(rng.integers(0, region_bytes))
            stream = (start + np.arange(n_seq, dtype=np.int64)
                      * mix.seq_stride) % region_bytes
            addrs[load_idx[is_seq]] = SEQ_BASE + stream
            ips[load_idx[is_seq]] = 0x600000 + 4 * (
                np.arange(n_seq) % mix.n_seq_ips)

        # Local window, drifting slowly across a few pages.
        n_local = int(is_local.sum())
        if n_local:
            drift = (np.arange(n_local, dtype=np.int64)
                     // max(1, n_local // 8)) * (1 << PAGE_SHIFT)
            page_pick = rng.integers(0, mix.local_pages, size=n_local)
            offsets = rng.integers(0, 4096 // 8, size=n_local) * 8
            addrs[load_idx[is_local]] = (LOCAL_BASE + drift
                                         + (page_pick << PAGE_SHIFT)
                                         + offsets)
            ips[load_idx[is_local]] = 0x700000 + 4 * rng.integers(
                0, mix.n_local_ips, size=n_local)

    def _fill_stores(self, rng, store_idx: np.ndarray, addrs: np.ndarray,
                     ips: np.ndarray, random_pages: int) -> None:
        mix = self.mix
        n_stores = len(store_idx)
        if n_stores == 0:
            return
        # Stores split between the local window and the random region in
        # proportion to the load mix (canneal-style read-modify-write).
        to_random = rng.random(n_stores) < mix.random_fraction
        n_rand = int(to_random.sum())
        if n_rand:
            pages = rng.integers(0, random_pages, size=n_rand)
            offsets = rng.integers(0, 4096 // 8, size=n_rand) * 8
            addrs[store_idx[to_random]] = (RANDOM_BASE
                                           + (pages << PAGE_SHIFT) + offsets)
        n_local = n_stores - n_rand
        if n_local:
            page_pick = rng.integers(0, mix.local_pages, size=n_local)
            offsets = rng.integers(0, 4096 // 8, size=n_local) * 8
            addrs[store_idx[~to_random]] = (LOCAL_BASE
                                            + (page_pick << PAGE_SHIFT)
                                            + offsets)
        ips[store_idx] = 0x800000 + 4 * rng.integers(0, 8, size=n_stores)


class PhasedWorkload:
    """A workload that alternates between pattern mixes (program phases).

    Real applications shift phase (build structures, then traverse them);
    phase changes are what set-dueling policies like DRRIP -- and the
    adaptive T-DRRIP extension -- must adapt to.  Each phase is a
    (:class:`PatternMix`, weight) pair; the trace is the concatenation of
    per-phase segments whose lengths follow the weights.
    """

    def __init__(self, phases, name: str = "phased", repeats: int = 1):
        if not phases:
            raise ValueError("need at least one phase")
        self.phases = [(mix, float(weight)) for mix, weight in phases]
        if any(w <= 0 for _, w in self.phases):
            raise ValueError("phase weights must be positive")
        self.name = name
        self.repeats = max(1, repeats)

    def generate(self, instructions: int, scale: int = DEFAULT_SCALE,
                 seed: int = 1) -> "Trace":
        from repro.workloads.trace import Trace
        total_weight = sum(w for _, w in self.phases) * self.repeats
        segments = []
        remaining = instructions
        i = 0
        for _ in range(self.repeats):
            for mix, weight in self.phases:
                length = min(remaining,
                             max(1, int(instructions * weight
                                        / total_weight)))
                if length <= 0:
                    continue
                workload = SyntheticWorkload(mix, name=f"{self.name}.{i}")
                segments.append(workload.generate(length, scale=scale,
                                                  seed=seed + i))
                remaining -= length
                i += 1
        if remaining > 0 and segments:
            mix = self.phases[-1][0]
            workload = SyntheticWorkload(mix, name=f"{self.name}.tail")
            segments.append(workload.generate(remaining, scale=scale,
                                              seed=seed + i))
        return Trace.concatenate(segments, name=self.name)
