"""Ligra graph-kernel workload models (tc, mis, bf, radii, cc, pr).

Graph kernels interleave streaming reads of the CSR offset/edge arrays
(sequential class) with gathers into per-vertex property arrays indexed by
edge targets (random class) -- the access mix that gives these benchmarks
their Medium/High STLB MPKI in Table II.  The paper's dataset is 918MB; the
simulated-region footprints are 200-400MB, which the ``random_pages``
values below reflect (divided by ``scale`` at generation time).
"""

from __future__ import annotations

from repro.workloads.synthetic import PatternMix

#: Pages in the gather (property-array) region at paper scale.
_LIGRA_PAGES = 16_000


def tc_mix() -> PatternMix:
    """Triangle counting: moderate gather rate (STLB MPKI ~12.5)."""
    return PatternMix(loads_per_kilo=260, stores_per_kilo=15,
                      random_fraction=0.052, seq_fraction=0.16,
                      random_pages=_LIGRA_PAGES,
                      random_window_pages=20_000, seq_pages=24_000,
                      seq_stride=16, local_pages=2, n_random_ips=3)


def mis_mix() -> PatternMix:
    """Maximal independent set: gather + very heavy frontier streaming
    (L2C non-replay MPKI ~64)."""
    return PatternMix(loads_per_kilo=380, stores_per_kilo=25,
                      random_fraction=0.050, seq_fraction=0.55,
                      random_pages=_LIGRA_PAGES,
                      random_window_pages=20_000, seq_pages=48_000,
                      seq_stride=32, local_pages=2, n_random_ips=3)


def bf_mix() -> PatternMix:
    """Bellman-Ford: high gather rate (STLB MPKI ~33)."""
    return PatternMix(loads_per_kilo=340, stores_per_kilo=30,
                      random_fraction=0.106, seq_fraction=0.40,
                      random_pages=_LIGRA_PAGES,
                      random_window_pages=20_000, seq_pages=40_000,
                      seq_stride=16, local_pages=2, n_random_ips=4)


def radii_mix() -> PatternMix:
    """Graph radii estimation (STLB MPKI ~36)."""
    return PatternMix(loads_per_kilo=350, stores_per_kilo=30,
                      random_fraction=0.110, seq_fraction=0.40,
                      random_pages=_LIGRA_PAGES,
                      random_window_pages=20_000, seq_pages=40_000,
                      seq_stride=16, local_pages=2, n_random_ips=4)


def cc_mix() -> PatternMix:
    """Connected components: gather-dominated, little streaming
    (STLB MPKI ~50, L2C non-replay MPKI ~5)."""
    return PatternMix(loads_per_kilo=310, stores_per_kilo=35,
                      random_fraction=0.167, seq_fraction=0.05,
                      random_pages=_LIGRA_PAGES,
                      random_window_pages=20_000, seq_pages=12_000,
                      seq_stride=16, local_pages=2, n_random_ips=4)


def pr_mix() -> PatternMix:
    """PageRank: the heaviest gather load in the suite (STLB MPKI ~82)."""
    return PatternMix(loads_per_kilo=400, stores_per_kilo=35,
                      random_fraction=0.218, seq_fraction=0.35,
                      random_pages=_LIGRA_PAGES,
                      random_window_pages=20_000, seq_pages=40_000,
                      seq_stride=16, local_pages=2, n_random_ips=5)
