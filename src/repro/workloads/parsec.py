"""PARSEC workload model (canneal).

canneal performs simulated-annealing swaps of netlist elements: random
read-modify-write pairs over a 2.3GB footprint with almost no streaming --
Medium STLB MPKI, low non-replay traffic (Table II: L2C non-replay MPKI
only 4.15 while replay MPKI is 17.5).
"""

from __future__ import annotations

from repro.workloads.synthetic import PatternMix


def canneal_mix() -> PatternMix:
    """canneal: random swaps, negligible streaming."""
    return PatternMix(loads_per_kilo=180, stores_per_kilo=45,
                      random_fraction=0.098, seq_fraction=0.035,
                      random_pages=18_000,
                      random_window_pages=20_000, seq_pages=6_000,
                      seq_stride=16, local_pages=2, n_random_ips=3)
