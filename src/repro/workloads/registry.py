"""Benchmark registry: the paper's nine workloads (Table II).

Each entry binds a name to a :class:`PatternMix`, its suite, and the paper's
reference numbers so experiments can report paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.params import DEFAULT_SCALE
from repro.workloads.graph import (bf_mix, cc_mix, mis_mix, pr_mix,
                                   radii_mix, tc_mix)
from repro.workloads.parsec import canneal_mix
from repro.workloads.spec import mcf_mix, xalancbmk_mix
from repro.workloads.synthetic import PatternMix, SyntheticWorkload
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class BenchmarkInfo:
    """One Table II row."""

    name: str
    suite: str
    dataset_size: str
    category: str  # Low / Medium / High (by STLB MPKI)
    mix: PatternMix


def _compute_mix() -> PatternMix:
    """A cache/TLB-friendly control workload (not in the paper's table).

    The paper claims its enhancements "do not affect the performance of
    applications that do not see significant STLB misses"; this workload
    exists to test that claim.
    """
    return PatternMix(loads_per_kilo=220, stores_per_kilo=30,
                      random_fraction=0.0, seq_fraction=0.15,
                      random_pages=256, seq_pages=640, seq_stride=8,
                      local_pages=2, n_local_ips=6)


BENCHMARKS: Dict[str, BenchmarkInfo] = {
    "xalancbmk": BenchmarkInfo("xalancbmk", "SPEC CPU2017", "500MB", "Low",
                               xalancbmk_mix()),
    "tc": BenchmarkInfo("tc", "Ligra", "918MB", "Medium", tc_mix()),
    "canneal": BenchmarkInfo("canneal", "PARSEC", "2.3GB", "Medium",
                             canneal_mix()),
    "mis": BenchmarkInfo("mis", "Ligra", "918MB", "Medium", mis_mix()),
    "mcf": BenchmarkInfo("mcf", "SPEC CPU2017", "4GB", "Medium", mcf_mix()),
    "bf": BenchmarkInfo("bf", "Ligra", "918MB", "High", bf_mix()),
    "radii": BenchmarkInfo("radii", "Ligra", "918MB", "High", radii_mix()),
    "cc": BenchmarkInfo("cc", "Ligra", "918MB", "High", cc_mix()),
    "pr": BenchmarkInfo("pr", "Ligra", "918MB", "High", pr_mix()),
    # Control workload (not part of Table II): near-zero STLB misses.
    "compute": BenchmarkInfo("compute", "synthetic", "-", "Low",
                             _compute_mix()),
}

#: Paper's Table II: per-benchmark STLB MPKI and L2C/LLC MPKIs
#: (replay, non-replay, leaf translations a.k.a. PTL1).
TABLE2_REFERENCE: Dict[str, Dict[str, float]] = {
    "xalancbmk": {"stlb": 4.78, "l2c_replay": 4.37, "l2c_non_replay": 17.27,
                  "l2c_ptl1": 1.04, "llc_replay": 2.16,
                  "llc_non_replay": 7.81, "llc_ptl1": 0.48},
    "tc": {"stlb": 12.54, "l2c_replay": 12.35, "l2c_non_replay": 10.88,
           "l2c_ptl1": 3.51, "llc_replay": 11.64, "llc_non_replay": 8.59,
           "llc_ptl1": 1.6},
    "canneal": {"stlb": 17.54, "l2c_replay": 17.51, "l2c_non_replay": 4.15,
                "l2c_ptl1": 7.65, "llc_replay": 17.41,
                "llc_non_replay": 4.07, "llc_ptl1": 1.76},
    "mis": {"stlb": 18.64, "l2c_replay": 17.76, "l2c_non_replay": 63.68,
            "l2c_ptl1": 1.49, "llc_replay": 14.7, "llc_non_replay": 39.07,
            "llc_ptl1": 0.49},
    "mcf": {"stlb": 22.35, "l2c_replay": 22.27, "l2c_non_replay": 8.21,
            "l2c_ptl1": 6.84, "llc_replay": 22.24, "llc_non_replay": 4.5,
            "llc_ptl1": 0.11},
    "bf": {"stlb": 33.31, "l2c_replay": 29.37, "l2c_non_replay": 42.06,
           "l2c_ptl1": 4.82, "llc_replay": 27.10, "llc_non_replay": 34.18,
           "llc_ptl1": 1.62},
    "radii": {"stlb": 35.69, "l2c_replay": 34.08, "l2c_non_replay": 44.91,
              "l2c_ptl1": 5.18, "llc_replay": 31.11,
              "llc_non_replay": 31.86, "llc_ptl1": 1.54},
    "cc": {"stlb": 49.5, "l2c_replay": 47.25, "l2c_non_replay": 4.94,
           "l2c_ptl1": 66.15, "llc_replay": 40.40, "llc_non_replay": 42.54,
           "llc_ptl1": 0.79},
    "pr": {"stlb": 82.29, "l2c_replay": 80.43, "l2c_non_replay": 44.65,
           "l2c_ptl1": 20.98, "llc_replay": 76.53, "llc_non_replay": 35.63,
           "llc_ptl1": 7.1},
}

#: STLB MPKI category thresholds used for SMT mix construction (Section V).
CATEGORY_THRESHOLDS = {"Low": 10.0, "Medium": 25.0}


def categorize(stlb_mpki: float) -> str:
    """Classify an STLB MPKI value per the paper's Low/Medium/High bands."""
    if stlb_mpki <= CATEGORY_THRESHOLDS["Low"]:
        return "Low"
    if stlb_mpki <= CATEGORY_THRESHOLDS["Medium"]:
        return "Medium"
    return "High"


def benchmark(name: str) -> BenchmarkInfo:
    """Look up one benchmark by name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}; "
                         f"available: {sorted(BENCHMARKS)}") from None


def benchmark_names(include_controls: bool = False) -> List[str]:
    """Table II benchmark names, in ascending-STLB-MPKI order.

    ``include_controls=True`` appends the synthetic control workloads
    (e.g. ``compute``) that are not part of the paper's table."""
    names = [n for n in BENCHMARKS if n in TABLE2_REFERENCE]
    if include_controls:
        names += [n for n in BENCHMARKS if n not in TABLE2_REFERENCE]
    return names


def make_trace(name: str, instructions: int, scale: int = DEFAULT_SCALE,
               seed: int = 1) -> Trace:
    """Generate a trace for one named benchmark or registered scenario.

    Registry benchmarks take priority.  Unknown names fall through to the
    scenario engine (library documents plus process-local ad-hoc
    registrations), so scenario traces flow through the exact same entry
    point -- and therefore the same runner/cache plumbing -- as benchmarks.
    """
    if name in BENCHMARKS:
        info = BENCHMARKS[name]
        workload = SyntheticWorkload(info.mix, name=name)
        return workload.generate(instructions, scale=scale, seed=seed)
    # Imported lazily: repro.scenarios depends on this module.
    from repro.scenarios.engine import resolve_trace
    trace = resolve_trace(name, instructions, scale=scale, seed=seed)
    if trace is not None:
        return trace
    raise ValueError(f"unknown benchmark or scenario {name!r}; "
                     f"available benchmarks: {sorted(BENCHMARKS)}")
