"""SPEC CPU2017 workload models (xalancbmk, mcf).

*xalancbmk* (XML transformation) has strong temporal locality with a small
tail of cold pages -- Low STLB MPKI.  *mcf* (network simplex) chases
pointers through a multi-GB arena -- Medium STLB MPKI with essentially every
gather both TLB- and cache-missing.
"""

from __future__ import annotations

from repro.workloads.synthetic import PatternMix


def xalancbmk_mix() -> PatternMix:
    """xalancbmk: Low STLB MPKI (~4.8), moderate cache misses."""
    return PatternMix(loads_per_kilo=280, stores_per_kilo=40,
                      random_fraction=0.050, seq_fraction=0.25,
                      random_pages=12_000,
                      random_window_pages=16_000, seq_pages=16_000,
                      seq_stride=16, local_pages=2,
                      zipf_alpha=0.3, n_random_ips=6,
                      n_local_ips=12)


def mcf_mix() -> PatternMix:
    """mcf: pointer chasing over a ~400MB region (STLB MPKI ~22)."""
    return PatternMix(loads_per_kilo=240, stores_per_kilo=25,
                      random_fraction=0.090, seq_fraction=0.09,
                      random_pages=20_000,
                      random_window_pages=24_000, seq_pages=10_000,
                      seq_stride=16, local_pages=2,
                      pointer_chase=True, n_random_ips=2)
