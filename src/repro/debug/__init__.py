"""Debugging aids.

The ``JourneyTracer`` that used to live here was removed in api v2;
importing :mod:`repro.debug.tracer` raises with a pointer to its
successor, :mod:`repro.obs.trace`.
"""

__all__: list = []
