"""Debugging aids: request-journey tracing and timeline rendering."""

from repro.debug.tracer import JourneyTracer, JourneyEvent

__all__ = ["JourneyTracer", "JourneyEvent"]
