"""Request-journey tracing.

Wraps the access methods of selected hierarchy components and records
every (component, line, category, arrival, completion) event, so a
specific load's path -- walk levels, cache levels, DRAM -- can be
inspected and rendered as a timeline.  Used by tests to verify timing
composition and by humans to debug surprising latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.memsys.request import MemoryRequest


@dataclass
class JourneyEvent:
    """One component's handling of one request."""

    component: str
    line_addr: int
    category: str
    arrival: int
    completion: int
    served_by: str

    @property
    def latency(self) -> int:
        return self.completion - self.arrival


class JourneyTracer:
    """Records request events across hierarchy components.

    Use as a context manager::

        with JourneyTracer(hierarchy) as tracer:
            hierarchy.load(va, cycle)
        print(tracer.render())
    """

    def __init__(self, hierarchy, include_dram: bool = True):
        self.hierarchy = hierarchy
        self.include_dram = include_dram
        self.events: List[JourneyEvent] = []
        self._originals: List = []

    # -- wiring -----------------------------------------------------------
    def _wrap(self, obj, name: str) -> None:
        original = obj.access
        # Remember whether `access` was an instance attribute (e.g. an
        # AccessRecorder wrapper) or the plain class method, so detaching
        # restores the exact previous state.
        had_instance_attr = "access" in obj.__dict__

        def traced_access(req: MemoryRequest):
            arrival = req.cycle
            done = original(req)
            self.events.append(JourneyEvent(
                component=name, line_addr=req.line_addr,
                category=req.category(), arrival=arrival, completion=done,
                served_by=req.served_by))
            return done

        self._originals.append((obj, original, had_instance_attr))
        obj.access = traced_access

    def __enter__(self) -> "JourneyTracer":
        h = self.hierarchy
        for cache in (h.l1d, h.l2c, h.llc):
            self._wrap(cache, cache.name)
        if self.include_dram:
            self._wrap(h.dram, "DRAM")
        return self

    def __exit__(self, *exc) -> None:
        for obj, original, had_instance_attr in self._originals:
            if had_instance_attr:
                obj.access = original
            else:
                del obj.__dict__["access"]
        self._originals.clear()

    # -- queries ----------------------------------------------------------
    def events_for_line(self, line_addr: int) -> List[JourneyEvent]:
        return [e for e in self.events if e.line_addr == line_addr]

    def by_component(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e.component] = counts.get(e.component, 0) + 1
        return counts

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable timeline, in event order."""
        lines = ["component  line                category      "
                 "arrival    done       latency"]
        events = self.events[:limit] if limit else self.events
        for e in events:
            lines.append(
                f"{e.component:<10} {e.line_addr:#14x}  {e.category:<12}"
                f"  {e.arrival:<9}  {e.completion:<9}  {e.latency}")
        return "\n".join(lines)

    def clear(self) -> None:
        self.events.clear()
