"""Removed in api v2: request-journey tracing moved to
:mod:`repro.obs.trace`.

``JourneyTracer`` was demoted to a warn-once compatibility facade over
the span tracer in PR 4 and is retired under the v2 major bump.  The
span tracer provides a superset of the journey surface: per-level probe
records plus walk/stall structure, causality links, sampling and
schema'd export.  Migrate::

    # before                              # after
    from repro.debug import JourneyTracer
    with JourneyTracer(hierarchy) as t:   from repro.obs.trace import (
        hierarchy.load(va, cycle)             SpanTracer, attach, detach)
    print(t.render())                     tracer = SpanTracer(sample_every=1)
                                          attach(hierarchy, tracer)
                                          hierarchy.load(va, cycle)
                                          detach(hierarchy)

or, one level up, ``repro.api.trace("pr")`` for a validated
``repro.obs/trace-v1`` document.  See ``docs/observability.md``.
"""

raise RuntimeError(
    "repro.debug.tracer (JourneyTracer) was removed in repro.api v2; "
    "use repro.obs.trace (SpanTracer + attach, or repro.api.trace) "
    "instead -- see docs/observability.md")
