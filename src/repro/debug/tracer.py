"""Request-journey tracing (deprecated shim over :mod:`repro.obs.trace`).

:class:`JourneyTracer` predates the span tracer: it wrapped the access
methods of selected hierarchy components and recorded flat
(component, line, category, arrival, completion) events.  The span
tracer subsumes it -- same per-level probe records, plus walk/stall
structure, causality links, sampling and schema'd export -- so this
module is now a thin compatibility facade: entering a
:class:`JourneyTracer` attaches a :class:`~repro.obs.trace.SpanTracer`
and exiting converts the component-probe spans back into
:class:`JourneyEvent` rows.  The query/render surface is unchanged.

New code should use :mod:`repro.obs.trace` directly (``attach`` +
``SpanTracer``, or ``repro.api.trace``); see ``docs/observability.md``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.trace import SpanTracer, attach, detach

#: Component-probe span names that map onto journey events.
_CACHE_NAMES = ("L1D", "L2C", "LLC")

_warned = False


def _warn_deprecated() -> None:
    global _warned
    if not _warned:
        _warned = True
        warnings.warn(
            "JourneyTracer is deprecated; use repro.obs.trace "
            "(SpanTracer + attach, or repro.api.trace) instead",
            DeprecationWarning, stacklevel=3)


@dataclass
class JourneyEvent:
    """One component's handling of one request."""

    component: str
    line_addr: int
    category: str
    arrival: int
    completion: int
    served_by: str

    @property
    def latency(self) -> int:
        return self.completion - self.arrival


class JourneyTracer:
    """Records request events across hierarchy components (deprecated).

    Use as a context manager::

        with JourneyTracer(hierarchy) as tracer:
            hierarchy.load(va, cycle)
        print(tracer.render())
    """

    def __init__(self, hierarchy, include_dram: bool = True):
        _warn_deprecated()
        self.hierarchy = hierarchy
        self.include_dram = include_dram
        self.events: List[JourneyEvent] = []
        self._tracer: Optional[SpanTracer] = None

    # -- wiring -----------------------------------------------------------
    def __enter__(self) -> "JourneyTracer":
        self._tracer = SpanTracer(sample_every=1)
        attach(self.hierarchy, self._tracer)
        return self

    def __exit__(self, *exc) -> None:
        tracer, self._tracer = self._tracer, None
        detach(self.hierarchy)
        names = _CACHE_NAMES + (("DRAM",) if self.include_dram else ())
        for span in tracer.iter_spans():
            if span.name not in names:
                continue
            self.events.append(JourneyEvent(
                component=span.name, line_addr=span.args.get("line", 0),
                category=span.cat, arrival=span.start, completion=span.end,
                served_by=span.args.get("served_by", "")))

    # -- queries ----------------------------------------------------------
    def events_for_line(self, line_addr: int) -> List[JourneyEvent]:
        return [e for e in self.events if e.line_addr == line_addr]

    def by_component(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e.component] = counts.get(e.component, 0) + 1
        return counts

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable timeline, in event order."""
        lines = ["component  line                category      "
                 "arrival    done       latency"]
        events = self.events[:limit] if limit else self.events
        for e in events:
            lines.append(
                f"{e.component:<10} {e.line_addr:#14x}  {e.category:<12}"
                f"  {e.arrival:<9}  {e.completion:<9}  {e.latency}")
        return "\n".join(lines)

    def clear(self) -> None:
        self.events.clear()
