"""Tests for the ASCII bar-chart renderer."""

import pytest

from repro.stats.report import bar_chart


def test_bar_chart_basic():
    out = bar_chart("Speedups", ["a", "bb"], [1.05, 1.10], baseline=1.0)
    lines = out.splitlines()
    assert lines[0] == "Speedups"
    assert len(lines) == 3
    # The larger delta gets the longer bar.
    assert lines[2].count("#") > lines[1].count("#")


def test_bar_chart_alignment():
    out = bar_chart("t", ["x", "longer"], [1.0, 2.0])
    for line in out.splitlines()[1:]:
        assert "  " in line


def test_bar_chart_validates():
    with pytest.raises(ValueError):
        bar_chart("t", ["a"], [1.0, 2.0])


def test_bar_chart_empty():
    assert bar_chart("t", [], []) == "t"


def test_bar_chart_flat_values():
    out = bar_chart("t", ["a", "b"], [1.0, 1.0], baseline=1.0)
    assert "#" not in out  # zero deltas, no bars
