"""Tests for the sensitivity-sweep experiment functions."""

import pytest

from repro.experiments.sweeps import (fig19_stlb_sensitivity,
                                      fig20_l2c_sensitivity,
                                      fig21_llc_sensitivity,
                                      psc_sensitivity)

TINY = dict(benchmarks=["pr"], instructions=3000, warmup=800)


def test_stlb_sweep_shape():
    res = fig19_stlb_sensitivity(points=(1024, 4096), **TINY)
    assert set(res.data) == {1024, 4096}
    assert "pr" in res.data[1024]
    assert "gmean" in res.data[1024]


def test_l2c_sweep_uses_latency_table():
    res = fig20_l2c_sensitivity(points=(256 * 1024, 1024 * 1024), **TINY)
    assert len(res.rows) == 2


def test_llc_sweep_shape():
    res = fig21_llc_sensitivity(points=(1 << 20, 8 << 20), **TINY)
    assert all(isinstance(v, float) for v in
               (res.data[1 << 20]["pr"], res.data[8 << 20]["pr"]))


def test_psc_sweep_monotone_walk_latency():
    """More PSC capacity must not lengthen walks."""
    res = psc_sensitivity(benchmarks=["pr"], instructions=6000, warmup=1500)
    d = res.data["pr"]
    assert d["no_psc"]["walk_latency"] >= d["table1"]["walk_latency"] - 1
    assert d["table1"]["walk_latency"] >= d["4x"]["walk_latency"] - 1
    # Walks take at least one cache access even with perfect PSCs.
    assert d["4x"]["walk_latency"] > 5
