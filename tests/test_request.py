"""Tests for repro.memsys.request."""

import pytest

from repro.memsys.request import AccessType, MemoryRequest


def test_line_addr_strips_offset():
    req = MemoryRequest(address=0x1234, cycle=0)
    assert req.line_addr == 0x1234 >> 6
    req2 = MemoryRequest(address=0x123F, cycle=0)
    assert req2.line_addr == req.line_addr  # same 64B line


def test_default_request_is_non_replay_load():
    req = MemoryRequest(address=0x1000, cycle=5)
    assert req.access_type is AccessType.LOAD
    assert not req.is_replay
    assert req.category() == "non_replay"
    assert req.is_demand_data
    assert not req.is_translation


def test_replay_category():
    req = MemoryRequest(address=0x1000, cycle=0, is_replay=True)
    assert req.category() == "replay"


def test_store_is_demand_data():
    req = MemoryRequest(address=0x1000, cycle=0,
                        access_type=AccessType.STORE, is_replay=True)
    assert req.is_demand_data
    assert req.category() == "replay"


def test_translation_category_and_leaf():
    req = MemoryRequest(address=0x2000, cycle=0,
                        access_type=AccessType.TRANSLATION, pt_level=3)
    assert req.category() == "translation"
    assert req.is_translation
    assert not req.is_leaf_translation
    assert not req.is_demand_data

    leaf = MemoryRequest(address=0x2000, cycle=0,
                         access_type=AccessType.TRANSLATION, pt_level=1)
    assert leaf.is_leaf_translation


def test_translation_outranks_replay_flag():
    # A PTE read during a replay-causing walk is a translation, not a replay.
    req = MemoryRequest(address=0x2000, cycle=0,
                        access_type=AccessType.TRANSLATION, pt_level=1,
                        is_replay=True)
    assert req.category() == "translation"


def test_prefetch_and_writeback_categories():
    assert MemoryRequest(address=0, cycle=0,
                         access_type=AccessType.PREFETCH).category() == "prefetch"
    assert MemoryRequest(address=0, cycle=0,
                         access_type=AccessType.WRITEBACK).category() == "writeback"


def test_replay_line_addr_carried_on_leaf():
    req = MemoryRequest(address=0x2000, cycle=0,
                        access_type=AccessType.TRANSLATION, pt_level=1,
                        replay_line_addr=0xABCD)
    assert req.replay_line_addr == 0xABCD
