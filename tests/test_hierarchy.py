"""Tests for the wired memory hierarchy."""

import pytest

from repro.memsys.request import AccessType
from repro.params import EnhancementConfig, IdealConfig, default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va

VA = make_va([1, 2, 3, 4, 5], 0x40)


def build(enh=None, **cfg_kwargs):
    cfg = default_config()
    if enh is not None:
        cfg = cfg.with_(enhancements=enh)
    if cfg_kwargs:
        cfg = cfg.with_(**cfg_kwargs)
    return MemoryHierarchy(cfg)


def test_cold_load_is_replay_and_reaches_dram():
    h = build()
    res = h.load(VA, cycle=0)
    assert res.is_replay
    assert res.data_served_by == "DRAM"
    assert res.data_done > res.translation_done


def test_replay_issue_latency_applied():
    h = build()
    res = h.load(VA, cycle=0)
    # Data request issued replay_issue_latency after translation.
    min_data = (res.translation_done
                + h.config.core.replay_issue_latency
                + h.config.l1d.latency)
    assert res.data_done >= min_data


def test_warm_load_is_non_replay():
    h = build()
    h.load(VA, cycle=0)
    res = h.load(VA, cycle=10_000)
    assert not res.is_replay
    assert res.dtlb_hit
    assert res.data_served_by == "L1D"


def test_store_translates_and_fills():
    h = build()
    res = h.store(VA, cycle=0)
    assert res.is_replay
    assert h.l1d.block_for(res.paddr >> 6).dirty


def test_response_distribution_tracks_replays():
    h = build()
    h.load(VA, cycle=0)
    dist = h.response_distribution
    assert sum(dist.counts["replay"].values()) == 1
    assert sum(dist.counts["translation"].values()) == 1


def test_t_policies_swapped_in():
    h = build(EnhancementConfig(t_drrip=True, t_ship=True,
                                newsign=True))
    assert h.l2c.policy.name == "t_drrip"
    assert h.llc.policy.name == "t_ship"


def test_newsign_only_variant():
    h = build(EnhancementConfig(newsign=True))
    assert h.llc.policy.name == "newsign_ship"
    assert h.l2c.policy.name == "drrip"


def test_t_hawkeye_when_llc_is_hawkeye():
    cfg = default_config().with_(
        enhancements=EnhancementConfig(t_ship=True))
    cfg.llc.replacement = "hawkeye"
    h = MemoryHierarchy(cfg)
    assert h.llc.policy.name == "t_hawkeye"


def test_atp_and_tempo_attached():
    h = build(EnhancementConfig.full())
    assert h.atp is not None
    assert h.l2c.on_leaf_translation_hit is not None
    assert h.llc.on_leaf_translation_hit is not None
    assert h.tempo is not None
    assert h.dram.on_leaf_translation is not None


def test_baseline_has_no_prefetchers():
    h = build()
    assert h.atp is None and h.tempo is None and h.ipcp is None
    assert h.l2c.prefetcher is None


def test_l2c_prefetcher_attached():
    h = build(None, l2c_prefetcher="spp")
    assert h.l2c.prefetcher is not None
    assert h.l2c.prefetcher.name == "spp"


def test_ipcp_runs_on_loads():
    h = build(None, l1d_prefetcher="ipcp")
    base = make_va([2, 2, 2, 2, 0])
    for i in range(12):
        h.load(base + i * 128, cycle=i * 100, ip=0x42)
    assert h.ipcp.issued > 0


def test_ideal_llc_modes_wire_through():
    cfg = default_config().with_(
        ideal=IdealConfig(llc_translations=True, llc_replays=True))
    h = MemoryHierarchy(cfg)
    assert h.llc.ideal_translations and h.llc.ideal_replays
    assert not h.l2c.ideal_translations


def test_shared_llc_between_hierarchies():
    from repro.vm.page_table import FrameAllocator, PageTable
    cfg = default_config()
    alloc = FrameAllocator()
    first = MemoryHierarchy(cfg, page_table=PageTable(alloc))
    second = MemoryHierarchy(cfg, page_table=PageTable(alloc),
                             shared_llc=first.llc, shared_dram=first.dram)
    assert second.llc is first.llc
    assert second.dram is first.dram
    assert second.l2c is not first.l2c


def test_leaf_translation_hit_rate():
    h = build(EnhancementConfig(t_drrip=True, t_ship=True,
                                newsign=True))
    base = make_va([3, 3, 3, 0, 0])
    for i in range(200):
        h.load(base + (i % 50) * 4096, cycle=i * 300)
    assert 0.0 <= h.leaf_translation_hit_rate() <= 1.0


def test_reset_stats_clears_everything():
    h = build(EnhancementConfig.full())
    h.load(VA, cycle=0)
    h.reset_stats()
    assert h.loads == 0
    assert h.dram.accesses == 0
    assert h.mmu.stlb.accesses == 0
    assert h.l1d.stats.total_misses() == 0
    assert sum(h.response_distribution.counts["replay"].values()) == 0
