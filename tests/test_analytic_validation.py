"""Analytic validation: the timing model against hand-computable cases.

Each test constructs a scenario whose latency/throughput can be derived
on paper from Table I's parameters, and checks the simulator reproduces
it.  These pin the timing composition rules (serial walks, bus-rate
streaming, TLB reach, MSHR-bounded MLP) rather than emergent behaviour.
"""

import numpy as np
import pytest

from repro.core.ooo_core import OOOCore
from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va
from repro.workloads.trace import KIND_LOAD, KIND_NONMEM, Trace


def test_cold_walk_latency_composes_exactly():
    """A cold five-level walk: PSC probe + 5 serial (L1D+L2C+LLC+DRAM)
    round trips, each a DRAM row miss."""
    cfg = default_config()
    h = MemoryHierarchy(cfg)
    res = h.load(make_va([1, 2, 3, 4, 5]), cycle=0)
    on_chip = cfg.l1d.latency + cfg.l2c.latency + cfg.llc.latency
    # Table pages get frames 0..4; two 4KB frames share one 8KB DRAM row,
    # so the five serial PTE reads alternate row miss/hit/miss/hit/miss.
    dram = (3 * cfg.dram.row_miss_latency + 2 * cfg.dram.row_hit_latency)
    expected_walk = (cfg.dtlb.latency + cfg.stlb.latency
                     + cfg.psc.latency + 5 * on_chip + dram
                     + cfg.stlb_fill_latency)
    assert res.translation_done == expected_walk


def test_warm_hit_latency_is_dtlb_plus_l1d():
    cfg = default_config()
    h = MemoryHierarchy(cfg)
    va = make_va([1, 2, 3, 4, 5])
    h.load(va, cycle=0)
    res = h.load(va, cycle=50_000)
    assert res.data_done - 50_000 == cfg.dtlb.latency + cfg.l1d.latency


def test_replay_data_pays_issue_latency_plus_memory():
    """The replay demand starts replay_issue_latency after the walk and
    descends the whole hierarchy (cold caches, open row from the walk's
    leaf read is elsewhere)."""
    cfg = default_config()
    h = MemoryHierarchy(cfg)
    res = h.load(make_va([2, 2, 2, 2, 2], 0x10), cycle=0)
    lower = (res.translation_done + cfg.core.replay_issue_latency
             + cfg.l1d.latency + cfg.l2c.latency + cfg.llc.latency
             + cfg.dram.row_hit_latency)
    upper = (res.translation_done + cfg.core.replay_issue_latency
             + cfg.l1d.latency + cfg.l2c.latency + cfg.llc.latency
             + cfg.dram.row_miss_latency)
    assert lower <= res.data_done <= upper


def test_stream_throughput_bounded_by_bus():
    """100 distinct lines from one DRAM row cannot transfer faster than
    the channel's bucketed bus rate (one line per bus_transfer cycles)."""
    cfg = default_config()
    h = MemoryHierarchy(cfg)
    base = make_va([3, 3, 3, 3, 3])
    h.load(base, cycle=0)  # open the row / warm translation
    start, last_done = 10_000, 0
    for i in range(1, 50):
        res = h.load(base + i * 64, cycle=start)
        last_done = max(last_done, res.data_done)
    min_time = 49 * cfg.dram.bus_transfer_cycles
    assert last_done - start >= min_time


def test_stlb_reach_exact():
    """Cycling over exactly one set's worth of pages hits after the
    first pass; one extra page in the set thrashes LRU."""
    cfg = default_config()
    h = MemoryHierarchy(cfg)
    stlb = h.mmu.stlb
    sets, ways = stlb.num_sets, stlb.num_ways
    base = make_va([4, 4, 4, 0, 0])

    fitting = [base + ((i * sets) << 12) for i in range(ways)]
    for _ in range(3):
        for va in fitting:
            h.load(va, cycle=0)
    h.mmu.dtlb.invalidate_all()
    before = stlb.misses
    for va in fitting:
        h.load(va, cycle=10_000)
    assert stlb.misses == before  # all hits: the set holds `ways` pages

    thrashing = [base + ((i * sets) << 12) for i in range(ways + 1)]
    for _ in range(3):
        for va in thrashing:
            h.mmu.dtlb.invalidate_all()
            h.load(va, cycle=20_000)
    before = stlb.misses
    h.mmu.dtlb.invalidate_all()
    for va in thrashing:
        h.load(va, cycle=30_000)
    assert stlb.misses > before  # LRU cycling over ways+1 pages misses


def test_mlp_bounded_by_l1d_mshrs():
    """Halving the L1D MSHRs must not speed up a miss-parallel burst."""
    import dataclasses

    def run(mshr):
        cfg = default_config()
        cfg = cfg.with_(l1d=dataclasses.replace(cfg.l1d,
                                                mshr_entries=mshr))
        n = 400
        # Independent cold loads to distinct pages: pure MLP.
        addrs = np.array([make_va([5, 0, 0, i // 512, i % 512])
                          for i in range(n)], dtype=np.int64)
        trace = Trace(np.full(n, 0x400, dtype=np.int64),
                      np.full(n, KIND_LOAD, dtype=np.int8), addrs)
        return OOOCore(cfg, MemoryHierarchy(cfg)).run(trace).cycles

    assert run(4) >= run(24)


def test_retire_width_exact_ipc():
    """Pure non-memory code retires exactly retire_width per cycle in
    steady state."""
    cfg = default_config()
    n = 8000
    trace = Trace(np.full(n, 0x400, dtype=np.int64),
                  np.full(n, KIND_NONMEM, dtype=np.int8),
                  np.zeros(n, dtype=np.int64))
    result = OOOCore(cfg, MemoryHierarchy(cfg)).run(trace, warmup=1000)
    assert result.ipc == pytest.approx(cfg.core.retire_width, rel=0.02)
