"""Shared fixtures.

Warn-once deprecation state (``repro.params._warned_names``, also used
by the ``repro.api`` v1-compatibility re-exports) is process-global;
left alone it makes ``pytest.warns(DeprecationWarning)`` assertions
order-dependent -- whichever test touches a deprecated name first
steals the warning from every later one.  The autouse fixture resets it
around each test so every test observes first-touch behaviour.
"""

import pytest

from repro import params


@pytest.fixture(autouse=True)
def _reset_warn_once_state():
    params.reset_deprecation_warnings()
    yield
    params.reset_deprecation_warnings()
