"""Tests for the service telemetry plane: registry instrumentation of
SweepService, /metrics exposition, health gauges, JobHandle.watch and
the `repro top` dashboard renderer."""

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.obs.telemetry import validate_telemetry
from repro.service import (JobHandle, JobStore, ServiceMetrics,
                           SweepService)
from repro.service.top import render_dashboard

RUN = {"kind": "run", "benchmark": "tc", "instructions": 2000,
       "warmup": 500}


def stub_execute(spec_dict):
    return {"benchmark": spec_dict.get("benchmark"), "stub": True}


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("execute", stub_execute)
    return SweepService(store=JobStore(root=tmp_path), **kwargs)


def run_async(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# ServiceMetrics is now a view over the registry
# ----------------------------------------------------------------------
def test_legacy_metrics_read_through_registry(tmp_path):
    async def main():
        service = make_service(tmp_path)
        await service.start()
        job = await service.submit(**RUN)
        await service.wait(job)
        await service.submit(**RUN)  # store hit
        assert service.metrics.submitted == 2
        assert service.metrics.executed == 1
        assert service.metrics.store_hits == 1
        assert service.metrics.to_dict() == {
            "submitted": 2, "executed": 1, "store_hits": 1,
            "dedup_hits": 0, "requeues": 0, "failures": 0,
            "cancelled": 0, "rejected": 0}
        # Identical numbers in the telemetry snapshot.
        by_name = {s["name"]: s for s in
                   service.telemetry.snapshot()["series"]
                   if not s["labels"]}
        assert by_name["repro_jobs_executed_total"]["value"] == 1
        assert by_name["repro_store_hits_total"]["value"] == 1
        await service.close()
    run_async(main())


def test_service_metrics_unknown_attribute_raises(tmp_path):
    service = make_service(tmp_path)
    assert isinstance(service.metrics, ServiceMetrics)
    with pytest.raises(AttributeError):
        service.metrics.nonsense


# ----------------------------------------------------------------------
# Gauges in status() (the /health satellite)
# ----------------------------------------------------------------------
def test_describe_reports_point_in_time_gauges(tmp_path):
    async def main():
        service = make_service(tmp_path)
        await service.start()
        job = await service.submit(**RUN)
        await service.wait(job)
        doc = service.describe()
        gauges = doc["gauges"]
        assert gauges["queue_depth"] == 0
        assert gauges["inflight"] == 0
        assert gauges["uptime_seconds"] >= 0.0
        assert gauges["retention_evictions"] == 0
        assert gauges["states"]["done"] == 1
        assert gauges["states"]["running"] == 0
        assert validate_telemetry(doc["telemetry"]) == []
        await service.close()
    run_async(main())


def test_retention_evictions_counted(tmp_path):
    async def main():
        service = make_service(tmp_path, retention=2)
        await service.start()
        for i in range(5):
            job = await service.submit(
                kind="run", benchmark="tc", instructions=1000 + i,
                warmup=500)
            await service.wait(job)
        doc = service.describe()
        assert doc["gauges"]["retention_evictions"] == 3
        assert doc["jobs"] == 2
        await service.close()
    run_async(main())


def test_latency_histograms_observe_each_job(tmp_path):
    async def main():
        service = make_service(tmp_path)
        await service.start()
        for benchmark in ("tc", "mg"):
            job = await service.submit(kind="run", benchmark=benchmark,
                                       instructions=2000, warmup=500)
            await service.wait(job)
        series = {s["name"]: s for s in
                  service.telemetry.snapshot()["series"]
                  if s["type"] == "histogram"}
        assert series["repro_job_wait_seconds"]["count"] == 2
        assert series["repro_job_run_seconds"]["count"] == 2
        # Store hits never execute, so the run histogram must not move.
        await service.submit(kind="run", benchmark="tc",
                             instructions=2000, warmup=500)
        series = {s["name"]: s for s in
                  service.telemetry.snapshot()["series"]
                  if s["type"] == "histogram"}
        assert series["repro_job_run_seconds"]["count"] == 2
        await service.close()
    run_async(main())


def test_events_dropped_rolls_up_to_service_counter(tmp_path):
    async def main():
        service = make_service(tmp_path)
        await service.start()
        job = await service.submit(**RUN)
        # Overflow this job's backlog after the fact: the on_drop hook
        # wired by _register must feed the service-wide counter.
        job.events.maxlen = 2
        for i in range(10):
            job.events._closed = False
            job.events.emit(kind="noise", i=i)
        doc = service.describe()
        assert doc["gauges"]["events_dropped"] > 0
        assert doc["gauges"]["events_dropped"] == job.events.dropped
        await service.close()
    run_async(main())


# ----------------------------------------------------------------------
# JobHandle.watch
# ----------------------------------------------------------------------
def test_watch_streams_events_and_progress(tmp_path):
    def forwarding_execute(spec_dict, progress=None,
                           progress_interval=None):
        if progress is not None:
            for i in range(3):
                progress({"interval": i, "instructions": (i + 1) * 500,
                          "cycle": (i + 1) * 800, "ipc": 0.6,
                          "l2_mpki": 2.0, "llc_mpki": 1.0,
                          "walk_cycles": 5, "pct": (i + 1) / 4})
        return {"benchmark": spec_dict["benchmark"], "cycles": 3200,
                "instructions": 2000, "metrics": {"ipc": 0.625},
                "walk_cycles_total": 15}
    forwarding_execute.supports_progress = True

    async def main():
        service = make_service(tmp_path, execute=forwarding_execute,
                               progress_interval=500)
        await service.start()
        job = await service.submit(**RUN)
        handle = JobHandle(service, job)
        events, rows = [], []
        await handle.watch(on_event=events.append,
                           on_progress=rows.append)
        assert [e["status"] for e in events
                if e.get("kind") == "status"] \
            == ["pending", "running", "done"]
        assert len(rows) == 4  # 3 worker rows + the final row
        assert rows[-1]["final"] is True
        assert rows[-1]["cycle"] == 3200
        assert handle.progress["final"] is True
        await service.close()
    run_async(main())


def test_watch_without_callbacks_just_waits(tmp_path):
    async def main():
        service = make_service(tmp_path)
        await service.start()
        job = await service.submit(**RUN)
        handle = await JobHandle(service, job).watch()
        assert handle.status.value == "done"
        await service.close()
    run_async(main())


# ----------------------------------------------------------------------
# Forwarding config guard rails
# ----------------------------------------------------------------------
def test_stub_executors_never_receive_progress_kwargs(tmp_path):
    # stub_execute has no supports_progress attribute: the service must
    # call it with one argument even though forwarding is configured.
    async def main():
        service = make_service(tmp_path, progress_interval=100)
        await service.start()
        job = await service.submit(**RUN)
        await service.wait(job)
        assert job.status.value == "done"
        assert job.progress is None
        await service.close()
    run_async(main())


def test_progress_interval_validation(tmp_path):
    with pytest.raises(ValueError):
        make_service(tmp_path, progress_interval=0)
    with pytest.raises(ValueError):
        make_service(tmp_path, progress_interval=-5)
    service = make_service(tmp_path, progress_interval=None)
    assert service.progress_interval is None


# ----------------------------------------------------------------------
# GET /metrics over HTTP
# ----------------------------------------------------------------------
@pytest.fixture
def server(tmp_path):
    from repro.service.http import build_server
    service = make_service(tmp_path)
    httpd, runtime = build_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        httpd.shutdown()
        httpd.server_close()
        runtime.stop()
        thread.join(timeout=10)


def _scrape(url):
    with urllib.request.urlopen(url + "/metrics", timeout=30) as resp:
        return resp.headers["Content-Type"], resp.read().decode()


def test_metrics_endpoint_serves_prometheus_text(server):
    from repro.service.cli import request, wait_for_job
    url, service = server
    job = request(url, "/jobs", method="POST", body=RUN)
    wait_for_job(url, job["id"])
    request(url, "/jobs", method="POST", body=RUN)  # store hit

    content_type, text = _scrape(url)
    assert content_type.startswith("text/plain")
    assert "version=0.0.4" in content_type
    lines = text.splitlines()
    assert "repro_jobs_submitted_total 2" in lines
    assert "repro_jobs_executed_total 1" in lines
    assert "repro_store_hits_total 1" in lines
    assert "repro_queue_depth 0" in lines
    assert 'repro_jobs_state{state="done"} 2' in lines
    assert any(line.startswith("repro_job_wait_seconds_bucket")
               for line in lines)
    assert "repro_job_run_seconds_count 1" in lines
    # Every non-comment line parses as `name{labels} value`.
    for line in lines:
        if line.startswith("#") or not line:
            continue
        name_part, _, value = line.rpartition(" ")
        assert name_part and float(value) is not None


def test_health_telemetry_block_validates(server):
    from repro.service.cli import request
    url, _ = server
    doc = request(url, "/health")
    assert validate_telemetry(doc["telemetry"]) == []
    assert doc["gauges"]["states"]["pending"] == 0


# ----------------------------------------------------------------------
# repro top renderer
# ----------------------------------------------------------------------
def make_health(**gauges):
    base = {"queue_depth": 1, "inflight": 2, "uptime_seconds": 42.0,
            "retention_evictions": 0, "events_dropped": 0,
            "progress_events": 7,
            "states": {"running": 1, "pending": 1, "done": 3,
                       "failed": 0, "cancelled": 0}}
    base.update(gauges)
    return {"workers": 4, "queue_size": 256,
            "metrics": {"executed": 3, "store_hits": 1, "dedup_hits": 0,
                        "requeues": 0, "rejected": 0},
            "gauges": base}


def test_render_dashboard_shows_gauges_and_progress_bars():
    jobs = [
        {"id": "job-000001-aaaaaaaa", "kind": "run", "status": "running",
         "progress": {"pct": 0.5, "ipc": 0.934, "l2_mpki": 12.5,
                      "llc_mpki": 3.25, "walk_cycles": 1234,
                      "instructions": 60000}},
        {"id": "job-000002-bbbbbbbb", "kind": "run", "status": "pending",
         "attempts": 0},
        {"id": "job-000003-cccccccc", "kind": "run", "status": "done",
         "progress": {"pct": 1.0, "ipc": 1.1, "l2_mpki": 4.0,
                      "llc_mpki": 1.0, "walk_cycles": 99}},
        {"id": "job-000004-dddddddd", "kind": "run", "status": "failed",
         "error": "ValueError: boom"},
    ]
    frame = render_dashboard(make_health(), jobs, width=100)
    assert "queue 1/256" in frame
    assert "inflight 2" in frame
    assert "exec 3" in frame
    assert "progress-rows 7" in frame
    assert "job-000001-aaaaaaaa" in frame
    assert "[##########----------]" in frame   # 50% bar
    assert "ipc 0.934" in frame
    assert "ValueError: boom" in frame
    # Running sorts above pending sorts above done.
    lines = frame.splitlines()
    order = [lines.index(next(ln for ln in lines if jid in ln))
             for jid in ("job-000001", "job-000002", "job-000004",
                         "job-000003")]
    assert order == sorted(order)


def test_render_dashboard_limits_rows_and_handles_empty():
    jobs = [{"id": f"job-{i:06d}-ffffffff", "kind": "run",
             "status": "done"} for i in range(30)]
    frame = render_dashboard(make_health(), jobs, width=80, limit=5)
    assert "... 25 more" in frame
    empty = render_dashboard(make_health(), [], width=80)
    assert "(no jobs)" in empty
    assert all(len(line) <= 80 for line in frame.splitlines())


def test_top_once_against_live_server(server, capsys):
    import argparse

    from repro.service.cli import add_service_parsers, request, \
        wait_for_job
    url, _ = server
    job = request(url, "/jobs", method="POST", body=RUN)
    wait_for_job(url, job["id"])

    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers(dest="command")
    add_service_parsers(sub)
    args = parser.parse_args(["top", "--once", "--url", url])
    assert args.service_func(args) == 0
    out = capsys.readouterr().out
    assert "repro top" in out
    assert job["id"] in out


def test_top_unreachable_service_fails_cleanly(capsys):
    import argparse

    from repro.service.cli import add_service_parsers
    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers(dest="command")
    add_service_parsers(sub)
    args = parser.parse_args(
        ["top", "--once", "--url", "http://127.0.0.1:1"])
    assert args.service_func(args) == 1
    assert "repro top" in capsys.readouterr().err
