"""Tests for the sharded content-addressed job store.

The service store is :class:`~repro.experiments.parallel.ResultCache`
grown digest-level access: the two must agree byte-for-byte at the same
digest so figure batches warmed through ``--jobs`` and sweeps submitted
to the service share results.
"""

import json

import pytest

from repro import api
from repro.experiments.parallel import (CACHE_SCHEMA_VERSION, ResultCache,
                                        RunKey, RunSummary, SHARD_WIDTH)
from repro.service import JobStore
from repro.service.store import MANIFEST_SCHEMA

DIGEST = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


@pytest.fixture
def store(tmp_path):
    return JobStore(root=tmp_path)


# ----------------------------------------------------------------------
# Sharded layout
# ----------------------------------------------------------------------
def test_payloads_land_in_fanout_shards(store):
    store.put_payload(DIGEST, {"x": 1})
    path = store.dir / DIGEST[:SHARD_WIDTH] / f"{DIGEST}.json"
    assert path.is_file()
    assert json.loads(path.read_text()) == {"x": 1}
    assert store.get_payload(DIGEST) == {"x": 1}


def test_distinct_prefixes_get_distinct_shards(store):
    store.put_payload(DIGEST, {"x": 1})
    store.put_payload(OTHER, {"y": 2})
    assert (store.dir / DIGEST[:SHARD_WIDTH]).is_dir()
    assert (store.dir / OTHER[:SHARD_WIDTH]).is_dir()
    assert store.digests() == sorted([DIGEST, OTHER])


def test_pre_sharding_flat_entries_still_readable(store):
    # Entries written by the pre-sharding ResultCache live flat in the
    # fingerprint directory; reads (and contains) must still find them.
    store.dir.mkdir(parents=True, exist_ok=True)
    (store.dir / f"{DIGEST}.json").write_text(json.dumps({"legacy": True}))
    assert store.contains(DIGEST)
    assert store.get_payload(DIGEST) == {"legacy": True}
    assert DIGEST in store.digests()


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
def test_counters_track_hits_misses_stores(store):
    assert store.get_payload(DIGEST) is None
    store.put_payload(DIGEST, {"x": 1})
    store.get_payload(DIGEST)
    assert (store.hits, store.misses, store.stores) == (1, 1, 1)


def test_contains_has_no_counter_side_effects(store):
    store.put_payload(DIGEST, {"x": 1})
    hits, misses = store.hits, store.misses
    assert store.contains(DIGEST)
    assert not store.contains(OTHER)
    assert (store.hits, store.misses) == (hits, misses)


# ----------------------------------------------------------------------
# Manifest (the CI artifact / GET /store document)
# ----------------------------------------------------------------------
def test_manifest_inventory(store):
    store.put_payload(DIGEST, {"x": 1})
    store.get_payload(DIGEST)
    store.get_payload(OTHER)  # miss
    doc = store.manifest()
    assert doc["schema"] == MANIFEST_SCHEMA
    assert doc["cache_schema_version"] == CACHE_SCHEMA_VERSION
    assert doc["shard_width"] == SHARD_WIDTH
    assert doc["entries"] == 1 and doc["digests"] == [DIGEST]
    assert doc["counters"] == {"hits": 1, "misses": 1, "stores": 1}
    assert json.loads(json.dumps(doc)) == doc  # JSON-clean


# ----------------------------------------------------------------------
# ResultCache interop: same digest, same bytes
# ----------------------------------------------------------------------
def test_runner_cache_entry_serves_as_job_payload(tmp_path):
    key = RunKey.make("tc", instructions=2_000, warmup=500)
    summary = RunSummary.from_run(
        api.run("tc", instructions=2_000, warmup=500), seed=1)
    cache = ResultCache(root=tmp_path, fingerprint="pinned")
    cache.put(key, summary)

    store = JobStore(root=tmp_path, fingerprint="pinned")
    assert store.contains(key.digest)
    assert store.get_payload(key.digest) == summary.to_dict()


def test_job_payload_serves_runner_cache(tmp_path):
    key = RunKey.make("tc", instructions=2_000, warmup=500)
    summary = RunSummary.from_run(
        api.run("tc", instructions=2_000, warmup=500), seed=1)
    store = JobStore(root=tmp_path, fingerprint="pinned")
    store.put_payload(key.digest, summary.to_dict())

    cache = ResultCache(root=tmp_path, fingerprint="pinned")
    cached = cache.get(key)
    assert cached is not None
    assert cached.to_dict() == summary.to_dict()
