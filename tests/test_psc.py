"""Tests for the paging-structure caches."""

import pytest

from repro.params import PSCConfig
from repro.vm.address import make_va
from repro.vm.psc import PagingStructureCaches


def make_psc():
    return PagingStructureCaches(PSCConfig())


def test_full_miss():
    psc = make_psc()
    level, frame = psc.lookup(make_va([1, 2, 3, 4, 5]))
    assert level is None and frame is None
    assert psc.misses == 1


def test_hit_after_fill():
    psc = make_psc()
    va = make_va([1, 2, 3, 4, 5])
    psc.fill(va, 3, next_table_frame=0x42)
    level, frame = psc.lookup(va)
    assert level == 3
    assert frame == 0x42


def test_deepest_level_wins():
    """PSCL2 hit beats PSCL4 hit: it leaves the shortest walk."""
    psc = make_psc()
    va = make_va([1, 2, 3, 4, 5])
    psc.fill(va, 4, 0x44)
    psc.fill(va, 2, 0x22)
    level, frame = psc.lookup(va)
    assert level == 2
    assert frame == 0x22


def test_tag_granularity_per_level():
    psc = make_psc()
    va1 = make_va([1, 2, 3, 4, 5])
    va2 = make_va([1, 2, 3, 4, 9])  # same level-2 path, different leaf
    psc.fill(va1, 2, 0x22)
    level, frame = psc.lookup(va2)
    assert level == 2  # leaf index is below the PSCL2 tag


def test_capacity_eviction_lru():
    cfg = PSCConfig(pscl5_entries=2)
    psc = PagingStructureCaches(cfg)
    vas = [make_va([i, 0, 0, 0, 0]) for i in range(3)]
    psc.fill(vas[0], 5, 0)
    psc.fill(vas[1], 5, 1)
    psc.lookup(vas[0])       # refresh
    psc.fill(vas[2], 5, 2)   # evicts vas[1]
    assert psc.lookup(vas[1]) == (None, None)
    assert psc.lookup(vas[0])[0] == 5


def test_leaf_level_never_cached():
    psc = make_psc()
    va = make_va([1, 2, 3, 4, 5])
    psc.fill(va, 1, 0x11)  # level 1 has no PSC
    assert psc.lookup(va) == (None, None)


def test_hit_statistics():
    psc = make_psc()
    va = make_va([1, 2, 3, 4, 5])
    psc.fill(va, 3, 1)
    psc.lookup(va)
    assert psc.hits_by_level[3] == 1
    assert psc.lookups == 1
