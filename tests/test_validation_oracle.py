"""Tests for repro.validate.oracle: the functional reference model must
agree with the timed cache on clean runs, catch injected policy bugs, and
taint itself out of timing-dependent comparisons."""

import random

import pytest

from repro.cache.cache import Cache
from repro.memsys.request import AccessType, MemoryRequest
from repro.params import CacheConfig
from repro.validate.invariants import CheckContext, ValidationError
from repro.validate.oracle import CacheOracle, FunctionalCache


class Null:
    def access(self, req):
        req.served_by = "DRAM"
        return req.cycle + 100


def lru_cache(sets=8, ways=4):
    cache = Cache(CacheConfig("T", sets * ways * 64, ways, 10), Null())
    assert cache.policy.name == "lru"
    return cache


def shadowed(sets=8, ways=4, strict=True):
    cache = lru_cache(sets, ways)
    oracle = CacheOracle(cache, CheckContext(strict)).attach()
    return cache, oracle


def req(line, cycle=0, kind=AccessType.LOAD):
    return MemoryRequest(address=line << 6, cycle=cycle, access_type=kind)


# ----------------------------------------------------------------------
def test_functional_cache_true_lru():
    shadow = FunctionalCache(num_sets=1, num_ways=2)
    for line in (0, 8, 0, 16):  # 16 evicts 8 (0 was promoted)
        shadow.access(req(line))
    assert shadow.contains(0) and shadow.contains(16)
    assert not shadow.contains(8)
    assert (shadow.hits, shadow.misses) == (1, 3)


def test_functional_cache_writeback_sets_dirty_without_promotion():
    shadow = FunctionalCache(num_sets=1, num_ways=2)
    shadow.access(req(0))
    shadow.access(req(8))
    shadow.access(req(0, kind=AccessType.WRITEBACK))  # dirty, stays LRU order
    shadow.access(req(16))  # evicts 0: WRITEBACK hit must not promote
    assert not shadow.contains(0)


def test_oracle_agrees_on_random_stream():
    cache, oracle = shadowed()
    rng = random.Random(7)
    cycle = 0
    for _ in range(2000):
        kind = (AccessType.STORE if rng.random() < 0.25 else AccessType.LOAD)
        cycle = cache.access(req(rng.randrange(64), cycle, kind)) + 1
    oracle.final_check()
    assert oracle.compared == 2000
    assert oracle.ctx.violations == []


def test_oracle_agrees_with_eviction_during_inflight_fill():
    """Regression for the merge re-install fix: a line evicted while its
    fill is in flight must be re-installed when a later request merges,
    exactly as the functional model predicts."""
    cache, oracle = shadowed(sets=1, ways=2)
    cache.access(req(0, cycle=0))      # miss, fill at 110
    cache.access(req(1, cycle=0))      # miss
    cache.access(req(2, cycle=0))      # miss, evicts 0 (fill in flight)
    done = cache.access(req(0, cycle=5))  # merges with 0's pending fill
    assert done == 110
    assert cache.contains(0)           # re-installed by the merge
    oracle.final_check()
    assert oracle.ctx.violations == []


def test_oracle_catches_injected_promotion_bug():
    """Sabotage the timed policy so hits stop promoting: the shadow model
    must flag the divergence once an eviction decision differs."""
    cache, oracle = shadowed(sets=1, ways=2, strict=False)
    cache.policy.on_hit = lambda set_idx, way, req: None
    cycle = 0
    for line in (0, 8, 0, 16, 0):  # sabotaged LRU evicts 0 instead of 8
        cycle = cache.access(req(line, cycle)) + 1
    assert oracle.ctx.violations != []


def test_oracle_catches_phantom_eviction():
    cache, oracle = shadowed(strict=False)
    cycle = 0
    for line in range(16):
        cycle = cache.access(req(line, cycle)) + 1
    store = cache.store
    line = next(iter(store.slot_of))
    store.valid[store.slot_of.pop(line)] = 0  # vanishes behind oracle's back
    oracle.final_check()
    assert any("residency" in v for v in oracle.ctx.violations)


def test_oracle_taints_on_prefetch_traffic():
    cache, oracle = shadowed()
    cache.access(req(0, cycle=0))
    cache.access(req(1, cycle=0, kind=AccessType.PREFETCH))
    assert oracle.taint_reason is not None
    compared = oracle.compared
    cache.access(req(2, cycle=0))  # no longer compared
    assert oracle.compared == compared
    oracle.final_check()  # tainted: silent regardless of divergence
    assert oracle.ctx.violations == []


def test_oracle_taints_on_bypass_predicate():
    cache, oracle = shadowed()
    cache.bypass_predicate = lambda r: True
    cache.access(req(0, cycle=0))
    assert oracle.taint_reason is not None


def test_oracle_reset_follows_cache_reset():
    cache, oracle = shadowed()
    cycle = 0
    for line in range(8):
        cycle = cache.access(req(line, cycle)) + 1
    cache.reset_stats()
    assert (oracle.shadow.hits, oracle.shadow.misses) == (0, 0)
    for line in range(8):
        cycle = cache.access(req(line, cycle)) + 1  # all hits, both models
    oracle.final_check()
    assert oracle.ctx.violations == []
