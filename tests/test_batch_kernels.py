"""Seeded property tests: batch kernels vs the scalar structures.

Each kernel in :mod:`repro.cache.batch` re-expresses one scalar decision
(residency probe, TLB/PSC lookup, RRIP/LRU victim choice, LRU stamping)
as an array operation.  These tests drive both sides with the same
seeded random state and require *decision-level* equality -- the same
hits, the same slots, the same victims, the same stamps -- which is the
property the backend's bit-identity contract rests on.

Address generators deliberately include values above 2**53 (where
float64 round-trips silently lose bits); see the dtype-hazard tests at
the bottom and ``_as_i64`` in :mod:`repro.cache.batch`.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cache.batch import (StoreMirror, TLBMirror, _as_i64,
                               last_occurrence_stamps, lru_victim,
                               probe_lines, psc_probe, rrip_age_and_victim,
                               tlb_probe)
from repro.cache.block import CacheBlock
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.srrip import SRRIPPolicy
from repro.cache.store import CacheStore
from repro.params import BITS_PER_LEVEL, PAGE_SHIFT, default_config
from repro.vm.psc import PSC_LEVELS, PagingStructureCaches
from repro.vm.tlb import TLB

SEEDS = (1, 7, 42)

#: High bit set well above 2**53: any float round-trip in a kernel would
#: corrupt these and the comparisons below would catch it.
HIGH_BASE = 1 << 56


def _line_in_set(rng: random.Random, num_sets: int, set_idx: int) -> int:
    """A random line address (sometimes above 2**53) mapping to set_idx."""
    raw = rng.getrandbits(57) if rng.random() < 0.5 else \
        HIGH_BASE + rng.getrandbits(40)
    return raw - (raw % num_sets) + set_idx


# ----------------------------------------------------------------------
# Residency probe vs slot_of
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_probe_lines_matches_slot_of(seed):
    rng = random.Random(seed)
    num_sets, num_ways = rng.choice(((16, 4), (64, 8), (8, 16)))
    store = CacheStore(num_sets, num_ways)
    mirror = StoreMirror(store)
    resident = []
    for _ in range(num_sets * num_ways // 2):
        set_idx = rng.randrange(num_sets)
        way = rng.randrange(num_ways)
        slot = set_idx * num_ways + way
        if store.valid[slot]:
            del store.slot_of[store.line[slot]]
        line = _line_in_set(rng, num_sets, set_idx)
        store.reset_slot(slot, line, fill_cycle=0)
        store.slot_of[line] = slot
        resident.append(line)
    # Some random invalidations so stale addresses linger in the columns.
    for line in rng.sample(resident, len(resident) // 4):
        slot = store.slot_of.pop(line, None)
        if slot is not None:
            store.valid[slot] = 0
    probes = [rng.choice(resident) if rng.random() < 0.6 else
              _line_in_set(rng, num_sets, rng.randrange(num_sets))
              for _ in range(200)]
    hit, slots = mirror.probe(probes)
    for i, line in enumerate(probes):
        expected = store.slot_of.get(line)
        assert bool(hit[i]) == (expected is not None), hex(line)
        if expected is not None:
            assert int(slots[i]) == expected, hex(line)


# ----------------------------------------------------------------------
# TLB probe vs TLB.lookup
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_tlb_probe_matches_lookup(seed):
    rng = random.Random(seed)
    tlb = TLB(default_config(64).dtlb)
    vpns = []
    for _ in range(tlb.num_sets * tlb.num_ways * 2):  # force evictions
        vpn = rng.getrandbits(45) | (1 << 44)
        tlb.fill(vpn, pfn=rng.getrandbits(40))
        vpns.append(vpn)
    mirror = TLBMirror(tlb)
    probes = [rng.choice(vpns) if rng.random() < 0.6 else
              rng.getrandbits(45) for _ in range(300)]
    hit, pfns = mirror.probe(probes)
    for i, vpn in enumerate(probes):
        frame = tlb.lookup(vpn, count=False)
        assert bool(hit[i]) == (frame is not None), hex(vpn)
        if frame is not None:
            assert int(pfns[i]) == frame, hex(vpn)


# ----------------------------------------------------------------------
# PSC probe vs PagingStructureCaches.lookup
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_psc_probe_matches_lookup(seed):
    rng = random.Random(seed)
    psc = PagingStructureCaches(default_config(64).psc)
    for _ in range(100):
        va = rng.getrandbits(56)
        level = rng.choice(PSC_LEVELS)
        psc.fill(va, level, next_table_frame=rng.getrandbits(40))
    level_keys, level_values, level_shifts = [], [], []
    for level in PSC_LEVELS:
        data = psc._caches[level]._data
        level_keys.append(np.asarray(list(data.keys()), dtype=np.int64))
        level_values.append(np.asarray(list(data.values()), dtype=np.int64))
        level_shifts.append(PAGE_SHIFT + BITS_PER_LEVEL * (level - 1))
    probes = [rng.getrandbits(56) for _ in range(300)]
    hit_idx, frames = psc_probe(level_keys, level_values, level_shifts,
                                probes)
    for i, va in enumerate(probes):
        level, frame = psc.lookup(va)
        expected_idx = PSC_LEVELS.index(level) if level is not None else -1
        assert int(hit_idx[i]) == expected_idx, hex(va)
        if level is not None:
            assert int(frames[i]) == frame, hex(va)


# ----------------------------------------------------------------------
# Replacement-policy kernels vs scalar victim()
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_rrip_age_and_victim_matches_scalar(seed):
    rng = random.Random(seed)
    num_sets, num_ways = 32, 8
    store = CacheStore(num_sets, num_ways)
    policy = SRRIPPolicy(num_sets, num_ways)
    policy.bind(store)
    rows = np.asarray([[rng.randint(0, policy.max_rrpv)
                        for _ in range(num_ways)]
                       for _ in range(num_sets)], dtype=np.int64)
    store.rrpv[:] = [int(v) for v in rows.ravel()]
    victims, aged = rrip_age_and_victim(rows, policy.max_rrpv)
    for set_idx in range(num_sets):
        assert int(victims[set_idx]) == policy.victim(set_idx, None)
    # victim() applies the aging delta in place; the kernel must agree.
    assert aged.ravel().tolist() == store.rrpv


@pytest.mark.parametrize("seed", SEEDS)
def test_lru_victim_matches_scalar(seed):
    rng = random.Random(seed)
    num_sets, num_ways = 64, 12
    policy = LRUPolicy(num_sets, num_ways)
    policy._stamp = [rng.randrange(1000) for _ in range(num_sets * num_ways)]
    rows = np.asarray(policy._stamp, dtype=np.int64).reshape(
        (num_sets, num_ways))
    victims = lru_victim(rows)
    for set_idx in range(num_sets):
        assert int(victims[set_idx]) == policy.victim(set_idx, None)


@pytest.mark.parametrize("seed", SEEDS)
def test_last_occurrence_stamps_matches_sequential(seed):
    rng = random.Random(seed)
    keys = [rng.randrange(20) for _ in range(rng.randrange(0, 400))]
    clock = rng.randrange(10_000)
    # The scalar reference: stamp every touch, keep the last.
    ref, ref_clock = {}, clock
    for key in keys:
        ref_clock += 1
        ref[key] = ref_clock
    uniq, stamps, clock_end = last_occurrence_stamps(
        np.asarray(keys, dtype=np.int64), clock)
    assert clock_end == ref_clock
    assert dict(zip(uniq, stamps)) == ref
    assert all(type(k) is int for k in uniq)  # no np.int64 leakage
    assert all(type(s) is int for s in stamps)


# ----------------------------------------------------------------------
# Column snapshot / load_block round trip keeps the line mirror in sync
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_snapshot_load_block_roundtrip_syncs_mirror(seed):
    rng = random.Random(seed)
    store = CacheStore(8, 4)
    mirror = store.enable_line_mirror()
    src, dst = rng.sample(range(store.size), 2)
    line = HIGH_BASE + rng.getrandbits(40)
    store.reset_slot(src, line, fill_cycle=rng.randrange(100))
    for column in ("dirty", "reused", "is_translation", "is_replay",
                   "is_prefetch", "dead_on_hit"):
        getattr(store, column)[src] = rng.randrange(2)
    store.signature[src] = rng.getrandbits(14)
    store.rrpv[src] = rng.randrange(4)
    block = store.snapshot(src)
    assert isinstance(block, CacheBlock)
    store.load_block(dst, block)
    for column in ("line", "valid", "dirty", "reused", "is_translation",
                   "is_leaf_translation", "is_replay", "is_prefetch",
                   "dead_on_hit", "signature", "rrpv", "fill_cycle"):
        col = getattr(store, column)
        assert col[dst] == col[src], column
    # The incremental int64 mirror followed both writes.
    assert int(mirror[src]) == line
    assert int(mirror[dst]) == line


# ----------------------------------------------------------------------
# Dtype hazards: 64-bit addresses must survive every kernel
# ----------------------------------------------------------------------
def test_as_i64_rejects_float_arrays():
    with pytest.raises(TypeError, match="float"):
        _as_i64(np.asarray([1.0, 2.0]))


def test_as_i64_preserves_bits_above_2_53():
    vals = [(1 << 56) + 3, (1 << 62) + 1]
    out = _as_i64(vals)
    assert out.dtype == np.int64
    assert out.tolist() == vals
    # The hazard being guarded against: float64 cannot hold these.
    assert int(float(vals[0])) != vals[0]


@pytest.mark.parametrize("seed", SEEDS)
def test_probe_lines_exact_above_2_53(seed):
    """Two lines differing only in a low bit, both above 2**53: a float
    round-trip anywhere in the probe would conflate them."""
    rng = random.Random(seed)
    num_sets, num_ways = 16, 4
    store = CacheStore(num_sets, num_ways)
    mirror = StoreMirror(store)
    set_idx = rng.randrange(num_sets)
    base = (HIGH_BASE + (rng.getrandbits(40) << 8))
    resident = base - (base % num_sets) + set_idx
    twin = resident + num_sets  # same set, adjacent line
    store.reset_slot(set_idx * num_ways, resident, fill_cycle=0)
    store.slot_of[resident] = set_idx * num_ways
    hit, slots = mirror.probe([resident, twin])
    assert bool(hit[0]) and int(slots[0]) == set_idx * num_ways
    assert not bool(hit[1])


# ----------------------------------------------------------------------
# DRAM array kernels vs the scalar controller
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_map_lines_matches_scalar_map(seed):
    from repro.memsys.dram import DRAM, map_lines
    from repro.params import DRAMConfig

    rng = random.Random(seed)
    cfg = DRAMConfig(channels=rng.choice((1, 2, 4)),
                     banks_per_channel=rng.choice((8, 16, 32)))
    dram = DRAM(cfg)
    lines = [rng.getrandbits(57) if rng.random() < 0.5
             else HIGH_BASE + rng.getrandbits(40) for _ in range(400)]
    channel, bank_idx, row = map_lines(cfg, lines)
    for i, line in enumerate(lines):
        s_channel, s_bank, s_row = dram._map(line)
        assert int(channel[i]) == s_channel
        assert int(bank_idx[i]) == s_channel * cfg.banks_per_channel + s_bank
        assert int(row[i]) == s_row


@pytest.mark.parametrize("seed", SEEDS)
def test_row_hit_plan_matches_scalar_row_outcomes(seed):
    """Hit/miss per access and final open rows, against DRAM.access.

    The scalar controller is driven request-by-request (its row state is
    order-only -- timing feeds back into latency, never into row
    outcome); the kernel sees the whole sequence at once plus the
    pre-batch open-row snapshot.
    """
    from repro.memsys.dram import DRAM, map_lines, row_hit_plan
    from repro.memsys.request import MemoryRequest
    from repro.params import DRAMConfig

    rng = random.Random(seed)
    cfg = DRAMConfig(channels=rng.choice((1, 2)),
                     banks_per_channel=rng.choice((4, 8)))
    dram = DRAM(cfg)
    lines_per_row = cfg.row_buffer_bytes >> 6
    # Pre-warm: leave some rows open before the batch snapshot.
    pool = [rng.randrange(64) * lines_per_row + rng.randrange(lines_per_row)
            for _ in range(32)]
    for line in rng.choices(pool, k=40):
        dram._raw_access(line, rng.randrange(1000))
    open_before = dram.open_row_array()

    batch = rng.choices(pool, k=200)
    channel, bank_idx, rows = map_lines(cfg, batch)
    hits, new_open = row_hit_plan(open_before, bank_idx, rows)

    snapshot = open_before.copy()
    scalar_hits = []
    for line in batch:
        before = dram.row_hits
        dram._raw_access(line, rng.randrange(1000))
        scalar_hits.append(dram.row_hits > before)
    assert hits.tolist() == scalar_hits
    assert new_open.tolist() == dram.open_row_array().tolist()
    # The input snapshot must not have been mutated.
    assert open_before.tolist() == snapshot.tolist()
    assert not np.shares_memory(open_before, new_open)


# ----------------------------------------------------------------------
# MSHR bulk kernels vs the scalar table
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_mshr_bulk_lookup_matches_lookup(seed):
    from repro.memsys.mshr import MSHR

    rng = random.Random(seed)
    mshr = MSHR(entries=16)
    pool = [rng.getrandbits(57) for _ in range(24)]
    for line in rng.sample(pool, 12):
        mshr.allocate(line, fill_cycle=rng.randrange(2000), now=0)
    now = rng.randrange(2000)
    probes = rng.choices(pool, k=64)
    out = mshr.bulk_lookup(probes, now)
    merges_before = mshr.merges
    for i, line in enumerate(probes):
        expected = mshr.lookup(line, now)
        assert int(out[i]) == (expected if expected is not None else -1)
    # And the bulk form itself was side-effect free.
    assert mshr.merges == merges_before + sum(1 for v in out if v != -1)


@pytest.mark.parametrize("seed", SEEDS)
def test_mshr_bulk_expire_matches_scalar_expire(seed):
    from repro.memsys.mshr import MSHR

    rng = random.Random(seed)
    bulk, scalar = MSHR(entries=16), MSHR(entries=16)
    for _ in range(20):
        line, fill = rng.getrandbits(57), rng.randrange(2000)
        bulk.allocate(line, fill, now=0)
        scalar.allocate(line, fill, now=0)
    now = rng.randrange(2000)
    before = len(scalar._inflight)
    retired = bulk.bulk_expire(now)
    scalar._expire(now)
    assert bulk._inflight == scalar._inflight
    assert retired == before - len(scalar._inflight)
    assert bulk.expirations == scalar.expirations


# ----------------------------------------------------------------------
# Walk-cohort precompute vs sequential first walks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_walk_entries_batch_matches_sequential_walks(seed):
    """Cohort precompute must leave the allocator in the same state as
    the scalar core walking the same VPNs in first-occurrence order."""
    from repro.cache.batch import first_occurrence_unique
    from repro.vm.page_table import PageTable

    rng = random.Random(seed)
    vpns = [rng.randrange(1 << 20) for _ in range(40)]
    vpns = rng.choices(vpns, k=200)  # heavy duplication

    sequential = PageTable()
    seq_results = {}
    for vpn in vpns:
        pfn, entries = sequential.walk_entries(vpn << PAGE_SHIFT)
        seq_results.setdefault(vpn, (pfn, entries))

    batched = PageTable()
    cache = {}
    cohort = first_occurrence_unique(np.asarray(vpns, dtype=np.int64))
    fresh = batched.walk_entries_batch(cohort.tolist(), cache)

    assert fresh == len(set(vpns))
    assert set(cache) == set(seq_results)
    for vpn, (pfn, entries) in seq_results.items():
        assert cache[vpn] == (pfn, entries)
    # Identical allocation trajectory => identical allocator state.
    assert batched.table_pages == sequential.table_pages
    assert batched.data_pages == sequential.data_pages
    assert batched.allocator._counter == sequential.allocator._counter
    # Already-cached VPNs are pure lookups.
    assert batched.walk_entries_batch(cohort.tolist(), cache) == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_first_occurrence_unique_matches_dict_order(seed):
    from repro.cache.batch import first_occurrence_unique

    rng = random.Random(seed)
    keys = [rng.randrange(64) if rng.random() < 0.8
            else HIGH_BASE + rng.getrandbits(40) for _ in range(300)]
    out = first_occurrence_unique(np.asarray(keys, dtype=np.int64))
    assert out.tolist() == list(dict.fromkeys(keys))


# ----------------------------------------------------------------------
# Recall kernel vs the tracker's backward walk
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_recall_unique_counts_matches_backward_walk(seed):
    """Pin the searchsorted form to RecallTracker.on_access's loop.

    ``stamps`` model one set's ``last_seen`` values in recency order --
    strictly increasing, the invariant the tracker maintains by stamping
    every touch with an advancing clock.
    """
    from repro.cache.batch import recall_unique_counts
    from repro.stats.recall import _CAP

    rng = random.Random(seed)
    stamps, t = [], 0
    for _ in range(rng.randrange(1, 200)):
        t += rng.randrange(1, 4)
        stamps.append(t)
    starts = [rng.randrange(0, t + 2) for _ in range(100)]

    def scalar_count(start: int) -> int:
        count = 0
        for stamp in reversed(stamps):      # RecallTracker.on_access
            if stamp < start or count >= _CAP:
                break
            count += 1
        return count

    out = recall_unique_counts(np.asarray(stamps, dtype=np.int64),
                               starts, _CAP)
    assert out.tolist() == [scalar_count(s) for s in starts]


def test_recall_unique_counts_empty_set():
    from repro.cache.batch import recall_unique_counts
    out = recall_unique_counts(np.zeros(0, dtype=np.int64), [0, 5], 64)
    assert out.tolist() == [0, 0]
