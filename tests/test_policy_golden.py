"""Golden end-to-end runs: one fixed-seed synthetic workload per
replacement policy, asserting *exact* counter values.

These pins catch silent behavioural drift anywhere in the stack --
trace generation, translation, MSHR timing, replacement decisions --
that the tolerance-band figure tests would absorb.  If a change is
*supposed* to alter simulated behaviour, regenerate the constants with
the recipe in docs/validation.md and account for the shift in the PR.
"""

import dataclasses

import pytest

from repro.experiments.runner import run_benchmark
from repro.params import EnhancementConfig, default_config

#: policy -> (cycles, LLC hits, LLC misses, STLB misses) for
#: run_benchmark("pr", instructions=8000, warmup=2000, scale=16, seed=1).
GOLDEN = {
    "lru": (12612, 570, 1478, 717),
    "drrip": (12607, 568, 1480, 717),
    "ship": (12338, 570, 1478, 717),
    "hawkeye": (12360, 562, 1486, 717),
    "t_drrip": (12380, 459, 1479, 717),
    "t_ship": (12383, 570, 1478, 717),
    "t_hawkeye": (12360, 563, 1485, 717),
}


def config_for(policy):
    cfg = default_config(16)
    if policy == "t_drrip":
        # T-DRRIP is the L2C-side enhancement (LLC keeps its default).
        return cfg.with_(enhancements=EnhancementConfig(t_drrip=True))
    if policy in ("t_ship", "t_hawkeye"):
        return cfg.with_(
            llc=dataclasses.replace(cfg.llc, replacement=policy[2:]),
            enhancements=EnhancementConfig(t_ship=True))
    return cfg.with_(llc=dataclasses.replace(cfg.llc, replacement=policy))


@pytest.mark.parametrize("policy", sorted(GOLDEN))
def test_policy_golden_counters(policy):
    result = run_benchmark("pr", config=config_for(policy),
                           instructions=8_000, warmup=2_000,
                           scale=16, seed=1)
    llc = result.hierarchy.llc.stats
    got = (result.cycles, sum(llc.hits.values()), sum(llc.misses.values()),
           result.hierarchy.mmu.stlb.misses)
    assert got == GOLDEN[policy], (
        f"{policy}: counters drifted from golden values "
        f"(got {got}, expected {GOLDEN[policy]}); if the behaviour change "
        f"is intentional, regenerate per docs/validation.md")


@pytest.mark.parametrize("policy", sorted(GOLDEN))
def test_policy_selection_wiring(policy):
    """The config knob must land the intended policy at the intended
    level (T-DRRIP at the L2C; everything else at the LLC)."""
    from repro.uncore.hierarchy import MemoryHierarchy
    h = MemoryHierarchy(config_for(policy))
    if policy == "t_drrip":
        assert h.l2c.policy.name == "t_drrip"
    else:
        assert h.llc.policy.name == policy


def test_golden_run_is_checker_clean(monkeypatch):
    """The golden workload itself passes the full validation stack."""
    monkeypatch.setenv("REPRO_CHECK", "1")
    result = run_benchmark("pr", config=config_for("t_ship"),
                           instructions=8_000, warmup=2_000,
                           scale=16, seed=1)
    assert result.hierarchy.checker.violations == []
