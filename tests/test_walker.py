"""Tests for the page-table walker."""

import pytest

from repro.memsys.request import AccessType
from repro.params import LINE_SHIFT, PAGE_SHIFT, PSCConfig
from repro.vm.address import make_va
from repro.vm.page_table import PageTable
from repro.vm.psc import PagingStructureCaches
from repro.vm.walker import PageTableWalker


class _Snapshot:
    """Detached copy of a request's fields at access time.

    The walker issues pooled requests (reused between PTE reads), so a
    recording fake must copy what it needs instead of retaining the
    object -- the same contract real cache levels follow."""

    def __init__(self, req):
        self.pt_level = req.pt_level
        self.access_type = req.access_type
        self.replay_line_addr = req.replay_line_addr
        self.leaf_walk = req.leaf_walk
        self.address = req.address
        self.cycle = req.cycle


class FlatMemory:
    """Fixed-latency 'cache' that records every PTE read."""

    def __init__(self, latency=10):
        self.latency = latency
        self.requests = []

    def access(self, req):
        self.requests.append(_Snapshot(req))
        req.served_by = "L1D"
        return req.cycle + self.latency


def make_walker():
    pt = PageTable()
    psc = PagingStructureCaches(PSCConfig())
    mem = FlatMemory()
    return PageTableWalker(pt, psc, mem), pt, psc, mem


def test_cold_walk_reads_five_levels_serially():
    walker, pt, psc, mem = make_walker()
    result = walker.walk(make_va([1, 2, 3, 4, 5], 0x88), cycle=0)
    assert result.levels_walked == 5
    assert result.psc_hit_level == 0
    # PSC probe (1 cycle) + five dependent 10-cycle reads.
    assert result.done_cycle == 1 + 5 * 10
    assert [r.pt_level for r in mem.requests] == [5, 4, 3, 2, 1]
    assert all(r.access_type is AccessType.TRANSLATION
               for r in mem.requests)


def test_leaf_read_carries_replay_line():
    walker, pt, psc, mem = make_walker()
    va = make_va([1, 2, 3, 4, 5], 0x88)
    result = walker.walk(va, cycle=0)
    leaf = mem.requests[-1]
    expected = ((result.pfn << PAGE_SHIFT) | 0x88) >> LINE_SHIFT
    assert leaf.replay_line_addr == expected
    assert mem.requests[0].replay_line_addr is None


def test_second_walk_uses_psc():
    walker, pt, psc, mem = make_walker()
    va = make_va([1, 2, 3, 4, 5])
    walker.walk(va, cycle=0)
    mem.requests.clear()
    # Same page path: PSCL2 now holds the walk-through-level-2 outcome.
    result = walker.walk(make_va([1, 2, 3, 4, 6]), cycle=100)
    assert result.psc_hit_level == 2
    assert result.levels_walked == 1
    assert [r.pt_level for r in mem.requests] == [1]
    assert result.done_cycle == 100 + 1 + 10


def test_partial_psc_hit_resumes_mid_walk():
    walker, pt, psc, mem = make_walker()
    walker.walk(make_va([1, 2, 3, 4, 5]), cycle=0)
    # A VA sharing only the level-5..4 path: PSCL4 should hit.
    mem.requests.clear()
    result = walker.walk(make_va([1, 2, 9, 8, 7]), cycle=0)
    assert result.psc_hit_level == 4
    assert [r.pt_level for r in mem.requests] == [3, 2, 1]


def test_leaf_served_by_propagates():
    walker, _, _, mem = make_walker()
    result = walker.walk(make_va([1, 2, 3, 4, 5]), cycle=0)
    assert result.leaf_served_by == "L1D"


def test_walk_counts():
    walker, _, _, _ = make_walker()
    walker.walk(make_va([1, 2, 3, 4, 5]), cycle=0)
    walker.walk(make_va([1, 2, 3, 4, 6]), cycle=50)
    assert walker.walks == 2
    assert walker.pte_reads == 6  # 5 cold + 1 via PSCL2
