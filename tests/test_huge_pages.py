"""Tests for the 2MB huge-page extension."""

import pytest

from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va
from repro.vm.mmu import MMU, _HUGE_TAG
from repro.vm.page_table import (FRAMES_PER_HUGE_PAGE, FrameAllocator,
                                 PageTable)


def huge_everything(va):
    return True


def test_huge_walk_path_stops_at_level2():
    pt = PageTable(huge_page_predicate=huge_everything)
    path = pt.walk_path(make_va([1, 2, 3, 4, 5]))
    assert [lvl for lvl, _ in path] == [5, 4, 3, 2]


def test_huge_translate_contiguous_within_page():
    pt = PageTable(huge_page_predicate=huge_everything)
    base_va = make_va([1, 2, 3, 4, 0])
    pfns = [pt.translate(base_va + (i << 12)) for i in range(8)]
    assert pfns == list(range(pfns[0], pfns[0] + 8))


def test_huge_base_frame_aligned():
    pt = PageTable(huge_page_predicate=huge_everything)
    base = pt.huge_base_frame(make_va([1, 2, 3, 4, 77]))
    assert base % FRAMES_PER_HUGE_PAGE == 0


def test_huge_lookup_matches_translate():
    pt = PageTable(huge_page_predicate=huge_everything)
    va = make_va([1, 2, 3, 4, 200], 0x88)
    assert pt.lookup(va) is None
    pfn = pt.translate(va)
    assert pt.lookup(va) == pfn


def test_mixed_regions():
    pt = PageTable(huge_page_predicate=lambda va: va >= (1 << 40))
    small = make_va([0, 0, 3, 4, 5])
    big = make_va([1, 2, 3, 4, 5])
    assert not pt.is_huge(small) and pt.is_huge(big)
    assert pt.leaf_level(small) == 1
    assert pt.leaf_level(big) == 2
    pt.translate(small)
    pt.translate(big)
    assert pt.data_pages == 1
    assert pt.huge_pages == 1


def test_contiguous_allocator_no_overlap_with_4k():
    alloc = FrameAllocator(num_frames=1 << 20)
    small = [alloc.allocate() for _ in range(100)]
    base = alloc.allocate_contiguous(512)
    huge = set(range(base, base + 512))
    assert not huge & set(small)


def test_mmu_huge_tlb_reach():
    """One STLB entry covers 512 pages of a huge region."""
    cfg = default_config()
    pt = PageTable(huge_page_predicate=huge_everything)

    class FlatMemory:
        def access(self, req):
            req.served_by = "L1D"
            return req.cycle + 10

    mmu = MMU(cfg, pt, FlatMemory())
    base = make_va([1, 2, 3, 4, 0])
    first = mmu.translate(base, cycle=0)
    assert not first.stlb_hit
    assert first.walk.levels_walked == 4  # walk terminates at level 2
    # Any other 4KB page of the same 2MB page now hits the DTLB/STLB.
    other = mmu.translate(base + (300 << 12), cycle=100)
    assert other.dtlb_hit
    # Physical contiguity within the huge page.
    assert (other.paddr >> 12) == (first.paddr >> 12) + 300


def test_huge_leaf_read_flagged_for_atp():
    """The level-2 leaf read of a huge walk carries ATP's information."""
    pt = PageTable(huge_page_predicate=huge_everything)
    seen = []

    class Recorder:
        def access(self, req):
            seen.append(req)
            req.served_by = "L1D"
            return req.cycle + 10

    from repro.vm.psc import PagingStructureCaches
    from repro.vm.walker import PageTableWalker
    from repro.params import PSCConfig
    walker = PageTableWalker(pt, PagingStructureCaches(PSCConfig()),
                             Recorder())
    result = walker.walk(make_va([1, 2, 3, 4, 5], 0x80), cycle=0)
    leaf = seen[-1]
    assert leaf.pt_level == 2
    assert leaf.is_leaf_translation
    assert leaf.replay_line_addr == ((result.pfn << 12) | 0x80) >> 6


def test_hierarchy_gather_region_policy():
    cfg = default_config().with_(huge_page_policy="gather_region")
    h = MemoryHierarchy(cfg)
    from repro.workloads.synthetic import RANDOM_BASE, LOCAL_BASE
    assert h.page_table.is_huge(RANDOM_BASE + 123)
    assert not h.page_table.is_huge(LOCAL_BASE)


def test_hierarchy_rejects_unknown_huge_policy():
    cfg = default_config().with_(huge_page_policy="all_the_pages")
    with pytest.raises(ValueError):
        MemoryHierarchy(cfg)


def test_huge_pages_collapse_stlb_mpki():
    from repro.experiments.runner import run_benchmark
    cfg = default_config().with_(huge_page_policy="gather_region")
    base = run_benchmark("pr", instructions=6000, warmup=1500)
    huge = run_benchmark("pr", config=cfg, instructions=6000, warmup=1500)
    assert huge.stlb_mpki < 0.25 * base.stlb_mpki
