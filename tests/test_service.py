"""Tests for the asyncio sweep service (queue, dedupe, retries, sweeps).

Everything here drives the service deterministically: ``workers=0``
(inline execution on the event loop), injected ``execute`` stubs, and
explicit ``await``s instead of wall-clock sleeps.  The three dedupe
horizons, worker-loss requeueing and sweep resumption are the ISSUE's
acceptance surface.
"""

import asyncio
from concurrent.futures import BrokenExecutor

import pytest

from repro.service import (JobHandle, JobStore, ServiceSaturated,
                           SweepService)
from repro.service.jobs import Job, JobError, JobSpec, JobStatus

RUN = dict(benchmark="tc", instructions=2_000, warmup=500)


class RecordingExecutor:
    """Deterministic ``execute`` stub: records call order, can fail."""

    def __init__(self, broken_for=(), broken_times=0, raises=None):
        self.calls = []
        self.broken_for = set(broken_for)
        self.broken_times = broken_times
        self.raises = raises

    def __call__(self, spec_dict):
        name = spec_dict.get("benchmark") or spec_dict.get("kind")
        self.calls.append(name)
        if self.raises is not None:
            raise self.raises
        if name in self.broken_for and self.broken_times > 0:
            self.broken_times -= 1
            raise BrokenExecutor(f"worker died on {name}")
        return {"benchmark": name, "calls": len(self.calls)}


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("store", JobStore(root=tmp_path))
    kwargs.setdefault("execute", RecordingExecutor())
    return SweepService(workers=0, **kwargs)


def drive(coro_fn):
    """Run an async test body to completion on a fresh loop."""
    return asyncio.run(coro_fn())


# ----------------------------------------------------------------------
# Dedupe: store hit > in-flight attach > queue
# ----------------------------------------------------------------------
def test_concurrent_identical_submits_execute_once(tmp_path):
    service = make_service(tmp_path)

    async def body():
        await service.start()
        # Submitted back-to-back with no scheduling point in between:
        # all five land before the drain task runs once.
        jobs = await asyncio.gather(
            *(service.submit("run", **RUN) for _ in range(5)))
        await service.wait(jobs[0])
        await service.close()
        return jobs

    jobs = drive(body)
    assert len({job.id for job in jobs}) == 1  # all folded into one
    assert jobs[0].status is JobStatus.DONE
    assert jobs[0].dedup_hits == 4
    assert service.metrics.executed == 1
    assert service.metrics.dedup_hits == 4
    assert service._execute.calls == ["tc"]
    # Every handle fans out the same payload object.
    assert all(j.payload == jobs[0].payload for j in jobs)


def test_store_hit_survives_service_restart(tmp_path):
    first = make_service(tmp_path)

    async def warm():
        job = await first.submit("run", **RUN)
        await first.wait(job)
        await first.close()
        return job

    warmed = drive(warm)
    assert warmed.source == "run"

    second = make_service(tmp_path)

    async def resubmit():
        job = await second.submit("run", **RUN)
        await second.close()
        return job

    job = drive(resubmit)
    assert job.status is JobStatus.DONE and job.source == "store"
    assert job.payload == warmed.payload
    assert second.metrics.store_hits == 1
    assert second._execute.calls == []  # nothing executed


def test_distinct_specs_execute_separately(tmp_path):
    service = make_service(tmp_path)

    async def body():
        a = await service.submit("run", **RUN)
        b = await service.submit("run", benchmark="mg",
                                 instructions=2_000, warmup=500)
        await service.wait(a)
        await service.wait(b)
        await service.close()
        return a, b

    a, b = drive(body)
    assert a.digest != b.digest
    assert service.metrics.executed == 2


# ----------------------------------------------------------------------
# Priorities
# ----------------------------------------------------------------------
def test_lower_priority_number_runs_first(tmp_path):
    service = make_service(tmp_path)

    async def body():
        await service.start()
        # Queued before the single drain task gets a scheduling point.
        low = await service.submit("run", benchmark="tc", priority=20,
                                   instructions=2_000, warmup=500)
        high = await service.submit("run", benchmark="mg", priority=1,
                                    instructions=2_000, warmup=500)
        mid = await service.submit("run", benchmark="bfs", priority=10,
                                   instructions=2_000, warmup=500)
        for job in (low, high, mid):
            await service.wait(job)
        await service.close()

    drive(body)
    assert service._execute.calls == ["mg", "bfs", "tc"]


# ----------------------------------------------------------------------
# Back-pressure
# ----------------------------------------------------------------------
def test_nowait_submit_raises_when_saturated(tmp_path):
    service = make_service(tmp_path, queue_size=1)

    async def body():
        await service.start()
        ok = await service.submit("run", wait=False, **RUN)
        with pytest.raises(ServiceSaturated, match="retry later"):
            await service.submit("run", benchmark="mg", wait=False,
                                 instructions=2_000, warmup=500)
        await service.wait(ok)
        await service.close()
        return ok

    ok = drive(body)
    assert ok.status is JobStatus.DONE
    # The rejected job is dropped terminally, not leaked in-flight.
    dropped = [j for j in service.jobs() if j is not ok]
    assert len(dropped) == 1
    assert dropped[0].status is JobStatus.CANCELLED
    assert "back-pressure" in dropped[0].error
    assert service._inflight == {}
    # Saturation is a rejection, not a user cancellation.
    assert service.metrics.rejected == 1
    assert service.metrics.cancelled == 0


def test_waiting_submit_suspends_until_slot_frees(tmp_path):
    service = make_service(tmp_path, queue_size=1)

    async def body():
        await service.start()
        first = await service.submit("run", wait=False, **RUN)
        # The queue is full; a waiting submit must suspend, then land
        # once the drain task frees the slot.
        blocked = asyncio.ensure_future(
            service.submit("run", benchmark="mg", instructions=2_000,
                           warmup=500))
        assert not blocked.done()
        # Unlike wait=False this does not raise ServiceSaturated: it
        # suspends until the drain task frees the slot.
        second = await blocked
        await service.wait(first)
        await service.wait(second)
        await service.close()
        return first, second

    first, second = drive(body)
    assert first.status is JobStatus.DONE
    assert second.status is JobStatus.DONE
    assert service._execute.calls == ["tc", "mg"]


# ----------------------------------------------------------------------
# Worker loss: requeued, not lost
# ----------------------------------------------------------------------
def test_killed_worker_requeues_job(tmp_path):
    service = make_service(
        tmp_path, max_attempts=2,
        execute=RecordingExecutor(broken_for={"tc"}, broken_times=1))

    async def body():
        job = await service.submit("run", **RUN)
        await service.wait(job)
        await service.close()
        return job

    job = drive(body)
    assert job.status is JobStatus.DONE
    assert job.attempts == 2
    assert service.metrics.requeues == 1
    assert service.metrics.executed == 1
    assert service._execute.calls == ["tc", "tc"]
    kinds = [e["kind"] for e in job.events.snapshot()]
    assert "requeue" in kinds


def test_worker_loss_exhausts_attempts_then_fails(tmp_path):
    service = make_service(
        tmp_path, max_attempts=2,
        execute=RecordingExecutor(broken_for={"tc"}, broken_times=99))

    async def body():
        job = await service.submit("run", **RUN)
        await service.wait(job)
        await service.close()
        return job

    job = drive(body)
    assert job.status is JobStatus.FAILED
    assert "worker lost" in job.error
    assert job.attempts == 2
    assert service.metrics.requeues == 1
    assert service.metrics.failures == 1
    assert not service.store.contains(job.digest)  # nothing stored


def test_requeue_against_full_queue_retries_inline(tmp_path):
    # The drain task is the queue's only consumer: a blocking put on
    # requeue would deadlock when the queue is full.  The service must
    # fall back to retrying the job inline instead.
    service = make_service(
        tmp_path, queue_size=1, max_attempts=3,
        execute=RecordingExecutor(broken_for={"tc"}, broken_times=2))

    async def body():
        await service.start()
        for task in service._tasks:  # park the drain: we drive by hand
            task.cancel()
        blocker = await service.submit("run", benchmark="mg",
                                       instructions=2_000, warmup=500)
        job = Job(spec=JobSpec.make("run", **RUN))
        service._register(job)
        service._inflight[job.digest] = job
        # Queue full the whole time; bounded so a regression to a
        # blocking put fails fast instead of hanging the suite.
        await asyncio.wait_for(service._run_one(job), timeout=10)
        await service.close()
        return blocker, job

    blocker, job = drive(body)
    assert blocker.status is JobStatus.PENDING  # still queued, untouched
    assert job.status is JobStatus.DONE
    assert job.attempts == 3
    assert service.metrics.requeues == 2
    assert service._execute.calls == ["tc", "tc", "tc"]


def test_job_exception_is_terminal_not_retried(tmp_path):
    service = make_service(
        tmp_path, execute=RecordingExecutor(
            raises=ValueError("bad workload")))

    async def body():
        job = await service.submit("run", **RUN)
        await service.wait(job)
        await service.close()
        return job

    job = drive(body)
    assert job.status is JobStatus.FAILED
    assert job.attempts == 1
    assert "bad workload" in job.error
    assert service.metrics.requeues == 0


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
def test_cancel_pending_job_skips_execution(tmp_path):
    service = make_service(tmp_path)

    async def body():
        await service.start()
        doomed = await service.submit("run", **RUN)
        assert service.cancel(doomed)  # still queued: cancellable
        kept = await service.submit("run", benchmark="mg",
                                    instructions=2_000, warmup=500)
        await service.wait(doomed)
        await service.wait(kept)
        await service.close()
        return doomed, kept

    doomed, kept = drive(body)
    assert doomed.status is JobStatus.CANCELLED
    assert kept.status is JobStatus.DONE
    assert service._execute.calls == ["mg"]  # doomed never executed
    assert service.metrics.cancelled == 1


def test_sweep_cancel_spares_unrelated_jobs(tmp_path):
    service = make_service(tmp_path)

    async def body():
        await service.start()
        sweep = await service.submit("sweep", runs=["tc", "mg"],
                                     instructions=2_000, warmup=500)
        # One scheduling point: the sweep task expands its children
        # into the queue, the drain task has not consumed them yet.
        await asyncio.sleep(0)
        bystander = await service.submit("run", benchmark="fft",
                                         instructions=2_000, warmup=500)
        assert bystander.status is JobStatus.PENDING
        assert service.cancel(sweep)
        # The sweep's own pending children die with it; the unrelated
        # pending job does not.
        assert bystander.status is JobStatus.PENDING
        await service.wait(bystander)
        await service.wait(sweep)
        await service.close()
        return sweep, bystander

    sweep, bystander = drive(body)
    assert sweep.status is JobStatus.CANCELLED
    assert len(sweep.children) == 2
    assert all(c.status is JobStatus.CANCELLED for c in sweep.children)
    assert bystander.status is JobStatus.DONE
    assert service._execute.calls == ["fft"]
    assert service.metrics.cancelled == 3  # sweep + its two children


def test_cancel_before_sweep_expansion_cancels_nothing_else(tmp_path):
    service = make_service(tmp_path)

    async def body():
        await service.start()
        bystander = await service.submit("run", **RUN)
        sweep = await service.submit("sweep", runs=["mg", "bfs"],
                                     instructions=2_000, warmup=500)
        # No scheduling point yet: the sweep has not expanded, the
        # bystander is still queued.  Cancelling must touch only the
        # (childless) sweep.
        assert service.cancel(sweep)
        await service.wait(bystander)
        await service.wait(sweep)
        await service.close()
        return sweep, bystander

    sweep, bystander = drive(body)
    assert sweep.status is JobStatus.CANCELLED
    assert sweep.children == []
    assert bystander.status is JobStatus.DONE
    assert service._execute.calls == ["tc"]
    assert service.metrics.cancelled == 1


def test_cancel_terminal_job_is_refused(tmp_path):
    service = make_service(tmp_path)

    async def body():
        job = await service.submit("run", **RUN)
        await service.wait(job)
        refused = service.cancel(job)
        await service.close()
        return job, refused

    job, refused = drive(body)
    assert job.status is JobStatus.DONE
    assert refused is False


# ----------------------------------------------------------------------
# Sweeps: expansion, resumption, store skip
# ----------------------------------------------------------------------
SWEEP = dict(runs=["tc", "mg", "bfs"], instructions=2_000, warmup=500)


def test_sweep_executes_children_and_stores_itself(tmp_path):
    service = make_service(tmp_path)

    async def body():
        job = await service.submit("sweep", **SWEEP)
        await service.wait(job)
        await service.close()
        return job

    job = drive(body)
    assert job.status is JobStatus.DONE
    assert sorted(service._execute.calls) == ["bfs", "mg", "tc"]
    assert job.payload["total"] == 3
    assert job.payload["skipped"] == []
    assert len(job.payload["completed"]) == 3
    assert service.store.contains(job.digest)
    # Every child digest is store-resident and JSON-addressable.
    for digest in job.payload["completed"]:
        assert service.store.contains(digest)


def test_resumed_partial_sweep_skips_completed_digests(tmp_path):
    # First attempt: the "mg" child's worker keeps dying, so the sweep
    # fails but "tc" and "bfs" land in the store.
    broken = make_service(
        tmp_path, max_attempts=2,
        execute=RecordingExecutor(broken_for={"mg"}, broken_times=99))

    async def partial():
        job = await broken.submit("sweep", **SWEEP)
        await broken.wait(job)
        await broken.close()
        return job

    failed = drive(partial)
    assert failed.status is JobStatus.FAILED
    assert len(failed.payload["failed"]) == 1
    assert len(failed.payload["completed"]) == 2
    # A partial sweep is NOT stored: resubmission must re-expand.
    assert not broken.store.contains(failed.digest)

    # Second attempt (fresh service, healed workers, same store): only
    # the missing child executes; the rest are skipped from the store.
    healed = make_service(tmp_path)

    async def resume():
        job = await healed.submit("sweep", **SWEEP)
        await healed.wait(job)
        await healed.close()
        return job

    resumed = drive(resume)
    assert resumed.status is JobStatus.DONE
    assert healed._execute.calls == ["mg"]  # only the gap
    assert len(resumed.payload["skipped"]) == 2
    assert len(resumed.payload["completed"]) == 3
    assert healed.metrics.store_hits == 2
    assert healed.metrics.executed == 2  # the child + the sweep itself
    assert healed.store.contains(resumed.digest)
    kinds = [e["kind"] for e in resumed.events.snapshot()]
    assert kinds.count("sweep-skip") == 2

    # Third attempt: the whole sweep is now a store hit.
    warm = make_service(tmp_path)

    async def rehit():
        job = await warm.submit("sweep", **SWEEP)
        await warm.close()
        return job

    hit = drive(rehit)
    assert hit.status is JobStatus.DONE and hit.source == "store"
    assert warm._execute.calls == []


def test_bad_sweep_fails_loudly(tmp_path):
    service = make_service(tmp_path)

    async def body():
        with pytest.raises(JobError, match="non-empty 'runs'"):
            await service.submit("sweep", runs=[])
        await service.close()

    drive(body)


# ----------------------------------------------------------------------
# Retention: terminal jobs are pruned, results stay store-addressable
# ----------------------------------------------------------------------
def test_terminal_jobs_pruned_beyond_retention(tmp_path):
    service = make_service(tmp_path, retention=2)

    async def body():
        jobs = []
        for bench in ("tc", "mg", "bfs", "fft"):
            job = await service.submit("run", benchmark=bench,
                                       instructions=2_000, warmup=500)
            await service.wait(job)
            jobs.append(job)
        await service.close()
        return jobs

    jobs = drive(body)
    assert all(j.status is JobStatus.DONE for j in jobs)
    kept = {jobs[-2].id, jobs[-1].id}
    assert set(service._jobs) == kept
    assert set(service._done_events) == kept
    # Pruned jobs' payloads remain addressable by digest.
    for job in jobs:
        assert service.store.contains(job.digest)
    # Waiting on a pruned job returns immediately (it is terminal).
    assert drive(lambda: service.wait(jobs[0])) is jobs[0]


def test_retention_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="retention"):
        SweepService(store=JobStore(root=tmp_path), retention=0)


# ----------------------------------------------------------------------
# Spec validation and identity
# ----------------------------------------------------------------------
def test_unknown_kind_rejected():
    with pytest.raises(JobError, match="unknown job kind"):
        JobSpec.make("frobnicate")


def test_missing_required_field_rejected():
    with pytest.raises(JobError, match="needs 'benchmark'"):
        JobSpec.make("run")


def test_non_positive_int_rejected():
    with pytest.raises(JobError, match="positive integer"):
        JobSpec.make("run", benchmark="tc", instructions=0)


def test_non_int_priority_rejected_before_registration(tmp_path):
    # A str (or bool) priority would poison the heap's tuple ordering;
    # it must be rejected before the job lands in _inflight, or every
    # later identical submission dedupe-attaches to a zombie.
    service = make_service(tmp_path)

    async def body():
        for bad in ("high", 1.5, True):
            with pytest.raises(JobError, match="priority"):
                await service.submit("run", priority=bad, **RUN)
        assert service._inflight == {}
        assert service._jobs == {}
        ok = await service.submit("run", **RUN)
        await service.wait(ok)
        await service.close()
        return ok

    ok = drive(body)
    assert ok.status is JobStatus.DONE


def test_scenario_spec_rejects_config_overlay():
    with pytest.raises(JobError, match="scenario document"):
        JobSpec.make("scenario", scenario="baseline-vs-full",
                     config={"stlb_entries": 64})


def test_spec_roundtrips_through_dict():
    spec = JobSpec.make("run", benchmark="tc", instructions=2_000,
                        warmup=500, config={"l2c_prefetcher": "spp"})
    again = JobSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.digest == spec.digest
    assert hash(again) == hash(spec)  # frozen + hashable


def test_run_spec_digest_is_runkey_digest():
    spec = JobSpec.make("run", benchmark="tc", instructions=2_000,
                        warmup=500)
    assert spec.digest == spec.run_key().digest


def test_sweep_children_inherit_shared_params():
    spec = JobSpec.make("sweep", runs=["tc", {"benchmark": "mg",
                                              "seed": 7}],
                        instructions=2_000, warmup=500)
    children = spec.sweep_children()
    assert [c.kind for c in children] == ["run", "run"]
    assert children[0].param("benchmark") == "tc"
    assert children[0].param("instructions") == 2_000
    assert children[1].param("seed") == 7
    assert children[1].param("warmup") == 500


# ----------------------------------------------------------------------
# Real spec execution (the non-run branches; runs are covered by the
# api-surface roundtrip test)
# ----------------------------------------------------------------------
def test_execute_spec_trace_branch():
    from repro.service.core import execute_spec
    doc = execute_spec(JobSpec.make("trace", benchmark="tc",
                                    instructions=2_000,
                                    warmup=500).to_dict())
    assert doc["kind"] == "trace" and doc["benchmark"] == "tc"
    assert doc["document"]


def test_execute_spec_scenario_is_bare_summary():
    from repro.service.core import execute_spec
    spec = JobSpec.make("scenario", scenario="SYN-01-STLB-THRASH",
                        instructions=3_000, warmup=500)
    payload = execute_spec(spec.to_dict())
    # Bare RunSummary dict: interchangeable with ResultCache entries.
    assert payload["cycles"] > 0 and payload["instructions"] > 0
    from repro.experiments.parallel import RunSummary
    assert RunSummary.from_dict(payload).ipc > 0


def test_execute_spec_rejects_unknown_kind():
    from repro.service.core import execute_spec
    with pytest.raises(JobError, match="unknown job kind"):
        execute_spec({"kind": "warp", "benchmark": "tc"})


# ----------------------------------------------------------------------
# JobHandle surface
# ----------------------------------------------------------------------
def test_handle_result_raises_until_done(tmp_path):
    service = make_service(tmp_path)

    async def body():
        await service.start()
        job = await service.submit("run", **RUN)
        handle = JobHandle(service, job)
        with pytest.raises(RuntimeError, match="pending"):
            handle.result()
        await handle.wait()
        payload = handle.result()
        await service.close()
        return handle, payload

    handle, payload = drive(body)
    assert handle.status is JobStatus.DONE
    assert payload["benchmark"] == "tc"
    kinds = [e["kind"] for e in handle.events()]
    statuses = [e["status"] for e in handle.events() if "status" in e]
    assert kinds[0] == "status"
    assert statuses == ["pending", "running", "done"]


def test_event_stream_is_ordered_and_closed(tmp_path):
    service = make_service(tmp_path)

    async def body():
        job = await service.submit("run", **RUN)
        await service.wait(job)
        await service.close()
        return job

    job = drive(body)
    events = job.events.snapshot()
    assert [e["seq"] for e in events] == list(range(len(events)))
    assert job.events.closed
