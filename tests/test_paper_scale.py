"""Smoke test of the full-size (Table I) configuration.

Verifies the paper-scale machine simulates end to end and behaves
sanely: at full capacity the (scaled-footprint) workloads mostly fit,
so miss rates collapse relative to the reduced-scale runs.
"""

import pytest

from repro.experiments.runner import run_benchmark
from repro.params import paper_config


@pytest.mark.parametrize("backend", ["python", "numpy"])
@pytest.mark.parametrize("name", ["pr", "xalancbmk"])
def test_paper_config_runs(name, backend):
    cfg = paper_config().with_(backend=backend)
    r = run_benchmark(name, config=cfg, instructions=6000, warmup=1500,
                      scale=16)  # workload footprints stay reduced
    assert r.cycles > 0
    assert 0.0 < r.ipc < cfg.core.retire_width


def test_paper_config_backends_agree():
    """Full-size Table I machine: both backends report identical runs."""
    results = {
        backend: run_benchmark(
            "pr", config=paper_config().with_(backend=backend),
            instructions=6000, warmup=1500, scale=16)
        for backend in ("python", "numpy")}
    assert results["python"].summary() == results["numpy"].summary()


def test_full_size_caches_absorb_reduced_footprints():
    small = run_benchmark("pr", instructions=20_000, warmup=5_000)
    big = run_benchmark("pr", config=paper_config(), instructions=20_000,
                        warmup=5_000, scale=16)
    # The 16x STLB covers most of the reduced gather footprint, so walks
    # (and hence replay loads) largely disappear...
    assert big.stlb_mpki < 0.5 * small.stlb_mpki
    assert (big.cache_mpki("llc", "replay")
            < small.cache_mpki("llc", "replay"))
    # ... and the machine runs faster overall.
    assert big.ipc > small.ipc


def test_paper_scale_workload_generation():
    """scale=1 footprints generate (big address space) without issue."""
    from repro.workloads.registry import make_trace
    trace = make_trace("pr", 3000, scale=1)
    assert trace.footprint_pages() > 100
