"""Drift test: the fallback vocabulary has three surfaces, one source.

:class:`repro.core.fallback.FallbackReason` is simultaneously the batch
engine's ``last_fallback_reason`` type, the ``reason=`` label set of the
service's ``repro_batch_fallback_total`` telemetry series, and the row
key of the fallback table in ``docs/performance.md``.  Each test here
pins one pair of surfaces against the enum so a member added (or a slug
renamed) in one place fails loudly everywhere it was forgotten.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.fallback import (COHORT_BUCKETS, REASON_DETAIL,
                                 FallbackReason)

DOCS = Path(__file__).resolve().parents[1] / "docs" / "performance.md"


def _service(tmp_path):
    from repro.service.core import SweepService
    from repro.service.store import JobStore
    return SweepService(store=JobStore(str(tmp_path / "store")),
                        workers=0)


def test_every_reason_has_detail():
    assert set(REASON_DETAIL) == set(FallbackReason)
    for reason, detail in REASON_DETAIL.items():
        assert detail, f"empty detail for {reason}"


def test_slugs_are_stable_machine_readable():
    for reason in FallbackReason:
        assert reason.value == reason.value.lower()
        assert " " not in reason.value
        # str() is the slug -- payload dicts and log lines rely on it.
        assert str(reason) == reason.value


def test_telemetry_label_set_matches_enum(tmp_path):
    svc = _service(tmp_path)
    assert set(svc._batch_fallbacks) == {r.value for r in FallbackReason}
    # The counters are pre-registered so /metrics shows the full label
    # set at zero; the rendered exposition must already name every slug.
    rendered = svc.telemetry.render_prometheus()
    for reason in FallbackReason:
        assert f'reason="{reason.value}"' in rendered


def test_cohort_histogram_buckets_shared(tmp_path):
    svc = _service(tmp_path)
    assert list(svc._cohort_hist.buckets) == [float(b)
                                              for b in COHORT_BUCKETS]


def test_docs_table_covers_every_reason():
    text = DOCS.read_text(encoding="utf-8")
    for reason in FallbackReason:
        assert f"`{reason.value}`" in text, (
            f"docs/performance.md fallback table is missing a row for "
            f"{reason.value!r}")
    for reason, detail in REASON_DETAIL.items():
        assert detail in text, (
            f"docs/performance.md detail text drifted from REASON_DETAIL "
            f"for {reason.value!r}")


def test_static_reasons_come_from_the_enum():
    from repro.core.batch_engine import vector_ineligibility
    from repro.params import default_config
    from repro.uncore.hierarchy import MemoryHierarchy

    cases = {
        None: default_config(64),
        FallbackReason.FRONTEND: default_config(64).with_(
            model_frontend=True),
        FallbackReason.HUGE_PAGES: default_config(64).with_(
            huge_page_policy="gather_region"),
        FallbackReason.COMPARISON: default_config(64).with_(
            comparison="cbpred"),
        FallbackReason.L1D_PREFETCHER: default_config(64).with_(
            l1d_prefetcher="next_line"),
    }
    for expected, cfg in cases.items():
        got = vector_ineligibility(cfg, MemoryHierarchy(cfg))
        assert got is expected
        if got is not None:
            assert isinstance(got, FallbackReason)


def test_runtime_reason_comes_from_the_enum():
    from repro.core.engine import make_core
    from repro.params import default_config
    from repro.uncore.hierarchy import MemoryHierarchy

    cfg = default_config(64).with_(backend="numpy")
    hierarchy = MemoryHierarchy(cfg)
    core = make_core(cfg, hierarchy)
    # Shadow a hot method on the *instance* -- the engine must refuse
    # with the INSTANCE_PATCH member, not a bare string.
    hierarchy.load = hierarchy.load  # noqa: PLW0127 -- binds into __dict__
    assert core._runtime_reason() is FallbackReason.INSTANCE_PATCH


def test_fallback_payload_keys_round_trip(tmp_path):
    """BatchStats fallback dicts key by slug and merge into telemetry."""
    from repro.core.fallback import BatchStats

    stats = BatchStats()
    stats.record_fallback(FallbackReason.SAMPLER_TRACER)
    payload = {"batch": stats.to_dict()}
    svc = _service(tmp_path)
    svc._record_batch_telemetry(payload)
    counter = svc._batch_fallbacks[FallbackReason.SAMPLER_TRACER.value]
    assert counter.value == 1
