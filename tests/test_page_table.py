"""Tests for the 5-level radix page table and frame allocator."""

import pytest

from repro.params import PAGE_SHIFT, PT_LEVELS
from repro.vm.address import make_va
from repro.vm.page_table import FrameAllocator, PageTable


def test_allocator_unique_frames():
    alloc = FrameAllocator(num_frames=1 << 20, scatter=True)
    frames = [alloc.allocate() for _ in range(1000)]
    assert len(set(frames)) == len(frames)


def test_allocator_sequential_mode():
    alloc = FrameAllocator(scatter=False)
    assert [alloc.allocate() for _ in range(3)] == [0, 1, 2]


def test_allocator_deterministic_for_seed():
    a = FrameAllocator(seed=7, scatter=True)
    b = FrameAllocator(seed=7, scatter=True)
    assert [a.allocate() for _ in range(10)] == [b.allocate()
                                                 for _ in range(10)]


def test_allocator_exhaustion():
    alloc = FrameAllocator(num_frames=2)
    alloc.allocate()
    alloc.allocate()
    with pytest.raises(MemoryError):
        alloc.allocate()


def test_translate_is_stable():
    pt = PageTable()
    va = make_va([1, 2, 3, 4, 5], 0x80)
    pfn = pt.translate(va)
    assert pt.translate(va) == pfn
    assert pt.lookup(va) == pfn


def test_lookup_untouched_returns_none():
    pt = PageTable()
    assert pt.lookup(make_va([9, 9, 9, 9, 9])) is None


def test_same_page_different_offset_same_frame():
    pt = PageTable()
    va = make_va([1, 2, 3, 4, 5])
    assert pt.translate(va) == pt.translate(va + 0xFFF)


def test_walk_path_levels_descend():
    pt = PageTable()
    va = make_va([1, 2, 3, 4, 5])
    path = pt.walk_path(va)
    assert [lvl for lvl, _ in path] == [5, 4, 3, 2, 1]


def test_walk_path_pte_addresses_in_table_frames():
    pt = PageTable()
    va = make_va([1, 2, 3, 4, 5])
    path = pt.walk_path(va)
    level5_pa = path[0][1]
    assert level5_pa >> PAGE_SHIFT == pt.cr3_frame


def test_adjacent_pages_share_leaf_pte_line():
    """Eight contiguous PTEs live in one 64-byte line (8B each)."""
    pt = PageTable()
    base = make_va([1, 2, 3, 4, 0])
    lines = {pt.pte_line_addr(base + (i << PAGE_SHIFT), 1) for i in range(8)}
    assert len(lines) == 1
    lines16 = {pt.pte_line_addr(base + (i << PAGE_SHIFT), 1)
               for i in range(16)}
    assert len(lines16) == 2


def test_distinct_regions_use_distinct_tables():
    pt = PageTable()
    va1 = make_va([1, 0, 0, 0, 0])
    va2 = make_va([2, 0, 0, 0, 0])
    path1 = dict(pt.walk_path(va1))
    path2 = dict(pt.walk_path(va2))
    assert path1[5] != path2[5]          # different level-5 slots
    assert (path1[4] >> PAGE_SHIFT) != (path2[4] >> PAGE_SHIFT)


def test_table_page_accounting():
    pt = PageTable()
    assert pt.table_pages == 1  # root only
    pt.translate(make_va([1, 2, 3, 4, 5]))
    assert pt.table_pages == 1 + (PT_LEVELS - 1)
    assert pt.data_pages == 1


def test_node_frame_matches_walk_path():
    pt = PageTable()
    va = make_va([3, 1, 4, 1, 5])
    pt.translate(va)
    for level, pte_pa in pt.walk_path(va):
        assert pt.node_frame(va, level) == pte_pa >> PAGE_SHIFT


def test_pte_line_addr_unknown_level():
    pt = PageTable()
    with pytest.raises(ValueError):
        pt.pte_line_addr(make_va([1, 2, 3, 4, 5]), 9)
