"""Tests for the observability subsystem (``repro.obs``).

Covers the interval sampler (attachment, record shape, determinism,
non-perturbation), the ``repro.obs/v1`` export schema (golden round-trip,
validator, CSV), and the manifest/profiler/heartbeat helpers.
"""

import copy
import json

import pytest

from repro import api
from repro.obs import (CSV_COLUMNS, SCHEMA, ExportSchemaError, Heartbeat,
                       Profiler, config_digest, export_csv, load, validate,
                       validate_strict)

RUN_KW = dict(instructions=12_000, warmup=2_000, seed=7)
INTERVAL = 1_000


@pytest.fixture(scope="module")
def observed(tmp_path_factory):
    """One observed run plus its on-disk export."""
    path = tmp_path_factory.mktemp("obs") / "pr.json"
    result = api.run("pr", metrics=str(path), sample_interval=INTERVAL,
                     **RUN_KW)
    return result, path


@pytest.fixture(scope="module")
def unobserved():
    return api.run("pr", **RUN_KW)


# ---------------------------------------------------------------------
# Sampler
# ---------------------------------------------------------------------

def test_sampler_off_by_default(unobserved):
    assert unobserved.sampler is None
    assert unobserved.intervals == []
    assert unobserved.hierarchy.sampler is None


def test_sampler_emits_expected_interval_count(observed):
    result, _ = observed
    # 12k ROI instructions at a 1k interval: one record per boundary.
    assert len(result.intervals) >= 10


def test_sampling_does_not_perturb_simulation(observed, unobserved):
    result, _ = observed
    assert result.cycles == unobserved.cycles
    assert result.ipc == unobserved.ipc
    assert result.stlb_mpki == unobserved.stlb_mpki


def test_interval_record_shape(observed):
    result, _ = observed
    iv = result.intervals[0]
    for key in ("index", "instructions", "cycle_start", "cycle_end", "ipc",
                "levels", "rrpv", "occupancy", "tlb", "psc", "dram",
                "walks", "stalls"):
        assert key in iv, key
    assert iv["index"] == 0
    assert iv["instructions"] == INTERVAL
    assert iv["cycle_end"] > iv["cycle_start"]
    for level in ("l1d", "l2c", "llc"):
        assert 0.0 <= iv["levels"][level]["hit_rate"] <= 1.0
    for cat in ("translation", "replay", "non_replay", "other"):
        assert iv["stalls"][cat] >= 0
    assert 0.0 <= iv["tlb"]["stlb"]["hit_rate"] <= 1.0


def test_intervals_are_contiguous(observed):
    result, _ = observed
    ivs = result.intervals
    assert [iv["index"] for iv in ivs] == list(range(len(ivs)))
    for prev, cur in zip(ivs, ivs[1:]):
        assert cur["cycle_start"] == prev["cycle_end"]


# ---------------------------------------------------------------------
# Export / schema
# ---------------------------------------------------------------------

def test_export_is_schema_valid_json(observed):
    _, path = observed
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["schema"] == SCHEMA
    assert doc["kind"] == "run"
    assert validate(doc) == []


def test_export_roundtrip_through_load(observed):
    result, path = observed
    doc = load(path)
    assert doc["manifest"]["benchmark"] == "pr"
    assert doc["manifest"]["seed"] == 7
    assert doc["manifest"]["sample_interval"] == INTERVAL
    assert len(doc["intervals"]) == len(result.intervals)
    assert doc["summary"]["cycles"] == result.cycles


def test_manifest_records_components_and_profile(observed):
    _, path = observed
    m = load(path)["manifest"]
    assert m["components"]["llc_policy"]
    assert m["simulated"]["cycles"] > 0
    assert m["wall_time"]["total"] > 0.0
    assert set(m["enhancements"]) >= {"t_drrip", "t_ship", "newsign",
                                      "atp", "tempo"}


def test_export_deterministic_across_same_seed_runs(observed):
    result, _ = observed
    again = api.run("pr", sample_interval=INTERVAL, **RUN_KW)
    doc_a = result.metrics_document()
    doc_b = again.metrics_document()
    for doc in (doc_a, doc_b):
        for volatile in ("created_unix", "wall_time"):
            doc["manifest"].pop(volatile, None)
    assert doc_a == doc_b


def test_validator_flags_corruption(observed):
    result, _ = observed
    good = result.metrics_document()

    bad = copy.deepcopy(good)
    bad["schema"] = "repro.obs/v999"
    assert validate(bad)

    bad = copy.deepcopy(good)
    del bad["manifest"]["benchmark"]
    assert any("benchmark" in e for e in validate(bad))

    bad = copy.deepcopy(good)
    del bad["intervals"][0]["ipc"]
    assert validate(bad)

    with pytest.raises(ExportSchemaError):
        validate_strict({"schema": SCHEMA, "kind": "run"})


def test_csv_export(observed, tmp_path):
    result, _ = observed
    out = tmp_path / "intervals.csv"
    export_csv(out, result.intervals)
    lines = out.read_text().strip().splitlines()
    assert lines[0].split(",") == list(CSV_COLUMNS)
    assert len(lines) == 1 + len(result.intervals)


# ---------------------------------------------------------------------
# Manifest helpers
# ---------------------------------------------------------------------

def test_config_digest_stable_and_sensitive():
    a = api.build_config()
    b = api.build_config()
    c = api.build_config(enhancements="full")
    assert config_digest(a) == config_digest(b)
    assert config_digest(a) != config_digest(c)


def test_profiler_accumulates_phases():
    prof = Profiler()
    with prof.phase("build"):
        pass
    with prof.phase("build"):
        pass
    with prof.phase("simulate"):
        pass
    snap = prof.snapshot()
    assert set(snap) == {"build", "simulate", "total"}
    assert snap["total"] == pytest.approx(snap["build"] + snap["simulate"])


def test_heartbeat_collects_and_streams(tmp_path):
    class Key:
        benchmark, config_hash, seed = "pr", "a" * 64, 1

    class Event:
        def __init__(self, done):
            self.done, self.total = done, 3
            self.key = Key()
            self.source = "executed"
            self.wall_time = 0.5

    path = tmp_path / "beat.ndjson"
    hb = Heartbeat(path=str(path))
    for i in range(3):
        hb.emit(Event(i + 1))
    hb.close()
    assert len(hb.events) == 3
    streamed = [json.loads(line)
                for line in path.read_text().strip().splitlines()]
    assert [e["done"] for e in streamed] == [1, 2, 3, 3]  # + final line
    assert streamed[0]["benchmark"] == "pr"
    assert streamed[-1]["final"] is True
